//! Induction-variable substitution (§5.3).
//!
//! The C front end turns pointer walks like `*a++ = *b++;` into chains of
//! copy temporaries and pointer increments. This pass finds each *auxiliary
//! induction variable* — a variable advanced by a loop-invariant amount
//! exactly once per iteration, possibly through those copies — and rewrites
//! every use as an explicit affine function of the DO-loop counter, after
//! which the walking pointer itself is dead and the subscript is visible to
//! dependence analysis.
//!
//! The paper's *blocking/backtracking* heuristic appears here as a
//! worklist: an induction-variable candidate whose increment reads another
//! candidate (or whose uses are still hidden behind an unsubstituted copy)
//! is *blocked*; each time a variable is substituted, the candidates it
//! blocked are re-examined. Backtracking therefore only happens when it is
//! guaranteed to make progress, and the common case is a single pass —
//! worst case `n` passes over the loop (§5.3).
//!
//! Arena discipline: the loop bounds and increment referenced by the plan
//! are subtrees of the surviving loop header/body, so every derived affine
//! tree is built from *deep copies*; the per-occurrence copies made by
//! [`titanc_il::ExprPool::substitute_var`] keep replacement sites disjoint.

use crate::util::{invariant_in, register_candidate, resolve_copy};
use titanc_il::{
    BinOp, Block, Expr, ExprId, ExprPool, LValue, Procedure, ScalarType, StmtId, StmtKind,
    StmtPool, Type, VarId,
};

/// Resource budget: maximum scan passes per loop (worst case is `n`
/// passes for a body of `n` statements, §5.3). Hitting the cap is sound —
/// substitution simply stops early — but is reported so the driver can
/// emit a remark.
pub const MAX_PASSES: usize = 64;

/// Substitution statistics (EXP6 measures `passes` and `backtracks`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IvSubReport {
    /// Auxiliary induction variables substituted away.
    pub substituted: usize,
    /// Scan passes over loop bodies.
    pub passes: usize,
    /// Candidates that succeeded only after being unblocked by an earlier
    /// substitution (the backtracking events).
    pub backtracks: usize,
    /// Some loop's re-scan was cut off by [`MAX_PASSES`] while still
    /// finding substitutions.
    pub budget_exhausted: bool,
    /// Per-loop substitution events (loops where at least one auxiliary
    /// induction variable was removed), with source spans.
    pub events: Vec<titanc_il::LoopEvent>,
}

impl IvSubReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: IvSubReport) {
        self.substituted += other.substituted;
        self.passes += other.passes;
        self.backtracks += other.backtracks;
        self.budget_exhausted |= other.budget_exhausted;
        self.events.extend(other.events);
    }
}

titanc_il::struct_json!(
    IvSubReport,
    [substituted, passes, backtracks, budget_exhausted, events]
);

/// Runs induction-variable substitution on every DO loop of the procedure.
pub fn induction_substitution(proc: &mut Procedure) -> IvSubReport {
    let mut report = IvSubReport::default();
    // Collect DO-loop ids; process innermost-first (postorder).
    let mut loop_ids = Vec::new();
    collect_do_loops_postorder(&proc.stmts, &proc.body, &mut loop_ids);
    for id in loop_ids {
        substitute_in_loop(proc, id, &mut report);
    }
    if report.substituted > 0 {
        proc.bump_generation();
    }
    report
}

fn collect_do_loops_postorder(pool: &StmtPool, block: &[StmtId], out: &mut Vec<StmtId>) {
    for &s in block {
        for b in pool[s].blocks() {
            collect_do_loops_postorder(pool, b, out);
        }
        if matches!(
            pool[s],
            StmtKind::DoLoop { .. } | StmtKind::DoParallel { .. }
        ) {
            out.push(s);
        }
    }
}

/// The loop header slots; `lo`/`hi` are the DoLoop's own expressions (read
/// shared, deep-copied into derived trees).
struct LoopShape {
    lv: VarId,
    lo: ExprId,
    hi: ExprId,
    step: i64,
}

/// An identified auxiliary induction variable.
struct Candidate {
    v: VarId,
    def_pos: usize,
    /// signed increment (a subtree of the body's step statement)
    inc: IncPlan,
}

/// How to materialize the increment; `Neg` defers the negation allocation
/// so candidate discovery stays `&Procedure`.
enum IncPlan {
    Pos(ExprId),
    Neg(ExprId),
}

fn substitute_in_loop(proc: &mut Procedure, loop_id: StmtId, report: &mut IvSubReport) {
    // repeat until no candidate substitutes; the worklist effect of
    // blocking/backtracking is realized by the re-scan, and `backtracks`
    // counts successes after the first pass.
    let mut pass = 0usize;
    let mut loop_subs = 0usize;
    loop {
        pass += 1;
        report.passes += 1;
        let subs = one_pass(proc, loop_id);
        report.substituted += subs;
        loop_subs += subs;
        if pass > 1 {
            report.backtracks += subs;
        }
        if subs == 0 {
            break;
        }
        // guard: worst case n passes (n = body length)
        if pass >= MAX_PASSES {
            report.budget_exhausted = true;
            break;
        }
    }
    if loop_subs > 0 {
        if let Some(kind) = proc.find_stmt(loop_id) {
            let var = match kind {
                StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => {
                    proc.var(*var).name.clone()
                }
                _ => String::new(),
            };
            report.events.push(titanc_il::LoopEvent {
                proc: proc.name.clone(),
                var,
                span: proc.stmts.span(loop_id),
                decision: titanc_il::LoopDecision::IvSubstituted {
                    substituted: loop_subs,
                },
            });
        }
    }
}

/// Performs one scan over the loop, substituting every currently-unblocked
/// candidate. Returns the number substituted.
fn one_pass(proc: &mut Procedure, loop_id: StmtId) -> usize {
    let (var, lo, hi, step, body) = match proc.find_stmt(loop_id) {
        Some(
            StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                ..
            }
            | StmtKind::DoParallel {
                var,
                lo,
                hi,
                step,
                body,
            },
        ) => (*var, *lo, *hi, *step, body.clone()),
        _ => return 0,
    };
    let step_c = match proc.exprs.as_int(step) {
        Some(c) if c != 0 => c,
        _ => return 0, // symbolic stride: no substitution
    };
    if !invariant_in(proc, &body, lo) || !invariant_in(proc, &body, hi) {
        return 0;
    }
    let shape = LoopShape {
        lv: var,
        lo,
        hi,
        step: step_c,
    };

    let candidates = find_candidates(proc, &shape, &body);
    if candidates.is_empty() {
        return 0;
    }
    let mut count = 0;
    for cand in candidates {
        if apply_candidate(proc, loop_id, &shape, &cand) {
            count += 1;
        }
    }
    count
}

/// Finds unblocked candidates: single top-level def `v = origin ± c` where
/// the origin resolves to `v` through copies and `c` is loop-invariant.
fn find_candidates(proc: &Procedure, shape: &LoopShape, body: &[StmtId]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (pos, &s) in body.iter().enumerate() {
        let v = match proc.stmts[s].defined_var() {
            Some(v) => v,
            None => continue,
        };
        if v == shape.lv || !register_candidate(proc, v) {
            continue;
        }
        // single def across the whole body
        if count_defs(&proc.stmts, body, v) != 1 {
            continue;
        }
        let rhs = match &proc.stmts[s] {
            StmtKind::Assign {
                lhs: LValue::Var(_),
                rhs,
            } => *rhs,
            _ => continue,
        };
        let (op, lhs, rhs) = match proc.exprs[rhs] {
            Expr::Binary { op, lhs, rhs, .. } => (op, lhs, rhs),
            _ => continue,
        };
        let resolve = |e: ExprId| match proc.exprs[e] {
            Expr::Var(w) => Some(resolve_copy(proc, body, pos, w)),
            _ => None,
        };
        let (origin_l, origin_r) = (resolve(lhs), resolve(rhs));
        let inc = match op {
            BinOp::Add if origin_l == Some(v) => IncPlan::Pos(rhs),
            BinOp::Add if origin_r == Some(v) => IncPlan::Pos(lhs),
            BinOp::Sub if origin_l == Some(v) => IncPlan::Neg(rhs),
            _ => continue,
        };
        // the increment must be invariant; if it reads another candidate
        // the candidate is blocked — it will be re-examined next pass.
        // Note the loop variable is defined by the DO header, not by a
        // body statement, so it needs an explicit check.
        let inner = match inc {
            IncPlan::Pos(e) | IncPlan::Neg(e) => e,
        };
        if proc.exprs.reads_var(inner, shape.lv)
            || proc.exprs.reads_var(inner, v)
            || !invariant_in(proc, body, inner)
        {
            continue;
        }
        out.push(Candidate {
            v,
            def_pos: pos,
            inc,
        });
    }
    out
}

fn count_defs(pool: &StmtPool, block: &[StmtId], v: VarId) -> usize {
    let mut n = 0;
    for &s in block {
        if pool[s].defined_var() == Some(v) {
            n += 1;
        }
        for b in pool[s].blocks() {
            n += count_defs(pool, b, v);
        }
    }
    n
}

/// The iteration-index expression `k` = (lv - lo) / step, simplified for
/// unit strides. Builds a fresh tree (deep-copying `lo`).
fn iteration_index(exprs: &mut ExprPool, shape: &LoopShape) -> ExprId {
    let lv = exprs.var(shape.lv);
    let lo = exprs.copy(shape.lo);
    let k = match shape.step {
        1 => exprs.ibinary(BinOp::Sub, lv, lo),
        -1 => exprs.ibinary(BinOp::Sub, lo, lv),
        s => {
            let diff = exprs.ibinary(BinOp::Sub, lv, lo);
            let sc = exprs.int(s);
            exprs.ibinary(BinOp::Div, diff, sc)
        }
    };
    titanc_il::fold::fold_expr(exprs, k);
    k
}

/// The trip-count expression `max(0, (hi - lo + step) / step)`. Builds a
/// fresh tree (deep-copying `lo` and `hi`).
fn trip_count(exprs: &mut ExprPool, shape: &LoopShape) -> ExprId {
    let hi = exprs.copy(shape.hi);
    let lo = exprs.copy(shape.lo);
    let diff = exprs.ibinary(BinOp::Sub, hi, lo);
    let st = exprs.int(shape.step);
    let span = exprs.ibinary(BinOp::Add, diff, st);
    let zero = exprs.int(0);
    let st2 = exprs.int(shape.step);
    let div = exprs.ibinary(BinOp::Div, span, st2);
    let t = exprs.ibinary(BinOp::Max, zero, div);
    titanc_il::fold::fold_expr(exprs, t);
    t
}

/// Materializes the signed increment as a fresh tree.
fn make_inc(exprs: &mut ExprPool, inc: &IncPlan) -> ExprId {
    match *inc {
        IncPlan::Pos(e) => exprs.copy(e),
        IncPlan::Neg(e) => {
            let c = exprs.copy(e);
            exprs.unary(titanc_il::UnOp::Neg, ScalarType::Int, c)
        }
    }
}

/// Substitutes one candidate: uses before the increment read
/// `v0 + k*c`, uses after it read `v0 + (k+1)*c`; `v0` snapshots the entry
/// value before the loop and a finalization after the loop restores `v` for
/// any later readers (dead-code elimination removes both when unused).
fn apply_candidate(
    proc: &mut Procedure,
    loop_id: StmtId,
    shape: &LoopShape,
    cand: &Candidate,
) -> bool {
    let kind = proc.var_scalar(cand.v);
    let v0 = proc.fresh_temp(match kind {
        ScalarType::Ptr => Type::ptr_to(Type::Void),
        ScalarType::Int => Type::Int,
        ScalarType::Char => Type::Char,
        ScalarType::Float => Type::Float,
        ScalarType::Double => Type::Double,
    });
    // three independent affine trees (templates): each gets its own
    // copies of lo/hi/inc so no slots are shared between them
    let affine = |exprs: &mut ExprPool, iters: ExprId, inc: ExprId| {
        let v0e = exprs.var(v0);
        let mul = exprs.ibinary(BinOp::Mul, iters, inc);
        let e = exprs.binary(BinOp::Add, kind, v0e, mul);
        titanc_il::fold::fold_expr(exprs, e);
        e
    };
    let pre_value = {
        let k = iteration_index(&mut proc.exprs, shape);
        let inc = make_inc(&mut proc.exprs, &cand.inc);
        affine(&mut proc.exprs, k, inc)
    };
    let post_value = {
        let k = iteration_index(&mut proc.exprs, shape);
        let one = proc.exprs.int(1);
        let k1 = proc.exprs.ibinary(BinOp::Add, k, one);
        let inc = make_inc(&mut proc.exprs, &cand.inc);
        affine(&mut proc.exprs, k1, inc)
    };
    let final_value = {
        let t = trip_count(&mut proc.exprs, shape);
        let inc = make_inc(&mut proc.exprs, &cand.inc);
        affine(&mut proc.exprs, t, inc)
    };

    let v_read = proc.exprs.var(cand.v);
    let pre_stmt = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(v0),
        rhs: v_read,
    });
    let final_stmt = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(cand.v),
        rhs: final_value,
    });

    // rewrite the loop body in place
    #[allow(clippy::too_many_arguments)]
    fn find_and_apply(
        stmts: &mut StmtPool,
        exprs: &mut ExprPool,
        block: &mut Block,
        loop_id: StmtId,
        cand_v: VarId,
        def_pos: usize,
        pre_value: ExprId,
        post_value: ExprId,
        pre_stmt: StmtId,
        final_stmt: StmtId,
    ) -> bool {
        for i in 0..block.len() {
            let s = block[i];
            if s == loop_id {
                let kind = std::mem::replace(&mut stmts[s], StmtKind::Nop);
                if let StmtKind::DoLoop { body, .. } | StmtKind::DoParallel { body, .. } = &kind {
                    for (p, &inner) in body.iter().enumerate() {
                        let value = if p <= def_pos { pre_value } else { post_value };
                        crate::util::replace_reads(stmts, exprs, inner, cand_v, value);
                    }
                }
                stmts[s] = kind;
                block.insert(i, pre_stmt);
                block.insert(i + 2, final_stmt);
                return true;
            }
            let mut kind = std::mem::replace(&mut stmts[s], StmtKind::Nop);
            let mut done = false;
            for b in kind.blocks_mut() {
                if find_and_apply(
                    stmts, exprs, b, loop_id, cand_v, def_pos, pre_value, post_value, pre_stmt,
                    final_stmt,
                ) {
                    done = true;
                    break;
                }
            }
            stmts[s] = kind;
            if done {
                return true;
            }
        }
        false
    }

    let mut body = std::mem::take(&mut proc.body);
    let ok = find_and_apply(
        &mut proc.stmts,
        &mut proc.exprs,
        &mut body,
        loop_id,
        cand.v,
        cand.def_pos,
        pre_value,
        post_value,
        pre_stmt,
        final_stmt,
    );
    proc.body = body;
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whiledo::convert_while_loops;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    fn prep(src: &str) -> Procedure {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        convert_while_loops(&mut proc);
        proc
    }

    #[test]
    fn substitutes_pointer_walk() {
        let mut proc =
            prep("void copy(float *a, float *b, int n) { while (n) { *a++ = *b++; n--; } }");
        let rep = induction_substitution(&mut proc);
        // a, b and n are all auxiliary induction variables
        assert_eq!(rep.substituted, 3, "{}", pretty_proc(&proc));
        let text = pretty_proc(&proc);
        // the walking pointers are replaced by affine expressions of the
        // dummy counter
        assert!(text.contains("dummy"), "{text}");
    }

    #[test]
    fn single_pass_for_simple_loops() {
        let mut proc = prep("void f(float *a, int n) { int i; for (i = 0; i < n; i++) *a++ = 0; }");
        let rep = induction_substitution(&mut proc);
        assert!(rep.substituted >= 1);
        // substitution finishes in one productive pass + one empty pass
        assert!(rep.passes <= 4, "passes = {}", rep.passes);
    }

    #[test]
    fn preserves_semantics_upcount() {
        let src = r#"
float out_x[16];
int main(void)
{
    float *p;
    int i;
    p = &out_x[0];
    for (i = 0; i < 16; i++) {
        *p++ = i * 2.0f;
    }
    return (int)out_x[15];
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn preserves_semantics_countdown() {
        let src = r#"
float out_x[16];
int main(void)
{
    float *p;
    int n;
    p = &out_x[0];
    n = 16;
    while (n) {
        *p++ = n * 1.0f;
        n--;
    }
    return (int)out_x[15];
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn preserves_semantics_variable_still_used_after_loop() {
        // p is read after the loop: finalization must restore it
        let src = r#"
float out_x[8];
int main(void)
{
    float *p, *base;
    int i;
    base = &out_x[0];
    p = base;
    for (i = 0; i < 8; i++)
        *p++ = i;
    return (int)(p - base);
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn zero_trip_loop_finalization_is_correct() {
        let src = r#"
float out_x[8];
int main(void)
{
    float *p, *base;
    int i, n;
    n = 0;
    base = &out_x[0];
    p = base;
    for (i = 0; i < n; i++)
        *p++ = i;
    return (int)(p - base);
}
"#;
        check_equivalence(src);
    }

    #[test]
    fn derived_candidate_needs_second_pass() {
        // q depends on p's increment; p substitutes first, unblocking
        // nothing here but exercising the rescan
        let src = r#"
float out_x[8];
int main(void)
{
    float *p;
    int i, stride;
    stride = 1;
    p = &out_x[0];
    for (i = 0; i < 8; i++) {
        *p = i;
        p = p + stride;
    }
    return (int)out_x[7];
}
"#;
        check_equivalence(src);
    }

    fn check_equivalence(src: &str) {
        let prog = compile_to_il(src).unwrap();
        let mut opt_prog = prog.clone();
        convert_while_loops(&mut opt_prog.procs[0]);
        let rep = induction_substitution(&mut opt_prog.procs[0]);
        let cfg = titanc_titan::MachineConfig::default;
        let (before, _) =
            titanc_titan::observe(&prog, cfg(), "main", &[("out_x", ScalarType::Float, 8)])
                .unwrap();
        let (after, _) =
            titanc_titan::observe(&opt_prog, cfg(), "main", &[("out_x", ScalarType::Float, 8)])
                .unwrap_or_else(|e| {
                    panic!(
                        "optimized program failed: {e}\n{}",
                        pretty_proc(&opt_prog.procs[0])
                    )
                });
        assert_eq!(
            before,
            after,
            "report {rep:?}\n{}",
            pretty_proc(&opt_prog.procs[0])
        );
    }
}
