//! Local common-subexpression elimination.
//!
//! The §6 reduction algorithm "utilizes the array dependence graph to
//! simultaneously reduce expensive operations, remove loop invariant
//! expressions, and eliminate common subexpressions"; and §11 notes the
//! front end can be sloppy "secure in the knowledge that … subexpression
//! elimination will undo any damage". Address CSE across loop iterations
//! lives in `titanc-vector`'s strength reduction; this pass catches the
//! straight-line case: a pure subexpression computed twice within a block
//! is computed once into a temporary.
//!
//! Only *pure register expressions* participate (no loads, no volatile, no
//! sections): they can be hoisted to the first occurrence without regard
//! to memory effects. Candidate windows end at control-flow statements and
//! at redefinitions of any variable the expression reads.
//!
//! Candidates are compared *structurally* ([`ExprPool::expr_eq`]), so the
//! arena layout of equal subtrees is irrelevant; the commoned definition
//! gets a detached deep copy of the subtree so later slot rewrites of the
//! occurrences cannot disturb it.

use crate::util::register_candidate;
use titanc_il::{Block, Expr, ExprId, ExprPool, LValue, Procedure, StmtId, StmtKind, Type, VarId};

/// CSE statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CseReport {
    /// Subexpressions commoned into temporaries.
    pub commoned: usize,
    /// Individual occurrences replaced.
    pub replaced: usize,
}

impl CseReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: CseReport) {
        self.commoned += other.commoned;
        self.replaced += other.replaced;
    }
}

titanc_il::struct_json!(CseReport, [commoned, replaced]);

/// Runs local CSE over every block of the procedure.
pub fn local_cse(proc: &mut Procedure) -> CseReport {
    let mut report = CseReport::default();
    let mut body = std::mem::take(&mut proc.body);
    run_block(proc, &mut body, &mut report);
    proc.body = body;
    if report.commoned > 0 || report.replaced > 0 {
        proc.bump_generation();
    }
    report
}

fn is_barrier(kind: &StmtKind) -> bool {
    matches!(
        kind,
        StmtKind::Label(_)
            | StmtKind::Goto(_)
            | StmtKind::IfGoto { .. }
            | StmtKind::Call { .. }
            | StmtKind::Return(_)
    )
}

fn run_block(proc: &mut Procedure, block: &mut Block, report: &mut CseReport) {
    // nested blocks first
    for &s in block.iter() {
        let mut kind = std::mem::replace(&mut proc.stmts[s], StmtKind::Nop);
        for b in kind.blocks_mut() {
            run_block(proc, b, report);
        }
        proc.stmts[s] = kind;
    }
    let mut i = 0;
    while i < block.len() {
        if is_barrier(&proc.stmts[block[i]]) {
            i += 1;
            continue;
        }
        // candidate subexpressions of statement i, largest first
        let mut cands: Vec<ExprId> = Vec::new();
        for e in proc.stmts[block[i]].exprs() {
            collect_candidates(&proc.exprs, e, &mut cands);
        }
        cands.sort_by_key(|&e| std::cmp::Reverse(proc.exprs.size(e)));
        let mut did = false;
        for cand in cands {
            if try_common(proc, block, i, cand, report) {
                did = true;
                break; // statement i changed; rescan it
            }
        }
        if !did {
            i += 1;
        }
    }
}

/// Pure, load-free subexpressions worth commoning (size ≥ 3).
fn collect_candidates(exprs: &ExprPool, e: ExprId, out: &mut Vec<ExprId>) {
    if exprs.size(e) >= 3
        && is_pure_register_expr(exprs, e)
        && !out.iter().any(|&o| exprs.expr_eq(o, exprs, e))
    {
        out.push(e);
    }
    for c in exprs[e].child_ids() {
        collect_candidates(exprs, c, out);
    }
}

fn is_pure_register_expr(exprs: &ExprPool, e: ExprId) -> bool {
    match exprs[e] {
        Expr::Load { .. } | Expr::Section { .. } => false,
        _ => exprs[e]
            .child_ids()
            .into_iter()
            .all(|c| is_pure_register_expr(exprs, c)),
    }
}

/// Counts occurrences of `cand` in an expression tree.
fn count_occurrences(exprs: &ExprPool, e: ExprId, cand: ExprId) -> usize {
    let mine = usize::from(exprs.expr_eq(e, exprs, cand));
    mine + exprs[e]
        .child_ids()
        .into_iter()
        .map(|c| count_occurrences(exprs, c, cand))
        .sum::<usize>()
}

fn replace_occurrences(exprs: &mut ExprPool, e: ExprId, cand: ExprId, t: VarId) -> usize {
    if exprs.expr_eq(e, exprs, cand) {
        exprs[e] = Expr::Var(t);
        return 1;
    }
    let mut n = 0;
    for c in exprs[e].child_ids() {
        n += replace_occurrences(exprs, c, cand, t);
    }
    n
}

/// Tries to common `cand`, first occurring in statement `start`, across
/// its valid window. Returns true when a rewrite happened.
fn try_common(
    proc: &mut Procedure,
    block: &mut Block,
    start: usize,
    cand_orig: ExprId,
    report: &mut CseReport,
) -> bool {
    let deps: Vec<VarId> = proc.exprs.vars_read(cand_orig);
    if deps.iter().any(|&v| !register_candidate(proc, v)) {
        return false;
    }
    // window: statements start..end where no dep is redefined and no
    // barrier intervenes (the defining statement itself may redefine a dep
    // — occurrences in later statements then see a different value)
    let mut end = start;
    let mut total = 0usize;
    for (j, &s) in block.iter().enumerate().skip(start) {
        if j > start && is_barrier(&proc.stmts[s]) {
            break;
        }
        // count occurrences in this statement (top-level exprs only; the
        // nested blocks of an If/loop may execute conditionally but the
        // candidate is pure, so replacing there is still sound as long as
        // deps are not redefined inside)
        let nested_safe = proc.stmts[s].blocks().iter().all(|b| {
            deps.iter()
                .all(|&v| !crate::util::defined_in(&proc.stmts, b, v))
        });
        if !nested_safe {
            // stop before descending into a block that redefines deps
            total += proc.stmts[s]
                .exprs()
                .iter()
                .map(|&e| count_occurrences(&proc.exprs, e, cand_orig))
                .sum::<usize>();
            end = j;
            break;
        }
        total += count_in_stmt(proc, s, cand_orig);
        end = j;
        if deps.iter().any(|&v| proc.stmts[s].defined_var() == Some(v)) {
            break;
        }
    }
    if total < 2 {
        return false;
    }

    // materialize: t = cand, inserted before `start`. The definition keeps
    // a detached deep copy so replacing the occurrences (including the
    // original subtree) cannot corrupt it.
    let scalar = proc.exprs.result_type(cand_orig, &|v| proc.var_scalar(v));
    let t = proc.fresh_temp(match scalar {
        titanc_il::ScalarType::Char => Type::Char,
        titanc_il::ScalarType::Int => Type::Int,
        titanc_il::ScalarType::Float => Type::Float,
        titanc_il::ScalarType::Double => Type::Double,
        titanc_il::ScalarType::Ptr => Type::ptr_to(Type::Void),
    });
    proc.var_mut(t).name = format!("cse_{}", t.index());
    let cand = proc.exprs.copy(cand_orig);
    let def = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(t),
        rhs: cand,
    });
    let mut replaced = 0;
    for &s in block.iter().take(end + 1).skip(start) {
        replaced += replace_in_stmt(proc, s, cand, t);
        if deps.iter().any(|&v| proc.stmts[s].defined_var() == Some(v)) {
            break;
        }
    }
    block.insert(start, def);
    report.commoned += 1;
    report.replaced += replaced;
    true
}

fn count_in_stmt(proc: &Procedure, s: StmtId, cand: ExprId) -> usize {
    let mut n: usize = proc.stmts[s]
        .exprs()
        .iter()
        .map(|&e| count_occurrences(&proc.exprs, e, cand))
        .sum();
    for b in proc.stmts[s].blocks() {
        for &inner in b {
            n += count_in_stmt(proc, inner, cand);
        }
    }
    n
}

fn replace_in_stmt(proc: &mut Procedure, s: StmtId, cand: ExprId, t: VarId) -> usize {
    let mut n = 0;
    for e in proc.stmts[s].exprs() {
        n += replace_occurrences(&mut proc.exprs, e, cand, t);
    }
    let nested: Vec<StmtId> = proc.stmts[s]
        .blocks()
        .iter()
        .flat_map(|b| b.iter().copied())
        .collect();
    for inner in nested {
        n += replace_in_stmt(proc, inner, cand, t);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    fn cse(src: &str) -> (Procedure, CseReport) {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        let rep = local_cse(&mut proc);
        (proc, rep)
    }

    #[test]
    fn commons_repeated_arithmetic() {
        let (proc, rep) = cse(
            "int f(int a, int b) { int x, y; x = (a + b) * 2; y = (a + b) * 2 + 1; return x + y; }",
        );
        assert_eq!(rep.commoned, 1, "{}", pretty_proc(&proc));
        assert_eq!(rep.replaced, 2);
        let text = pretty_proc(&proc);
        assert!(text.contains("cse_"), "{text}");
    }

    #[test]
    fn stops_at_redefinition() {
        let (_proc, rep) = cse(
            "int f(int a, int b) { int x, y; x = a + b + 1; a = 0; y = a + b + 1; return x + y; }",
        );
        assert_eq!(rep.commoned, 0, "a changed between the occurrences");
    }

    #[test]
    fn loads_are_not_commoned_here() {
        let (_proc, rep) = cse("int f(int *p) { int x, y; x = *p + 1; y = *p + 1; return x + y; }");
        assert_eq!(rep.commoned, 0, "memory expressions are out of scope");
    }

    #[test]
    fn single_occurrence_untouched() {
        let (proc, rep) = cse("int f(int a, int b) { return (a + b) * 3; }");
        assert_eq!(rep.commoned, 0);
        assert_eq!(proc.len(), 1);
    }

    #[test]
    fn equivalence_on_simulator() {
        let src = r#"
int out_g[2];
int main(void)
{
    int a, b, x, y;
    a = 6; b = 7;
    x = (a * b) + (a * b);
    y = (a * b) * 2;
    out_g[0] = x;
    out_g[1] = y;
    return x - y;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut opt = prog.clone();
        let rep = local_cse(&mut opt.procs[0]);
        assert!(rep.commoned >= 1);
        let g = [("out_g", titanc_il::ScalarType::Int, 2)];
        let cfg = titanc_titan::MachineConfig::default;
        let (b, _) = titanc_titan::observe(&prog, cfg(), "main", &g).unwrap();
        let (a, _) = titanc_titan::observe(&opt, cfg(), "main", &g).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn volatile_untouched() {
        let (_proc, rep) =
            cse("volatile int s; int f(void) { int x, y; x = s + 1; y = s + 1; return x + y; }");
        assert_eq!(rep.commoned, 0, "volatile reads must both happen");
    }
}
