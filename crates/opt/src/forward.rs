//! Forward (copy/expression) substitution.
//!
//! Propagates `x = expr` forward into later reads of `x`, block by block.
//! The front end's copy temporaries (`temp_1 = a; … *temp_1 …`) and the
//! affine expressions produced by induction-variable substitution both
//! reach their use sites through this pass; the paper's compiler is "safe
//! in propagating address constants … because it knows that strength
//! reduction and subexpression elimination will undo any damage" (§11).
//!
//! A substitution stops at a redefinition of `x` or of any variable the
//! expression reads; expressions containing (non-volatile) loads
//! additionally stop at stores and calls. Expressions with volatile loads
//! never move.

use crate::util::{defined_in, register_candidate};
use titanc_il::{Expr, LValue, Procedure, Stmt, StmtKind, VarId};

/// Substitution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ForwardReport {
    /// Reads replaced.
    pub substituted: usize,
}

impl ForwardReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: ForwardReport) {
        self.substituted += other.substituted;
    }
}

titanc_il::struct_json!(ForwardReport, [substituted]);

/// Runs forward substitution over every block of the procedure.
pub fn forward_substitute(proc: &mut Procedure) -> ForwardReport {
    let mut report = ForwardReport::default();
    let mut body = std::mem::take(&mut proc.body);
    run_block(proc, &mut body, &mut report);
    proc.body = body;
    if report.substituted > 0 {
        proc.bump_generation();
    }
    report
}

fn run_block(proc: &Procedure, block: &mut [Stmt], report: &mut ForwardReport) {
    // recurse into nested blocks first
    for s in block.iter_mut() {
        for b in s.blocks_mut() {
            run_block(proc, b, report);
        }
    }
    let len = block.len();
    for i in 0..len {
        let (x, rhs) = match &block[i].kind {
            StmtKind::Assign {
                lhs: LValue::Var(x),
                rhs,
            } => (*x, rhs.clone()),
            _ => continue,
        };
        if !register_candidate(proc, x) {
            continue;
        }
        if rhs.has_volatile_load() || rhs.has_section() {
            continue;
        }
        if rhs.reads_var(x) {
            continue; // x = f(x): nothing to forward
        }
        // avoid exponential growth: cap the substituted expression size
        if rhs.size() > 24 {
            continue;
        }
        let deps: Vec<VarId> = rhs.vars_read();
        let has_loads = rhs.has_load();
        let mut j = i + 1;
        while j < len {
            // control-flow joins and departures end the straight-line
            // window: a label may be reached from elsewhere (the def does
            // not dominate it), and nothing after an unconditional goto is
            // reached by fallthrough.
            if matches!(block[j].kind, StmtKind::Label(_) | StmtKind::Goto(_)) {
                break;
            }
            // a statement may read x before (possibly) redefining it
            let stmt = &mut block[j];

            // nested blocks: only substitute inside when the block cannot
            // invalidate the expression or x
            let nested_safe = {
                let blocks = stmt.blocks();
                blocks.iter().all(|b| {
                    !defined_in(b, x)
                        && deps.iter().all(|&d| !defined_in(b, d))
                        && (!has_loads || !block_may_write_memory(b))
                })
            };

            // substitute reads in the statement's own expressions
            if nested_safe || stmt.blocks().is_empty() {
                for e in stmt.exprs_mut() {
                    report.substituted += e.substitute_var(x, &rhs);
                }
            } else {
                // cannot see through the nested block: stop
                break;
            }
            if nested_safe && !stmt.blocks().is_empty() {
                for b in stmt.blocks_mut() {
                    report.substituted += subst_in_block(b, x, &rhs);
                }
            }

            // stop conditions, evaluated after the reads of stmt j
            let stmt = &block[j];
            if stmt.defined_var() == Some(x) {
                break;
            }
            if stmt.blocks().iter().any(|b| defined_in(b, x)) {
                break;
            }
            if deps.iter().any(|&d| {
                stmt.defined_var() == Some(d) || stmt.blocks().iter().any(|b| defined_in(b, d))
            }) {
                break;
            }
            if has_loads && stmt_may_write_memory(stmt) {
                break;
            }
            j += 1;
        }
    }
}

fn subst_in_block(block: &mut [Stmt], x: VarId, rhs: &Expr) -> usize {
    let mut n = 0;
    for s in block {
        for e in s.exprs_mut() {
            n += e.substitute_var(x, rhs);
        }
        for b in s.blocks_mut() {
            n += subst_in_block(b, x, rhs);
        }
    }
    n
}

fn stmt_may_write_memory(s: &Stmt) -> bool {
    s.writes_memory() || s.blocks().iter().any(|b| block_may_write_memory(b))
}

fn block_may_write_memory(block: &[Stmt]) -> bool {
    block.iter().any(stmt_may_write_memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    fn fwd(src: &str) -> Procedure {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        forward_substitute(&mut proc);
        proc
    }

    #[test]
    fn copies_propagate() {
        let proc = fwd("int f(int a) { int t; t = a; return t + t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return (a + a);"), "{text}");
    }

    #[test]
    fn stops_at_source_redefinition() {
        let proc = fwd("int f(int a) { int t; t = a; a = 0; return t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return t;"), "a changed: {text}");
    }

    #[test]
    fn stops_at_target_redefinition() {
        // the first copy (t = a) must NOT reach past t = 5; the second
        // definition forwards instead.
        let proc = fwd("int f(int a) { int t; t = a; t = 5; return t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return 5;"), "{text}");
        assert!(!text.contains("return a;"), "{text}");
    }

    #[test]
    fn loads_stop_at_stores() {
        let proc = fwd("int f(int *p, int *q) { int t; t = *p; *q = 9; return t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return t;"), "store may alias *p: {text}");
    }

    #[test]
    fn loads_pass_pure_statements() {
        let proc = fwd("int f(int *p) { int t, u; t = *p; u = 3; return t + u; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("*(int *)(p) + "), "{text}");
    }

    #[test]
    fn volatile_reads_never_move() {
        let proc = fwd("volatile int s; int f(void) { int t; t = s; return t + t; }");
        let text = pretty_proc(&proc);
        assert!(
            text.matches("volatile").count() == 1,
            "exactly one volatile read remains: {text}"
        );
    }

    #[test]
    fn substitutes_into_safe_nested_blocks() {
        let proc =
            fwd("int f(int a, int c) { int t, r; t = a * 2; r = 0; if (c) { r = t; } return r; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("r = (a * 2)"), "{text}");
    }

    #[test]
    fn stops_at_unsafe_nested_blocks() {
        let proc =
            fwd("int f(int a, int c) { int t, r; t = a; if (c) { a = 1; } r = t; return r; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("r = t"), "conditional redef of a: {text}");
    }

    #[test]
    fn equivalence_on_simulator() {
        let src = r#"
int out_g[1];
int main(void)
{
    int a, t, u;
    a = 6;
    t = a * 7;
    u = t + 1;
    out_g[0] = u - 1;
    return t;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut opt = prog.clone();
        forward_substitute(&mut opt.procs[0]);
        let cfg = titanc_titan::MachineConfig::default;
        let g = [("out_g", titanc_il::ScalarType::Int, 1)];
        let (b, _) = titanc_titan::observe(&prog, cfg(), "main", &g).unwrap();
        let (a, _) = titanc_titan::observe(&opt, cfg(), "main", &g).unwrap();
        assert_eq!(b, a);
    }
}
