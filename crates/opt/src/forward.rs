//! Forward (copy/expression) substitution.
//!
//! Propagates `x = expr` forward into later reads of `x`, block by block.
//! The front end's copy temporaries (`temp_1 = a; … *temp_1 …`) and the
//! affine expressions produced by induction-variable substitution both
//! reach their use sites through this pass; the paper's compiler is "safe
//! in propagating address constants … because it knows that strength
//! reduction and subexpression elimination will undo any damage" (§11).
//!
//! A substitution stops at a redefinition of `x` or of any variable the
//! expression reads; expressions containing (non-volatile) loads
//! additionally stop at stores and calls. Expressions with volatile loads
//! never move.
//!
//! Substituted reads get a *deep copy* of the defining expression per
//! occurrence ([`titanc_il::ExprPool::substitute_var`]), preserving the
//! no-shared-slots invariant; the replaced `Var` nodes become arena
//! garbage swept at the next compaction point.

use crate::util::{defined_in, register_candidate, replace_reads};
use titanc_il::{Block, LValue, Procedure, StmtId, StmtKind, StmtPool, VarId};

/// Substitution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ForwardReport {
    /// Reads replaced.
    pub substituted: usize,
}

impl ForwardReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: ForwardReport) {
        self.substituted += other.substituted;
    }
}

titanc_il::struct_json!(ForwardReport, [substituted]);

/// Runs forward substitution over every block of the procedure.
pub fn forward_substitute(proc: &mut Procedure) -> ForwardReport {
    let mut report = ForwardReport::default();
    let body = proc.body.clone();
    run_block(proc, &body, &mut report);
    if report.substituted > 0 {
        proc.bump_generation();
    }
    report
}

fn run_block(proc: &mut Procedure, block: &[StmtId], report: &mut ForwardReport) {
    // recurse into nested blocks first (no structural edits: id lists are
    // cloned, statement kinds stay in place)
    for &s in block {
        let nested: Vec<Block> = proc.stmts[s].blocks().iter().map(|b| b.to_vec()).collect();
        for b in &nested {
            run_block(proc, b, report);
        }
    }
    let len = block.len();
    for i in 0..len {
        let (x, rhs) = match &proc.stmts[block[i]] {
            StmtKind::Assign {
                lhs: LValue::Var(x),
                rhs,
            } => (*x, *rhs),
            _ => continue,
        };
        if !register_candidate(proc, x) {
            continue;
        }
        if proc.exprs.has_volatile_load(rhs) || proc.exprs.has_section(rhs) {
            continue;
        }
        if proc.exprs.reads_var(rhs, x) {
            continue; // x = f(x): nothing to forward
        }
        // avoid exponential growth: cap the substituted expression size
        if proc.exprs.size(rhs) > 24 {
            continue;
        }
        let deps: Vec<VarId> = proc.exprs.vars_read(rhs);
        let has_loads = proc.exprs.has_load(rhs);
        let mut j = i + 1;
        while j < len {
            let s = block[j];
            // control-flow joins and departures end the straight-line
            // window: a label may be reached from elsewhere (the def does
            // not dominate it), and nothing after an unconditional goto is
            // reached by fallthrough.
            if matches!(proc.stmts[s], StmtKind::Label(_) | StmtKind::Goto(_)) {
                break;
            }

            // nested blocks: only substitute inside when the block cannot
            // invalidate the expression or x (vacuously true for
            // straight-line statements)
            let nested_safe = proc.stmts[s].blocks().iter().all(|b| {
                !defined_in(&proc.stmts, b, x)
                    && deps.iter().all(|&d| !defined_in(&proc.stmts, b, d))
                    && (!has_loads || !block_may_write_memory(&proc.stmts, b))
            });
            if !nested_safe {
                // cannot see through the nested block: stop
                break;
            }

            // a statement may read x before (possibly) redefining it;
            // substitute first, then evaluate the stop conditions
            report.substituted += replace_reads(&proc.stmts, &mut proc.exprs, s, x, rhs);

            let kind = &proc.stmts[s];
            if kind.defined_var() == Some(x)
                || kind.blocks().iter().any(|b| defined_in(&proc.stmts, b, x))
            {
                break;
            }
            if deps.iter().any(|&d| {
                kind.defined_var() == Some(d)
                    || kind.blocks().iter().any(|b| defined_in(&proc.stmts, b, d))
            }) {
                break;
            }
            if has_loads && stmt_may_write_memory(&proc.stmts, s) {
                break;
            }
            j += 1;
        }
    }
}

fn stmt_may_write_memory(pool: &StmtPool, s: StmtId) -> bool {
    pool[s].writes_memory()
        || pool[s]
            .blocks()
            .iter()
            .any(|b| block_may_write_memory(pool, b))
}

fn block_may_write_memory(pool: &StmtPool, block: &[StmtId]) -> bool {
    block.iter().any(|&s| stmt_may_write_memory(pool, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    fn fwd(src: &str) -> Procedure {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        forward_substitute(&mut proc);
        proc
    }

    #[test]
    fn copies_propagate() {
        let proc = fwd("int f(int a) { int t; t = a; return t + t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return (a + a);"), "{text}");
    }

    #[test]
    fn stops_at_source_redefinition() {
        let proc = fwd("int f(int a) { int t; t = a; a = 0; return t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return t;"), "a changed: {text}");
    }

    #[test]
    fn stops_at_target_redefinition() {
        // the first copy (t = a) must NOT reach past t = 5; the second
        // definition forwards instead.
        let proc = fwd("int f(int a) { int t; t = a; t = 5; return t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return 5;"), "{text}");
        assert!(!text.contains("return a;"), "{text}");
    }

    #[test]
    fn loads_stop_at_stores() {
        let proc = fwd("int f(int *p, int *q) { int t; t = *p; *q = 9; return t; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("return t;"), "store may alias *p: {text}");
    }

    #[test]
    fn loads_pass_pure_statements() {
        let proc = fwd("int f(int *p) { int t, u; t = *p; u = 3; return t + u; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("*(int *)(p) + "), "{text}");
    }

    #[test]
    fn volatile_reads_never_move() {
        let proc = fwd("volatile int s; int f(void) { int t; t = s; return t + t; }");
        let text = pretty_proc(&proc);
        assert!(
            text.matches("volatile").count() == 1,
            "exactly one volatile read remains: {text}"
        );
    }

    #[test]
    fn substitutes_into_safe_nested_blocks() {
        let proc =
            fwd("int f(int a, int c) { int t, r; t = a * 2; r = 0; if (c) { r = t; } return r; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("r = (a * 2)"), "{text}");
    }

    #[test]
    fn stops_at_unsafe_nested_blocks() {
        let proc =
            fwd("int f(int a, int c) { int t, r; t = a; if (c) { a = 1; } r = t; return r; }");
        let text = pretty_proc(&proc);
        assert!(text.contains("r = t"), "conditional redef of a: {text}");
    }

    #[test]
    fn equivalence_on_simulator() {
        let src = r#"
int out_g[1];
int main(void)
{
    int a, t, u;
    a = 6;
    t = a * 7;
    u = t + 1;
    out_g[0] = u - 1;
    return t;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut opt = prog.clone();
        forward_substitute(&mut opt.procs[0]);
        let cfg = titanc_titan::MachineConfig::default;
        let g = [("out_g", titanc_il::ScalarType::Int, 1)];
        let (b, _) = titanc_titan::observe(&prog, cfg(), "main", &g).unwrap();
        let (a, _) = titanc_titan::observe(&opt, cfg(), "main", &g).unwrap();
        assert_eq!(b, a);
    }
}
