//! The vectorizer: DO loops → triplet-notation vector statements, strip
//! mined and spread across processors (§5, §9).
//!
//! For each innermost DO loop the dependence graph is condensed into
//! strongly connected components. When every component is a trivial
//! (acyclic) vectorizable assignment, the loop is replaced by vector
//! statements in topological order — the paper's
//!
//! ```text
//! do parallel vi = 0,99,32 {
//!     vr = min(99, vi+31);
//!     a[vi:vr:1] = b[vi:vr:1] + c[vi:vr:1];
//! }
//! ```
//!
//! When a loop cannot be vectorized but its iterations are proven
//! independent, it is converted to `do parallel` unchanged (loop
//! spreading, §2 item 2).

use titanc_deps::{const_trip_count, decompose, Aliasing, DepGraph, DepKind, Verdict};
use titanc_il::{
    BinOp, Expr, LValue, LoopDecision, LoopEvent, Procedure, ScalarType, SrcSpan, Stmt, StmtId,
    StmtKind, Type, VarId,
};
use titanc_opt::util::defined_in;

/// Vectorizer configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorOptions {
    /// Aliasing regime for unprovable base pairs.
    pub aliasing: Aliasing,
    /// Emit `do parallel` strip loops (multiprocessor spreading).
    pub parallelize: bool,
    /// Strip length when parallelizing (the paper's examples use 32).
    pub strip: i64,
    /// Maximum single vector length (the Titan register file holds
    /// vectors up to 2048 elements).
    pub max_vl: i64,
}

impl Default for VectorOptions {
    fn default() -> VectorOptions {
        VectorOptions {
            aliasing: Aliasing::C,
            parallelize: false,
            strip: 32,
            max_vl: 2048,
        }
    }
}

/// What happened to each loop.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VectorReport {
    /// Loops fully vectorized.
    pub vectorized: usize,
    /// Loops converted to `do parallel` without vectorizing.
    pub spread: usize,
    /// Loops left scalar.
    pub scalar: usize,
    /// One human-readable note per scalar loop, naming the defeating
    /// dependence or construct (surfaced as compiler remarks).
    pub notes: Vec<String>,
    /// Per-loop decision events with source spans, covering every loop of
    /// the procedure: visited innermost loops (vectorized / spread /
    /// scalar-with-reason) plus the end-of-pass sweep over loops the
    /// vectorizer never considers (non-innermost DO loops, unconverted
    /// `while` loops).
    pub events: Vec<LoopEvent>,
}

impl VectorReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: VectorReport) {
        self.vectorized += other.vectorized;
        self.spread += other.spread;
        self.scalar += other.scalar;
        self.notes.extend(other.notes);
        self.events.extend(other.events);
    }
}

titanc_il::struct_json!(VectorReport, [vectorized, spread, scalar, notes, events]);

/// Vectorizes every innermost DO loop of the procedure.
pub fn vectorize(proc: &mut Procedure, opts: &VectorOptions) -> VectorReport {
    let mut report = VectorReport::default();
    let mut done: std::collections::HashSet<StmtId> = std::collections::HashSet::new();
    loop {
        let target = find_innermost_do(proc, &done);
        let id = match target {
            Some(id) => id,
            None => break,
        };
        done.insert(id);
        let (var, span) = loop_head(proc, id);
        match try_vectorize_loop(proc, id, opts) {
            Outcome::Vectorized {
                stripped,
                parallel,
                residual,
                strip_ids,
            } => {
                report.vectorized += 1;
                // strip loops are compiler-generated carriers for the
                // vector statements; never revisit (or report) them
                done.extend(strip_ids);
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var,
                    span,
                    decision: LoopDecision::Vectorized {
                        stripped,
                        parallel,
                        residual,
                    },
                });
            }
            Outcome::Spread => {
                report.spread += 1;
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var,
                    span,
                    decision: LoopDecision::Parallelized,
                });
            }
            Outcome::Scalar { note, defeat } => {
                report.scalar += 1;
                report.notes.push(note);
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var,
                    span,
                    decision: LoopDecision::Scalar(defeat),
                });
            }
        }
    }
    sweep_unvisited_loops(proc, &done, &mut report);
    if report.vectorized > 0 || report.spread > 0 {
        proc.bump_generation();
    }
    report
}

/// The controlling variable's name and source span of a loop header.
fn loop_head(proc: &Procedure, id: StmtId) -> (String, SrcSpan) {
    match proc.find_stmt(id) {
        Some(s) => {
            let var = match &s.kind {
                StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => {
                    proc.var(*var).name.clone()
                }
                _ => String::new(),
            };
            (var, s.span)
        }
        None => (String::new(), SrcSpan::NONE),
    }
}

/// Accounts for every loop the innermost-DO walk never visits, so the
/// driver's `--opt-report` can classify all source loops: non-innermost DO
/// loops (the vectorizer only considers innermost loops) and `while` loops
/// that survived DO conversion. Spread (`WhileSpread`) and `do parallel`
/// loops are already covered by their own events.
fn sweep_unvisited_loops(
    proc: &Procedure,
    done: &std::collections::HashSet<StmtId>,
    report: &mut VectorReport,
) {
    let mut events = Vec::new();
    proc.for_each_stmt(&mut |s| match &s.kind {
        StmtKind::DoLoop { var, .. } if !done.contains(&s.id) => {
            events.push(LoopEvent {
                proc: proc.name.clone(),
                var: proc.var(*var).name.clone(),
                span: s.span,
                decision: LoopDecision::Scalar(
                    "contains an inner loop (only innermost loops are vectorized)".to_string(),
                ),
            });
        }
        StmtKind::While { .. } => {
            events.push(LoopEvent {
                proc: proc.name.clone(),
                var: String::new(),
                span: s.span,
                decision: LoopDecision::Scalar(
                    "`while` loop was not converted to DO form".to_string(),
                ),
            });
        }
        _ => {}
    });
    report.events.extend(events);
}

enum Outcome {
    Vectorized {
        /// Vector statements were wrapped in a strip loop.
        stripped: bool,
        /// The strip loop is a `do parallel`.
        parallel: bool,
        /// Unvectorizable statements stayed in a residual scalar loop.
        residual: bool,
        /// Ids of the compiler-generated strip loops.
        strip_ids: Vec<StmtId>,
    },
    Spread,
    /// Left scalar; `note` is the full remark, `defeat` just the reason.
    Scalar {
        note: String,
        defeat: String,
    },
}

/// Finds an unprocessed innermost `DoLoop` (bodies containing no loops).
fn find_innermost_do(proc: &Procedure, done: &std::collections::HashSet<StmtId>) -> Option<StmtId> {
    let mut found = None;
    proc.for_each_stmt(&mut |s| {
        if found.is_some() {
            return;
        }
        if let StmtKind::DoLoop { body, .. } = &s.kind {
            let has_inner_loop = body.iter().any(contains_loop);
            if !has_inner_loop && !done.contains(&s.id) {
                found = Some(s.id);
            }
        }
    });
    found
}

fn contains_loop(s: &Stmt) -> bool {
    if s.is_loop() {
        return true;
    }
    s.blocks().iter().any(|b| b.iter().any(contains_loop))
}

struct VecStmtPlan {
    /// original body index
    #[allow(dead_code)]
    index: usize,
    lhs_affine: titanc_deps::Affine,
    lhs_ty: ScalarType,
    rhs: Expr,
}

fn try_vectorize_loop(proc: &mut Procedure, id: StmtId, opts: &VectorOptions) -> Outcome {
    let (lv, lo, hi, step_e, body, safe, loop_span) = {
        let s = proc.find_stmt(id).expect("loop exists");
        match &s.kind {
            StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                safe,
            } => (
                *var,
                lo.clone(),
                hi.clone(),
                step.clone(),
                body.clone(),
                *safe,
                s.span,
            ),
            _ => unreachable!(),
        }
    };
    let lv_name = proc.var(lv).name.clone();
    let proc_name = proc.name.clone();
    let scalar = move |defeat: String| Outcome::Scalar {
        note: format!("{proc_name}: loop on `{lv_name}` left scalar: {defeat}"),
        defeat,
    };
    let step = match step_e.as_int() {
        Some(s) if s != 0 => s,
        _ => return scalar("step is not a nonzero constant".to_string()),
    };
    let trips_const = const_trip_count(&lo, &hi, &step_e);
    let aliasing = if safe {
        Aliasing::Fortran
    } else {
        opts.aliasing
    };
    let graph = DepGraph::build_for_loop(proc, &body, lv, lo.as_int(), step, trips_const, aliasing);

    // When the user asserted safety, memory dependence edges are waived.
    let blocking_cycle = |i: usize| !safe && graph.has_carried_self_cycle(i);

    // Allen–Kennedy distribution: classify each strongly connected
    // component of the dependence graph; trivial components whose
    // statement is a vectorizable assignment become vector statements, the
    // rest stay in residual scalar loops, all emitted in topological
    // order. Scalar values flowing between statements force them into one
    // component (the conservative scalar edges are cyclic), so
    // distribution never separates a scalar def from its uses.
    let sccs = graph.sccs();
    #[allow(clippy::large_enum_variant)]
    enum Group {
        Vector(Vec<VecStmtPlan>),
        Scalar(Vec<usize>),
    }
    let mut groups: Vec<Group> = Vec::new();
    for comp in &sccs {
        let plan = if comp.len() == 1 {
            let i = comp[0];
            if graph.pinned[i] || blocking_cycle(i) {
                None
            } else {
                plan_stmt(proc, &body, lv, &body[i], i)
            }
        } else {
            None
        };
        match plan {
            Some(p) => match groups.last_mut() {
                Some(Group::Vector(v)) => v.push(p),
                _ => groups.push(Group::Vector(vec![p])),
            },
            None => match groups.last_mut() {
                Some(Group::Scalar(v)) => v.extend(comp.iter().copied()),
                _ => groups.push(Group::Scalar(comp.clone())),
            },
        }
    }
    let any_vector = groups.iter().any(|g| matches!(g, Group::Vector(_)));

    if any_vector && !body.is_empty() {
        let residual = groups.iter().any(|g| matches!(g, Group::Scalar(_)));
        // single-VL case (short constant trip count, no spreading) skips
        // the strip loop; everything else is strip-mined
        let stripped = opts.parallelize || trips_const.is_none_or(|n| n > opts.max_vl);
        let mut strip_ids: Vec<StmtId> = Vec::new();
        let mut replacement: Vec<Stmt> = Vec::new();
        let mut pre: Vec<Stmt> = Vec::new();
        let trips_expr = trips_expression(proc, &lo, &hi, step, trips_const, loop_span, &mut pre);
        replacement.extend(pre);
        for group in groups {
            match group {
                Group::Vector(plans) => {
                    if let Some(sid) = emit_vector_group(
                        proc,
                        lv,
                        &body,
                        &lo,
                        step,
                        trips_const,
                        &trips_expr,
                        plans,
                        opts,
                        loop_span,
                        &mut replacement,
                    ) {
                        strip_ids.push(sid);
                    }
                }
                Group::Scalar(mut members) => {
                    members.sort_unstable();
                    let residual: Vec<Stmt> = members.iter().map(|&i| body[i].clone()).collect();
                    let st = proc.stamp_at(
                        StmtKind::DoLoop {
                            var: lv,
                            lo: lo.clone(),
                            hi: hi.clone(),
                            step: step_e.clone(),
                            body: residual,
                            safe,
                        },
                        loop_span,
                    );
                    replacement.push(st);
                }
            }
        }
        splice(proc, id, replacement);
        return Outcome::Vectorized {
            stripped,
            parallel: opts.parallelize,
            residual,
            strip_ids,
        };
    }

    // Loop spreading: independent iterations, nothing pinned.
    let spreadable = opts.parallelize
        && (safe || graph.iterations_independent())
        && !graph.pinned.iter().any(|&p| p);
    if spreadable {
        convert_to_parallel(proc, id);
        return Outcome::Spread;
    }
    scalar(describe_defeat(&graph, &sccs, safe))
}

/// Names the first construct or dependence that kept the loop scalar, in
/// the order the vectorizer gives up: pinned statements, carried
/// self-dependences, multi-statement dependence cycles, and finally
/// statements that are simply not vector assignments.
fn describe_defeat(graph: &DepGraph, sccs: &[Vec<usize>], safe: bool) -> String {
    if let Some(i) = graph.pinned.iter().position(|&p| p) {
        return format!(
            "statement {i} is pinned (call, goto, volatile access, \
             nested control flow, or non-affine subscript)"
        );
    }
    if !safe {
        if let Some(e) = graph.edges.iter().find(|e| {
            e.from == e.to && e.carried && matches!(e.kind, DepKind::True | DepKind::Output)
        }) {
            let kind = match e.kind {
                DepKind::True => "flow",
                DepKind::Anti => "anti",
                DepKind::Output => "output",
            };
            let via = if e.scalar { " through a scalar" } else { "" };
            let dist = match e.verdict {
                Verdict::Distance(d) => format!(" at distance {d}"),
                _ => String::new(),
            };
            return format!(
                "loop-carried {kind} dependence of statement {} on itself{via}{dist}",
                e.from
            );
        }
    }
    if let Some(c) = sccs.iter().find(|c| c.len() > 1) {
        if let Some(e) = graph
            .edges
            .iter()
            .find(|e| e.carried && c.contains(&e.from) && c.contains(&e.to))
        {
            let kind = match e.kind {
                DepKind::True => "flow",
                DepKind::Anti => "anti",
                DepKind::Output => "output",
            };
            return format!(
                "dependence cycle among statements {c:?} (carried {kind} dependence \
                 from statement {} to statement {})",
                e.from, e.to
            );
        }
        return format!("dependence cycle among statements {c:?}");
    }
    "no statement in the body is a vectorizable assignment".to_string()
}

/// Materializes the trip-count expression, pushing a setup statement into
/// `pre` when it is not a constant.
fn trips_expression(
    proc: &mut Procedure,
    lo: &Expr,
    hi: &Expr,
    step: i64,
    trips_const: Option<i64>,
    loop_span: SrcSpan,
    pre: &mut Vec<Stmt>,
) -> Expr {
    match trips_const {
        Some(n) => Expr::int(n),
        None => {
            let t = proc.fresh_temp(Type::Int);
            let span = Expr::ibinary(
                BinOp::Add,
                Expr::ibinary(BinOp::Sub, hi.clone(), lo.clone()),
                Expr::int(step),
            );
            let mut e = Expr::ibinary(
                BinOp::Max,
                Expr::int(0),
                Expr::ibinary(BinOp::Div, span, Expr::int(step)),
            );
            titanc_il::fold_expr(&mut e);
            let st = proc.stamp_at(
                StmtKind::Assign {
                    lhs: LValue::Var(t),
                    rhs: e,
                },
                loop_span,
            );
            pre.push(st);
            Expr::var(t)
        }
    }
}

/// Checks one statement and extracts its vector plan.
fn plan_stmt(
    proc: &Procedure,
    body: &[Stmt],
    lv: VarId,
    s: &Stmt,
    index: usize,
) -> Option<VecStmtPlan> {
    let (lhs, rhs) = match &s.kind {
        StmtKind::Assign { lhs, rhs } => (lhs, rhs),
        _ => return None,
    };
    let (addr, ty) = match lhs {
        LValue::Deref {
            addr,
            ty,
            volatile: false,
        } => (addr, *ty),
        _ => return None,
    };
    let lhs_affine = decompose(proc, body, lv, addr)?;
    if lhs_affine.coeff == 0 {
        return None; // same cell every iteration
    }
    if !rhs_vectorizable(proc, body, lv, rhs) {
        return None;
    }
    Some(VecStmtPlan {
        index,
        lhs_affine,
        lhs_ty: ty,
        rhs: rhs.clone(),
    })
}

/// The rhs is elementwise-evaluable: loads are affine or invariant,
/// scalars are invariant, and the loop variable appears only inside load
/// addresses.
fn rhs_vectorizable(proc: &Procedure, body: &[Stmt], lv: VarId, e: &Expr) -> bool {
    match e {
        Expr::Load {
            addr,
            volatile: false,
            ..
        } => decompose(proc, body, lv, addr).is_some(),
        Expr::Load { .. } | Expr::Section { .. } => false,
        Expr::Var(v) => *v != lv && !defined_in(body, *v),
        Expr::AddrOf(_) | Expr::IntConst(_) | Expr::FloatConst(..) => true,
        Expr::Unary { arg, .. } => rhs_vectorizable(proc, body, lv, arg),
        Expr::Cast { arg, .. } => rhs_vectorizable(proc, body, lv, arg),
        Expr::Binary { lhs, rhs, .. } => {
            rhs_vectorizable(proc, body, lv, lhs) && rhs_vectorizable(proc, body, lv, rhs)
        }
    }
}

/// Emits the strip-mined vector construct for one run of vectorizable
/// statements, appending to `replacement`. Returns the id of the strip
/// loop when one was created, so the caller can mark it visited.
#[allow(clippy::too_many_arguments)]
fn emit_vector_group(
    proc: &mut Procedure,
    lv: VarId,
    body: &[Stmt],
    lo: &Expr,
    step: i64,
    trips_const: Option<i64>,
    trips_expr: &Expr,
    plans: Vec<VecStmtPlan>,
    opts: &VectorOptions,
    loop_span: SrcSpan,
    replacement: &mut Vec<Stmt>,
) -> Option<StmtId> {
    let single_ok = !opts.parallelize && trips_const.is_some_and(|n| n <= opts.max_vl);
    if single_ok {
        let zero = Expr::int(0);
        for plan in &plans {
            let kind = vector_assign(proc, body, lv, lo, step, plan, &zero, trips_expr);
            let st = proc.stamp_at(kind, loop_span);
            replacement.push(st);
        }
        return None;
    }
    // strip loop: ks = 0 .. trips-1 step VL; len = min(VL, trips-ks)
    let vl = if opts.parallelize {
        opts.strip
    } else {
        opts.max_vl
    };
    let ks = proc.fresh_temp(Type::Int);
    proc.var_mut(ks).name = format!("vi_{}", ks.index());
    let t_len = proc.fresh_temp(Type::Int);
    proc.var_mut(t_len).name = format!("vl_{}", t_len.index());
    let mut inner: Vec<Stmt> = Vec::new();
    let mut len_rhs = Expr::ibinary(
        BinOp::Min,
        Expr::int(vl),
        Expr::ibinary(BinOp::Sub, trips_expr.clone(), Expr::var(ks)),
    );
    titanc_il::fold_expr(&mut len_rhs);
    let len_assign = proc.stamp_at(
        StmtKind::Assign {
            lhs: LValue::Var(t_len),
            rhs: len_rhs,
        },
        loop_span,
    );
    inner.push(len_assign);
    let origin = Expr::var(ks);
    let len = Expr::var(t_len);
    for plan in &plans {
        let kind = vector_assign(proc, body, lv, lo, step, plan, &origin, &len);
        let st = proc.stamp_at(kind, loop_span);
        inner.push(st);
    }
    let hi_expr = Expr::ibinary(BinOp::Sub, trips_expr.clone(), Expr::int(1));
    let kind = if opts.parallelize {
        StmtKind::DoParallel {
            var: ks,
            lo: Expr::int(0),
            hi: hi_expr,
            step: Expr::int(vl),
            body: inner,
        }
    } else {
        StmtKind::DoLoop {
            var: ks,
            lo: Expr::int(0),
            hi: hi_expr,
            step: Expr::int(vl),
            body: inner,
            safe: true,
        }
    };
    let st = proc.stamp_at(kind, loop_span);
    let sid = st.id;
    replacement.push(st);
    Some(sid)
}

/// The address of iteration `origin` for an affine reference:
/// `A(lo) + origin * coeff * step`.
fn addr_at(aff: &titanc_deps::Affine, lo: &Expr, step: i64, origin: &Expr) -> Expr {
    let a0 = aff.materialize(lo);
    let d = aff.coeff * step;
    let mut e = Expr::binary(
        BinOp::Add,
        ScalarType::Ptr,
        a0,
        Expr::ibinary(BinOp::Mul, origin.clone(), Expr::int(d)),
    );
    titanc_il::fold_expr(&mut e);
    e
}

/// Builds the vector assignment for one plan at a strip origin.
#[allow(clippy::too_many_arguments)]
fn vector_assign(
    proc: &Procedure,
    body: &[Stmt],
    lv: VarId,
    lo: &Expr,
    step: i64,
    plan: &VecStmtPlan,
    origin: &Expr,
    len: &Expr,
) -> StmtKind {
    let lhs = LValue::Section {
        base: addr_at(&plan.lhs_affine, lo, step, origin),
        len: len.clone(),
        stride: Expr::int(plan.lhs_affine.coeff * step),
        ty: plan.lhs_ty,
    };
    let mut rhs = plan.rhs.clone();
    rewrite_loads(proc, body, lv, lo, step, origin, len, &mut rhs);
    StmtKind::Assign { lhs, rhs }
}

/// Replaces every varying affine load in the rhs with a section; invariant
/// loads stay scalar.
#[allow(clippy::too_many_arguments)]
fn rewrite_loads(
    proc: &Procedure,
    body: &[Stmt],
    lv: VarId,
    lo: &Expr,
    step: i64,
    origin: &Expr,
    len: &Expr,
    e: &mut Expr,
) {
    if let Expr::Load {
        addr,
        ty,
        volatile: false,
    } = e
    {
        if let Some(aff) = decompose(proc, body, lv, addr) {
            if aff.coeff != 0 {
                *e = Expr::Section {
                    base: Box::new(addr_at(&aff, lo, step, origin)),
                    len: Box::new(len.clone()),
                    stride: Box::new(Expr::int(aff.coeff * step)),
                    ty: *ty,
                };
                return;
            }
            // invariant load: rebuild its address at lv = lo so the loop
            // variable does not leak into the vector statement
            **addr = aff.materialize(lo);
            return;
        }
    }
    for c in e.children_mut() {
        rewrite_loads(proc, body, lv, lo, step, origin, len, c);
    }
}

fn convert_to_parallel(proc: &mut Procedure, id: StmtId) {
    fn walk(block: &mut [Stmt], id: StmtId) -> bool {
        for s in block {
            if s.id == id {
                if let StmtKind::DoLoop {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    ..
                } = std::mem::replace(&mut s.kind, StmtKind::Nop)
                {
                    s.kind = StmtKind::DoParallel {
                        var,
                        lo,
                        hi,
                        step,
                        body,
                    };
                }
                return true;
            }
            for b in s.blocks_mut() {
                if walk(b, id) {
                    return true;
                }
            }
        }
        false
    }
    let mut body = std::mem::take(&mut proc.body);
    walk(&mut body, id);
    proc.body = body;
}

fn splice(proc: &mut Procedure, id: StmtId, replacement: Vec<Stmt>) {
    fn walk(block: &mut Vec<Stmt>, id: StmtId, replacement: &mut Option<Vec<Stmt>>) -> bool {
        for i in 0..block.len() {
            if block[i].id == id {
                let repl = replacement.take().unwrap();
                block.splice(i..=i, repl);
                return true;
            }
            for b in block[i].blocks_mut() {
                if walk(b, id, replacement) {
                    return true;
                }
            }
        }
        false
    }
    let mut body = std::mem::take(&mut proc.body);
    let mut r = Some(replacement);
    walk(&mut body, id, &mut r);
    proc.body = body;
}
