//! The vectorizer: DO loops → triplet-notation vector statements, strip
//! mined and spread across processors (§5, §9).
//!
//! For each innermost DO loop the dependence graph is condensed into
//! strongly connected components. When every component is a trivial
//! (acyclic) vectorizable assignment, the loop is replaced by vector
//! statements in topological order — the paper's
//!
//! ```text
//! do parallel vi = 0,99,32 {
//!     vr = min(99, vi+31);
//!     a[vi:vr:1] = b[vi:vr:1] + c[vi:vr:1];
//! }
//! ```
//!
//! When a loop cannot be vectorized but its iterations are proven
//! independent, it is converted to `do parallel` unchanged (loop
//! spreading, §2 item 2).

use titanc_deps::{const_trip_count, decompose, Aliasing, DepGraph, DepKind, Verdict};
use titanc_il::{
    BinOp, Block, Expr, ExprId, LValue, LoopDecision, LoopEvent, Procedure, ScalarType, SrcSpan,
    StmtId, StmtKind, StmtPool, Type, VarId,
};
use titanc_opt::util::defined_in;

/// Vectorizer configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorOptions {
    /// Aliasing regime for unprovable base pairs.
    pub aliasing: Aliasing,
    /// Emit `do parallel` strip loops (multiprocessor spreading).
    pub parallelize: bool,
    /// Strip length when parallelizing (the paper's examples use 32).
    pub strip: i64,
    /// Maximum single vector length (the Titan register file holds
    /// vectors up to 2048 elements).
    pub max_vl: i64,
}

impl Default for VectorOptions {
    fn default() -> VectorOptions {
        VectorOptions {
            aliasing: Aliasing::C,
            parallelize: false,
            strip: 32,
            max_vl: 2048,
        }
    }
}

/// What happened to each loop.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VectorReport {
    /// Loops fully vectorized.
    pub vectorized: usize,
    /// Loops converted to `do parallel` without vectorizing.
    pub spread: usize,
    /// Loops left scalar.
    pub scalar: usize,
    /// One human-readable note per scalar loop, naming the defeating
    /// dependence or construct (surfaced as compiler remarks).
    pub notes: Vec<String>,
    /// Per-loop decision events with source spans, covering every loop of
    /// the procedure: visited innermost loops (vectorized / spread /
    /// scalar-with-reason) plus the end-of-pass sweep over loops the
    /// vectorizer never considers (non-innermost DO loops, unconverted
    /// `while` loops).
    pub events: Vec<LoopEvent>,
}

impl VectorReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: VectorReport) {
        self.vectorized += other.vectorized;
        self.spread += other.spread;
        self.scalar += other.scalar;
        self.notes.extend(other.notes);
        self.events.extend(other.events);
    }
}

titanc_il::struct_json!(VectorReport, [vectorized, spread, scalar, notes, events]);

/// Vectorizes every innermost DO loop of the procedure.
pub fn vectorize(proc: &mut Procedure, opts: &VectorOptions) -> VectorReport {
    let mut report = VectorReport::default();
    let mut done: std::collections::HashSet<StmtId> = std::collections::HashSet::new();
    loop {
        let target = find_innermost_do(proc, &done);
        let id = match target {
            Some(id) => id,
            None => break,
        };
        done.insert(id);
        let (var, span) = loop_head(proc, id);
        match try_vectorize_loop(proc, id, opts) {
            Outcome::Vectorized {
                stripped,
                parallel,
                residual,
                strip_ids,
            } => {
                report.vectorized += 1;
                // strip loops are compiler-generated carriers for the
                // vector statements; never revisit (or report) them
                done.extend(strip_ids);
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var,
                    span,
                    decision: LoopDecision::Vectorized {
                        stripped,
                        parallel,
                        residual,
                    },
                });
            }
            Outcome::Spread => {
                report.spread += 1;
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var,
                    span,
                    decision: LoopDecision::Parallelized,
                });
            }
            Outcome::Scalar { note, defeat } => {
                report.scalar += 1;
                report.notes.push(note);
                report.events.push(LoopEvent {
                    proc: proc.name.clone(),
                    var,
                    span,
                    decision: LoopDecision::Scalar(defeat),
                });
            }
        }
    }
    sweep_unvisited_loops(proc, &done, &mut report);
    if report.vectorized > 0 || report.spread > 0 {
        proc.bump_generation();
    }
    report
}

/// The controlling variable's name and source span of a loop header.
fn loop_head(proc: &Procedure, id: StmtId) -> (String, SrcSpan) {
    let var = match proc.find_stmt(id) {
        Some(StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. }) => {
            proc.var(*var).name.clone()
        }
        _ => String::new(),
    };
    (var, proc.stmts.span(id))
}

/// Accounts for every loop the innermost-DO walk never visits, so the
/// driver's `--opt-report` can classify all source loops: non-innermost DO
/// loops (the vectorizer only considers innermost loops) and `while` loops
/// that survived DO conversion. Spread (`WhileSpread`) and `do parallel`
/// loops are already covered by their own events.
fn sweep_unvisited_loops(
    proc: &Procedure,
    done: &std::collections::HashSet<StmtId>,
    report: &mut VectorReport,
) {
    let mut events = Vec::new();
    proc.for_each_stmt(&mut |s, kind| match kind {
        StmtKind::DoLoop { var, .. } if !done.contains(&s) => {
            events.push(LoopEvent {
                proc: proc.name.clone(),
                var: proc.var(*var).name.clone(),
                span: proc.stmts.span(s),
                decision: LoopDecision::Scalar(
                    "contains an inner loop (only innermost loops are vectorized)".to_string(),
                ),
            });
        }
        StmtKind::While { .. } => {
            events.push(LoopEvent {
                proc: proc.name.clone(),
                var: String::new(),
                span: proc.stmts.span(s),
                decision: LoopDecision::Scalar(
                    "`while` loop was not converted to DO form".to_string(),
                ),
            });
        }
        _ => {}
    });
    report.events.extend(events);
}

enum Outcome {
    Vectorized {
        /// Vector statements were wrapped in a strip loop.
        stripped: bool,
        /// The strip loop is a `do parallel`.
        parallel: bool,
        /// Unvectorizable statements stayed in a residual scalar loop.
        residual: bool,
        /// Ids of the compiler-generated strip loops.
        strip_ids: Vec<StmtId>,
    },
    Spread,
    /// Left scalar; `note` is the full remark, `defeat` just the reason.
    Scalar {
        note: String,
        defeat: String,
    },
}

/// Finds an unprocessed innermost `DoLoop` (bodies containing no loops).
fn find_innermost_do(proc: &Procedure, done: &std::collections::HashSet<StmtId>) -> Option<StmtId> {
    let mut found = None;
    proc.for_each_stmt(&mut |s, kind| {
        if found.is_some() {
            return;
        }
        if let StmtKind::DoLoop { body, .. } = kind {
            let has_inner_loop = body.iter().any(|&c| contains_loop(&proc.stmts, c));
            if !has_inner_loop && !done.contains(&s) {
                found = Some(s);
            }
        }
    });
    found
}

fn contains_loop(pool: &StmtPool, s: StmtId) -> bool {
    if pool[s].is_loop() {
        return true;
    }
    pool[s]
        .blocks()
        .iter()
        .any(|b| b.iter().any(|&c| contains_loop(pool, c)))
}

struct VecStmtPlan {
    /// original body index
    #[allow(dead_code)]
    index: usize,
    lhs_affine: titanc_deps::Affine,
    lhs_ty: ScalarType,
    /// The original rhs expression; deep-copied per emitted statement.
    rhs: ExprId,
}

fn try_vectorize_loop(proc: &mut Procedure, id: StmtId, opts: &VectorOptions) -> Outcome {
    let (lv, lo, hi, step_e, body, safe) = match proc.find_stmt(id) {
        Some(StmtKind::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
            safe,
        }) => (*var, *lo, *hi, *step, body.clone(), *safe),
        _ => unreachable!(),
    };
    let loop_span = proc.stmts.span(id);
    let lv_name = proc.var(lv).name.clone();
    let proc_name = proc.name.clone();
    let scalar = move |defeat: String| Outcome::Scalar {
        note: format!("{proc_name}: loop on `{lv_name}` left scalar: {defeat}"),
        defeat,
    };
    let step = match proc.exprs.as_int(step_e) {
        Some(s) if s != 0 => s,
        _ => return scalar("step is not a nonzero constant".to_string()),
    };
    let trips_const = const_trip_count(&proc.exprs, lo, hi, step_e);
    let aliasing = if safe {
        Aliasing::Fortran
    } else {
        opts.aliasing
    };
    let lo_const = proc.exprs.as_int(lo);
    let graph = DepGraph::build_for_loop(proc, &body, lv, lo_const, step, trips_const, aliasing);

    // When the user asserted safety, memory dependence edges are waived.
    let blocking_cycle = |i: usize| !safe && graph.has_carried_self_cycle(i);

    // Allen–Kennedy distribution: classify each strongly connected
    // component of the dependence graph; trivial components whose
    // statement is a vectorizable assignment become vector statements, the
    // rest stay in residual scalar loops, all emitted in topological
    // order. Scalar values flowing between statements force them into one
    // component (the conservative scalar edges are cyclic), so
    // distribution never separates a scalar def from its uses.
    let sccs = graph.sccs();
    enum Group {
        Vector(Vec<VecStmtPlan>),
        Scalar(Vec<usize>),
    }
    let mut groups: Vec<Group> = Vec::new();
    for comp in &sccs {
        let plan = if comp.len() == 1 {
            let i = comp[0];
            if graph.pinned[i] || blocking_cycle(i) {
                None
            } else {
                plan_stmt(proc, &body, lv, body[i], i)
            }
        } else {
            None
        };
        match plan {
            Some(p) => match groups.last_mut() {
                Some(Group::Vector(v)) => v.push(p),
                _ => groups.push(Group::Vector(vec![p])),
            },
            None => match groups.last_mut() {
                Some(Group::Scalar(v)) => v.extend(comp.iter().copied()),
                _ => groups.push(Group::Scalar(comp.clone())),
            },
        }
    }
    let any_vector = groups.iter().any(|g| matches!(g, Group::Vector(_)));

    if any_vector && !body.is_empty() {
        let residual = groups.iter().any(|g| matches!(g, Group::Scalar(_)));
        // single-VL case (short constant trip count, no spreading) skips
        // the strip loop; everything else is strip-mined
        let stripped = opts.parallelize || trips_const.is_none_or(|n| n > opts.max_vl);
        let mut strip_ids: Vec<StmtId> = Vec::new();
        let mut replacement: Block = Vec::new();
        let mut pre: Block = Vec::new();
        let trips_expr = trips_expression(proc, lo, hi, step, trips_const, loop_span, &mut pre);
        replacement.extend(pre);
        for group in groups {
            match group {
                Group::Vector(plans) => {
                    if let Some(sid) = emit_vector_group(
                        proc,
                        lv,
                        &body,
                        lo,
                        step,
                        trips_const,
                        trips_expr,
                        plans,
                        opts,
                        loop_span,
                        &mut replacement,
                    ) {
                        strip_ids.push(sid);
                    }
                }
                Group::Scalar(mut members) => {
                    members.sort_unstable();
                    // the member statements move into the residual loop;
                    // the loop header exprs are deep-copied so no two
                    // reachable statements share expression slots
                    let residual_body: Block = members.iter().map(|&i| body[i]).collect();
                    let lo_c = proc.exprs.copy(lo);
                    let hi_c = proc.exprs.copy(hi);
                    let step_c = proc.exprs.copy(step_e);
                    let st = proc.stamp_at(
                        StmtKind::DoLoop {
                            var: lv,
                            lo: lo_c,
                            hi: hi_c,
                            step: step_c,
                            body: residual_body,
                            safe,
                        },
                        loop_span,
                    );
                    replacement.push(st);
                }
            }
        }
        splice(proc, id, replacement);
        return Outcome::Vectorized {
            stripped,
            parallel: opts.parallelize,
            residual,
            strip_ids,
        };
    }

    // Loop spreading: independent iterations, nothing pinned.
    let spreadable = opts.parallelize
        && (safe || graph.iterations_independent())
        && !graph.pinned.iter().any(|&p| p);
    if spreadable {
        convert_to_parallel(proc, id);
        return Outcome::Spread;
    }
    scalar(describe_defeat(&graph, &sccs, safe))
}

/// Names the first construct or dependence that kept the loop scalar, in
/// the order the vectorizer gives up: pinned statements, carried
/// self-dependences, multi-statement dependence cycles, and finally
/// statements that are simply not vector assignments.
fn describe_defeat(graph: &DepGraph, sccs: &[Vec<usize>], safe: bool) -> String {
    if let Some(i) = graph.pinned.iter().position(|&p| p) {
        return format!(
            "statement {i} is pinned (call, goto, volatile access, \
             nested control flow, or non-affine subscript)"
        );
    }
    if !safe {
        if let Some(e) = graph.edges.iter().find(|e| {
            e.from == e.to && e.carried && matches!(e.kind, DepKind::True | DepKind::Output)
        }) {
            let kind = match e.kind {
                DepKind::True => "flow",
                DepKind::Anti => "anti",
                DepKind::Output => "output",
            };
            let via = if e.scalar { " through a scalar" } else { "" };
            let dist = match e.verdict {
                Verdict::Distance(d) => format!(" at distance {d}"),
                _ => String::new(),
            };
            return format!(
                "loop-carried {kind} dependence of statement {} on itself{via}{dist}",
                e.from
            );
        }
    }
    if let Some(c) = sccs.iter().find(|c| c.len() > 1) {
        if let Some(e) = graph
            .edges
            .iter()
            .find(|e| e.carried && c.contains(&e.from) && c.contains(&e.to))
        {
            let kind = match e.kind {
                DepKind::True => "flow",
                DepKind::Anti => "anti",
                DepKind::Output => "output",
            };
            return format!(
                "dependence cycle among statements {c:?} (carried {kind} dependence \
                 from statement {} to statement {})",
                e.from, e.to
            );
        }
        return format!("dependence cycle among statements {c:?}");
    }
    "no statement in the body is a vectorizable assignment".to_string()
}

/// Materializes the trip-count expression, pushing a setup statement into
/// `pre` when it is not a constant. The returned id is a *template*:
/// callers deep-copy it per use and never embed it directly.
fn trips_expression(
    proc: &mut Procedure,
    lo: ExprId,
    hi: ExprId,
    step: i64,
    trips_const: Option<i64>,
    loop_span: SrcSpan,
    pre: &mut Block,
) -> ExprId {
    match trips_const {
        Some(n) => proc.exprs.int(n),
        None => {
            let t = proc.fresh_temp(Type::Int);
            let hi_c = proc.exprs.copy(hi);
            let lo_c = proc.exprs.copy(lo);
            let diff = proc.exprs.ibinary(BinOp::Sub, hi_c, lo_c);
            let step_c = proc.exprs.int(step);
            let span_e = proc.exprs.ibinary(BinOp::Add, diff, step_c);
            let zero = proc.exprs.int(0);
            let step_c2 = proc.exprs.int(step);
            let div = proc.exprs.ibinary(BinOp::Div, span_e, step_c2);
            let e = proc.exprs.ibinary(BinOp::Max, zero, div);
            titanc_il::fold_expr(&mut proc.exprs, e);
            let st = proc.stamp_at(
                StmtKind::Assign {
                    lhs: LValue::Var(t),
                    rhs: e,
                },
                loop_span,
            );
            pre.push(st);
            proc.exprs.var(t)
        }
    }
}

/// Checks one statement and extracts its vector plan.
fn plan_stmt(
    proc: &Procedure,
    body: &[StmtId],
    lv: VarId,
    s: StmtId,
    index: usize,
) -> Option<VecStmtPlan> {
    let (lhs, rhs) = match &proc.stmts[s] {
        StmtKind::Assign { lhs, rhs } => (lhs, *rhs),
        _ => return None,
    };
    let (addr, ty) = match lhs {
        LValue::Deref {
            addr,
            ty,
            volatile: false,
        } => (*addr, *ty),
        _ => return None,
    };
    let lhs_affine = decompose(proc, body, lv, addr)?;
    if lhs_affine.coeff == 0 {
        return None; // same cell every iteration
    }
    if !rhs_vectorizable(proc, body, lv, rhs) {
        return None;
    }
    Some(VecStmtPlan {
        index,
        lhs_affine,
        lhs_ty: ty,
        rhs,
    })
}

/// The rhs is elementwise-evaluable: loads are affine or invariant,
/// scalars are invariant, and the loop variable appears only inside load
/// addresses.
fn rhs_vectorizable(proc: &Procedure, body: &[StmtId], lv: VarId, e: ExprId) -> bool {
    match proc.exprs[e] {
        Expr::Load {
            addr,
            volatile: false,
            ..
        } => decompose(proc, body, lv, addr).is_some(),
        Expr::Load { .. } | Expr::Section { .. } => false,
        Expr::Var(v) => v != lv && !defined_in(&proc.stmts, body, v),
        Expr::AddrOf(_) | Expr::IntConst(_) | Expr::FloatConst(..) => true,
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => rhs_vectorizable(proc, body, lv, arg),
        Expr::Binary { lhs, rhs, .. } => {
            rhs_vectorizable(proc, body, lv, lhs) && rhs_vectorizable(proc, body, lv, rhs)
        }
    }
}

/// Emits the strip-mined vector construct for one run of vectorizable
/// statements, appending to `replacement`. Returns the id of the strip
/// loop when one was created, so the caller can mark it visited.
#[allow(clippy::too_many_arguments)]
fn emit_vector_group(
    proc: &mut Procedure,
    lv: VarId,
    body: &[StmtId],
    lo: ExprId,
    step: i64,
    trips_const: Option<i64>,
    trips_expr: ExprId,
    plans: Vec<VecStmtPlan>,
    opts: &VectorOptions,
    loop_span: SrcSpan,
    replacement: &mut Block,
) -> Option<StmtId> {
    let single_ok = !opts.parallelize && trips_const.is_some_and(|n| n <= opts.max_vl);
    if single_ok {
        let zero = proc.exprs.int(0);
        for plan in &plans {
            let kind = vector_assign(proc, body, lv, lo, step, plan, zero, trips_expr);
            let st = proc.stamp_at(kind, loop_span);
            replacement.push(st);
        }
        return None;
    }
    // strip loop: ks = 0 .. trips-1 step VL; len = min(VL, trips-ks)
    let vl = if opts.parallelize {
        opts.strip
    } else {
        opts.max_vl
    };
    let ks = proc.fresh_temp(Type::Int);
    proc.var_mut(ks).name = format!("vi_{}", ks.index());
    let t_len = proc.fresh_temp(Type::Int);
    proc.var_mut(t_len).name = format!("vl_{}", t_len.index());
    let mut inner: Block = Vec::new();
    let vl_c = proc.exprs.int(vl);
    let trips_c = proc.exprs.copy(trips_expr);
    let ks_read = proc.exprs.var(ks);
    let rem = proc.exprs.ibinary(BinOp::Sub, trips_c, ks_read);
    let len_rhs = proc.exprs.ibinary(BinOp::Min, vl_c, rem);
    titanc_il::fold_expr(&mut proc.exprs, len_rhs);
    let len_assign = proc.stamp_at(
        StmtKind::Assign {
            lhs: LValue::Var(t_len),
            rhs: len_rhs,
        },
        loop_span,
    );
    inner.push(len_assign);
    let origin = proc.exprs.var(ks);
    let len = proc.exprs.var(t_len);
    for plan in &plans {
        let kind = vector_assign(proc, body, lv, lo, step, plan, origin, len);
        let st = proc.stamp_at(kind, loop_span);
        inner.push(st);
    }
    let trips_c2 = proc.exprs.copy(trips_expr);
    let one = proc.exprs.int(1);
    let hi_expr = proc.exprs.ibinary(BinOp::Sub, trips_c2, one);
    let lo_expr = proc.exprs.int(0);
    let step_expr = proc.exprs.int(vl);
    let kind = if opts.parallelize {
        StmtKind::DoParallel {
            var: ks,
            lo: lo_expr,
            hi: hi_expr,
            step: step_expr,
            body: inner,
        }
    } else {
        StmtKind::DoLoop {
            var: ks,
            lo: lo_expr,
            hi: hi_expr,
            step: step_expr,
            body: inner,
            safe: true,
        }
    };
    let sid = proc.stamp_at(kind, loop_span);
    replacement.push(sid);
    Some(sid)
}

/// The address of iteration `origin` for an affine reference:
/// `A(lo) + origin * coeff * step`. Allocates a fresh tree (the `lo` and
/// `origin` templates are deep-copied, never embedded).
fn addr_at(
    proc: &mut Procedure,
    aff: &titanc_deps::Affine,
    lo: ExprId,
    step: i64,
    origin: ExprId,
) -> ExprId {
    let lo_c = proc.exprs.copy(lo);
    let a0 = aff.materialize(&mut proc.exprs, lo_c);
    let d = aff.coeff * step;
    let origin_c = proc.exprs.copy(origin);
    let d_c = proc.exprs.int(d);
    let mul = proc.exprs.ibinary(BinOp::Mul, origin_c, d_c);
    let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, a0, mul);
    titanc_il::fold_expr(&mut proc.exprs, e);
    e
}

/// Builds the vector assignment for one plan at a strip origin.
#[allow(clippy::too_many_arguments)]
fn vector_assign(
    proc: &mut Procedure,
    body: &[StmtId],
    lv: VarId,
    lo: ExprId,
    step: i64,
    plan: &VecStmtPlan,
    origin: ExprId,
    len: ExprId,
) -> StmtKind {
    let base = addr_at(proc, &plan.lhs_affine, lo, step, origin);
    let len_c = proc.exprs.copy(len);
    let stride = proc.exprs.int(plan.lhs_affine.coeff * step);
    let lhs = LValue::Section {
        base,
        len: len_c,
        stride,
        ty: plan.lhs_ty,
    };
    let rhs = proc.exprs.copy(plan.rhs);
    rewrite_loads(proc, body, lv, lo, step, origin, len, rhs);
    StmtKind::Assign { lhs, rhs }
}

/// Replaces every varying affine load in the (freshly copied) rhs tree
/// with a section, rewriting slots in place; invariant loads stay scalar
/// with their address rebuilt at `lv = lo`.
#[allow(clippy::too_many_arguments)]
fn rewrite_loads(
    proc: &mut Procedure,
    body: &[StmtId],
    lv: VarId,
    lo: ExprId,
    step: i64,
    origin: ExprId,
    len: ExprId,
    e: ExprId,
) {
    if let Expr::Load {
        addr,
        ty,
        volatile: false,
    } = proc.exprs[e]
    {
        if let Some(aff) = decompose(proc, body, lv, addr) {
            if aff.coeff != 0 {
                let base = addr_at(proc, &aff, lo, step, origin);
                let len_c = proc.exprs.copy(len);
                let stride = proc.exprs.int(aff.coeff * step);
                proc.exprs[e] = Expr::Section {
                    base,
                    len: len_c,
                    stride,
                    ty,
                };
                return;
            }
            // invariant load: rebuild its address at lv = lo so the loop
            // variable does not leak into the vector statement
            let lo_c = proc.exprs.copy(lo);
            let new_addr = aff.materialize(&mut proc.exprs, lo_c);
            proc.exprs[addr] = proc.exprs[new_addr];
            return;
        }
    }
    for c in proc.exprs[e].child_ids() {
        rewrite_loads(proc, body, lv, lo, step, origin, len, c);
    }
}

fn convert_to_parallel(proc: &mut Procedure, id: StmtId) {
    if let StmtKind::DoLoop {
        var,
        lo,
        hi,
        step,
        body,
        ..
    } = std::mem::replace(&mut proc.stmts[id], StmtKind::Nop)
    {
        proc.stmts[id] = StmtKind::DoParallel {
            var,
            lo,
            hi,
            step,
            body,
        };
    }
}

/// Replaces statement `id` with `replacement` in whatever block contains
/// it, recursing through nested blocks with the take/put-back idiom.
fn splice(proc: &mut Procedure, id: StmtId, replacement: Block) {
    fn walk(
        stmts: &mut StmtPool,
        block: &mut Block,
        id: StmtId,
        replacement: &mut Option<Block>,
    ) -> bool {
        for i in 0..block.len() {
            if block[i] == id {
                let repl = replacement.take().unwrap();
                block.splice(i..=i, repl);
                return true;
            }
            let s = block[i];
            let mut kind = std::mem::replace(&mut stmts[s], StmtKind::Nop);
            let mut hit = false;
            for b in kind.blocks_mut() {
                if walk(stmts, b, id, replacement) {
                    hit = true;
                    break;
                }
            }
            stmts[s] = kind;
            if hit {
                return true;
            }
        }
        false
    }
    let mut body = std::mem::take(&mut proc.body);
    let mut r = Some(replacement);
    walk(&mut proc.stmts, &mut body, id, &mut r);
    proc.body = body;
}
