//! Linked-list loop spreading — the §10 future-work extension.
//!
//! "A prime example of such a loop is code that operates on a linked list.
//! Such a loop cannot be vectorized with any benefit, but it can be spread
//! across multiple processors by pulling the code for moving to the next
//! element into the serialized portion of the parallel loop. … This
//! enhancement … does require an assumption that each motion down a
//! pointer goes to independent storage."
//!
//! The transformation recognizes `while (p) { work…; p = p->next; }` —
//! after lowering, a single pointer-typed definition `p = *(p + c)`
//! (possibly through a front-end copy temporary) — and rewrites the loop
//! into [`titanc_il::StmtKind::WhileSpread`]: the chase serializes, the
//! work distributes. The independent-storage assumption is the user's to
//! make, so the pass only runs when explicitly enabled.

use titanc_il::{
    Expr, ExprId, LoopDecision, LoopEvent, Procedure, ScalarType, StmtId, StmtKind, VarId,
};
use titanc_opt::util::{count_reads_block, register_candidate, resolve_copy};

/// How many loops were spread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpreadReport {
    /// `while` loops converted to `WhileSpread`.
    pub spread: usize,
    /// Per-loop spreading events with source spans.
    pub events: Vec<LoopEvent>,
}

impl SpreadReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: SpreadReport) {
        self.spread += other.spread;
        self.events.extend(other.events);
    }
}

titanc_il::struct_json!(SpreadReport, [spread, events]);

/// Converts eligible pointer-chasing `while` loops into spread form.
pub fn spread_list_loops(proc: &mut Procedure) -> SpreadReport {
    let mut report = SpreadReport::default();
    let mut done: Vec<StmtId> = Vec::new();
    loop {
        let mut target: Option<(StmtId, Plan)> = None;
        proc.for_each_stmt(&mut |s, kind| {
            if target.is_none() && !done.contains(&s) {
                if let StmtKind::While { cond, body, .. } = kind {
                    if let Some(plan) = analyze(proc, *cond, body) {
                        target = Some((s, plan));
                    }
                }
            }
        });
        let (id, plan) = match target {
            Some(t) => t,
            None => break,
        };
        done.push(id);
        report.events.push(LoopEvent {
            proc: proc.name.clone(),
            var: proc.var(plan.p).name.clone(),
            span: proc.stmts.span(id),
            decision: LoopDecision::ListSpread,
        });
        apply(proc, id, plan);
        report.spread += 1;
    }
    if report.spread > 0 {
        proc.bump_generation();
    }
    report
}

struct Plan {
    /// the chased pointer (the loop's controlling variable)
    p: VarId,
    /// indices of body statements forming the serialized chase
    serial: Vec<usize>,
}

fn analyze(proc: &Procedure, cond: ExprId, body: &[StmtId]) -> Option<Plan> {
    // condition: p (pointer) or p != 0
    let p = match proc.exprs[cond] {
        Expr::Var(v) => v,
        Expr::Binary {
            op: titanc_il::BinOp::Ne,
            lhs,
            rhs,
            ..
        } => match (proc.exprs[lhs], proc.exprs.as_int(rhs)) {
            (Expr::Var(v), Some(0)) => v,
            _ => return None,
        },
        _ => return None,
    };
    if !register_candidate(proc, p) || proc.var_scalar(p) != ScalarType::Ptr {
        return None;
    }
    // the body must be straight-line assignments/ifs (no calls, gotos,
    // labels, returns, volatile, nested loops)
    if !body.iter().all(|&s| structured_enough(proc, s)) {
        return None;
    }
    // exactly one definition of p, at top level: p = Load(addr) where the
    // address reads (a copy of) p — the pointer chase
    let defs: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, &s)| proc.stmts[s].defined_var() == Some(p))
        .map(|(i, _)| i)
        .collect();
    let [def_pos] = defs.as_slice() else {
        return None;
    };
    let def_pos = *def_pos;
    if body.iter().any(|&s| {
        proc.stmts[s]
            .blocks()
            .iter()
            .any(|b| titanc_opt::util::defined_in(&proc.stmts, b, p))
    }) {
        return None;
    }
    let chase_ok = match &proc.stmts[body[def_pos]] {
        StmtKind::Assign { rhs, .. } => match proc.exprs[*rhs] {
            Expr::Load {
                addr,
                volatile: false,
                ..
            } => proc
                .exprs
                .vars_read(addr)
                .iter()
                .any(|&w| resolve_copy(proc, body, def_pos, w) == p),
            _ => false,
        },
        _ => false,
    };
    if !chase_ok {
        return None;
    }

    // the serial part: the chase plus the copy chains feeding it
    let mut serial = vec![def_pos];
    let mut needed: Vec<VarId> = proc.stmts[body[def_pos]]
        .exprs()
        .iter()
        .flat_map(|&e| proc.exprs.vars_read(e))
        .collect();
    for i in (0..def_pos).rev() {
        if let Some(v) = proc.stmts[body[i]].defined_var() {
            if needed.contains(&v) && register_candidate(proc, v) {
                serial.push(i);
                needed.extend(
                    proc.stmts[body[i]]
                        .exprs()
                        .iter()
                        .flat_map(|&e| proc.exprs.vars_read(e)),
                );
            }
        }
    }
    serial.sort_unstable();

    // parallel-part safety: each scalar defined by the work must be
    // iteration-private — never read before its own definition and never
    // read by the chase or the condition (accumulations disqualify)
    for (i, &s) in body.iter().enumerate() {
        if serial.contains(&i) {
            continue;
        }
        if let Some(v) = proc.stmts[s].defined_var() {
            if v == p || !register_candidate(proc, v) {
                continue;
            }
            if proc.exprs.reads_var(cond, v) {
                return None;
            }
            if serial.iter().any(|&j| {
                proc.stmts[body[j]]
                    .exprs()
                    .iter()
                    .any(|&e| proc.exprs.reads_var(e, v))
            }) {
                return None;
            }
            // read before def inside the work?
            let read_before: usize = body[..=i]
                .iter()
                .enumerate()
                .filter(|(j, _)| !serial.contains(j))
                .map(|(j, &t)| {
                    if j == i {
                        // reads in the defining statement's own rhs are a
                        // carried use unless it is a plain overwrite
                        proc.stmts[t]
                            .exprs()
                            .iter()
                            .map(|&e| proc.exprs.vars_read(e).iter().filter(|&&w| w == v).count())
                            .sum()
                    } else {
                        count_reads_block(&proc.stmts, &proc.exprs, std::slice::from_ref(&t), v)
                    }
                })
                .sum();
            if read_before > 0 {
                return None;
            }
        }
    }
    Some(Plan { p, serial })
}

fn structured_enough(proc: &Procedure, s: StmtId) -> bool {
    match &proc.stmts[s] {
        StmtKind::Assign { .. } => !proc.stmts[s].has_volatile_access(&proc.exprs),
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            !proc.stmts[s].has_volatile_access(&proc.exprs)
                && then_blk.iter().all(|&c| structured_enough(proc, c))
                && else_blk.iter().all(|&c| structured_enough(proc, c))
        }
        _ => false,
    }
}

fn apply(proc: &mut Procedure, id: StmtId, plan: Plan) {
    if let StmtKind::While { cond, body, .. } =
        std::mem::replace(&mut proc.stmts[id], StmtKind::Nop)
    {
        let mut parallel = Vec::new();
        let mut serial = Vec::new();
        for (i, inner) in body.into_iter().enumerate() {
            if plan.serial.contains(&i) {
                serial.push(inner);
            } else {
                parallel.push(inner);
            }
        }
        proc.stmts[id] = StmtKind::WhileSpread {
            cond,
            parallel,
            serial,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::pretty_proc;
    use titanc_lower::compile_to_il;

    const LIST_SRC: &str = r#"
struct node { float v; float out; struct node *next; };
struct node pool[64];
void build(void)
{
    int i;
    for (i = 0; i < 63; i++) {
        pool[i].v = i;
        pool[i].next = &pool[i + 1];
    }
    pool[63].v = 63;
    pool[63].next = (struct node *)0;
}
void work(struct node *p)
{
    while (p) {
        p->out = p->v * 2.0f + 1.0f;
        p = p->next;
    }
}
int main(void)
{
    build();
    work(&pool[0]);
    return (int)pool[63].out;
}
"#;

    #[test]
    fn spreads_list_walk() {
        let prog = compile_to_il(LIST_SRC).unwrap();
        let mut proc = prog.proc_by_name("work").unwrap().clone();
        let rep = spread_list_loops(&mut proc);
        assert_eq!(rep.spread, 1, "{}", pretty_proc(&proc));
        let text = pretty_proc(&proc);
        assert!(text.contains("while spread"), "{text}");
        assert!(text.contains("next:"), "{text}");
    }

    #[test]
    fn spread_preserves_semantics_and_divides_work() {
        let prog = compile_to_il(LIST_SRC).unwrap();
        let mut opt = prog.clone();
        {
            let w = opt.proc_by_name_mut("work").unwrap();
            let rep = spread_list_loops(w);
            assert_eq!(rep.spread, 1);
        }
        let g = [("pool", titanc_il::ScalarType::Float, 8)];
        let base =
            titanc_titan::observe(&prog, titanc_titan::MachineConfig::optimized(1), "main", &g)
                .unwrap();
        let one =
            titanc_titan::observe(&opt, titanc_titan::MachineConfig::optimized(1), "main", &g)
                .unwrap();
        let four =
            titanc_titan::observe(&opt, titanc_titan::MachineConfig::optimized(4), "main", &g)
                .unwrap();
        assert_eq!(base.0, one.0, "semantics preserved");
        assert_eq!(base.0, four.0);
        assert!(
            four.1.cycles < one.1.cycles,
            "four processors beat one: {} !< {}",
            four.1.cycles,
            one.1.cycles
        );
    }

    #[test]
    fn accumulation_is_not_spread() {
        let src = r#"
struct node { float v; struct node *next; };
float total;
void sum(struct node *p)
{
    float s;
    s = 0.0f;
    while (p) {
        s = s + p->v;
        p = p->next;
    }
    total = s;
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.proc_by_name("sum").unwrap().clone();
        let rep = spread_list_loops(&mut proc);
        assert_eq!(rep.spread, 0, "accumulator is loop-carried");
    }

    #[test]
    fn counted_loops_are_left_for_the_vectorizer() {
        let src = "void f(float *a, int n) { while (n) { *a++ = 0; n--; } }";
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        let rep = spread_list_loops(&mut proc);
        assert_eq!(rep.spread, 0, "int countdown is not a pointer chase");
    }

    #[test]
    fn loops_with_calls_are_not_spread() {
        let src = r#"
struct node { float v; struct node *next; };
void visit(float v);
void f(struct node *p)
{
    while (p) {
        visit(p->v);
        p = p->next;
    }
}
"#;
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        let rep = spread_list_loops(&mut proc);
        assert_eq!(rep.spread, 0);
    }
}
