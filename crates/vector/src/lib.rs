//! # titanc-vector — vectorization, parallelization, and dependence-driven
//! scalar optimization
//!
//! The back half of the paper's pipeline: Allen–Kennedy-style vector code
//! generation over the dependence graph (§5), `do parallel` loop spreading
//! with strip mining (§9), and the §6 optimizations that reuse the same
//! dependence graph when a loop stays scalar — register promotion of
//! loop-carried values, strength reduction of affine addresses, and
//! loop-invariant hoisting.
//!
//! ## Example
//!
//! ```
//! use titanc_vector::{vectorize, VectorOptions};
//!
//! let prog = titanc_lower::compile_to_il(
//!     "float a[100], b[100], c[100];\n\
//!      void add(void) { int i; for (i = 0; i < 100; i++) a[i] = b[i] + c[i]; }",
//! ).unwrap();
//! let mut proc = prog.procs[0].clone();
//! titanc_opt::convert_while_loops(&mut proc);
//! titanc_opt::induction_substitution(&mut proc);
//! titanc_opt::forward_substitute(&mut proc);
//! titanc_opt::eliminate_dead_code(&mut proc);
//! let report = vectorize(&mut proc, &VectorOptions::default());
//! assert_eq!(report.vectorized, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod spread;
pub mod strength;

pub use codegen::{vectorize, VectorOptions, VectorReport};
pub use spread::{spread_list_loops, SpreadReport};
pub use strength::{strength_reduce, StrengthReport};

#[cfg(test)]
mod tests;
