//! Vectorizer and §6 optimization tests: IL shapes plus observational
//! equivalence on the Titan simulator.

use crate::{strength_reduce, vectorize, VectorOptions};
use titanc_deps::Aliasing;
use titanc_il::{pretty_proc, Procedure, Program, ScalarType};
use titanc_lower::compile_to_il;
use titanc_titan::MachineConfig;

/// The standard scalar pipeline in front of the vectorizer.
fn scalar_pipeline(proc: &mut Procedure) {
    titanc_opt::convert_while_loops(proc);
    titanc_opt::induction_substitution(proc);
    titanc_opt::forward_substitute(proc);
    titanc_opt::constant_propagation(proc);
    titanc_opt::eliminate_dead_code(proc);
}

fn prep(src: &str) -> Program {
    let prog = compile_to_il(src).unwrap();
    let mut out = prog.clone();
    for p in &mut out.procs {
        scalar_pipeline(p);
    }
    out
}

fn observe(prog: &Program, globals: &[(&str, ScalarType, u32)]) -> titanc_titan::Observation {
    titanc_titan::observe(prog, MachineConfig::optimized(2), "main", globals)
        .unwrap_or_else(|e| {
            panic!(
                "run failed: {e}\n{}",
                pretty_proc(&prog.procs[prog.procs.len() - 1])
            )
        })
        .0
}

#[test]
fn vectorizes_array_add() {
    let src = r#"
float a[100], b[100], c[100];
void add(void) { int i; for (i = 0; i < 100; i++) a[i] = b[i] + c[i]; }
"#;
    let mut prog = prep(src);
    let rep = vectorize(&mut prog.procs[0], &VectorOptions::default());
    assert_eq!(rep.vectorized, 1, "{}", pretty_proc(&prog.procs[0]));
    let text = pretty_proc(&prog.procs[0]);
    assert!(text.contains("(float)["), "triplet notation: {text}");
}

#[test]
fn vector_add_equivalent_and_faster() {
    let src = r#"
float a[512], b[512], c[512];
void init(void)
{
    int i;
    for (i = 0; i < 512; i++) { b[i] = i * 0.5f; c[i] = i * 0.25f; }
}
int main(void)
{
    int i;
    init();
    for (i = 0; i < 512; i++) a[i] = b[i] + c[i];
    return 0;
}
"#;
    let base = prep(src);
    let mut vec_prog = base.clone();
    let main_idx = vec_prog
        .procs
        .iter()
        .position(|p| p.name == "main")
        .unwrap();
    let rep = vectorize(&mut vec_prog.procs[main_idx], &VectorOptions::default());
    assert!(
        rep.vectorized >= 1,
        "{}",
        pretty_proc(&vec_prog.procs[main_idx])
    );
    let g = [("a", ScalarType::Float, 512)];
    let before = observe(&base, &g);
    let after = observe(&vec_prog, &g);
    assert_eq!(before, after);
    // cycle comparison of the add kernel alone (init runs scalar in both;
    // subtract its cost by timing an init-only run)
    let cycles = |prog: &Program| {
        let whole = titanc_titan::observe(prog, MachineConfig::scalar(), "main", &[])
            .unwrap()
            .1
            .cycles;
        let init_only = titanc_titan::observe(prog, MachineConfig::scalar(), "init", &[])
            .unwrap()
            .1
            .cycles;
        whole - init_only
    };
    let s_base = cycles(&base);
    let s_vec = cycles(&vec_prog);
    assert!(s_vec < s_base / 2.0, "vector {s_vec} vs scalar {s_base}");
}

#[test]
fn pointer_copy_loop_vectorizes_with_pragma() {
    // EXP1 shape: the §5.3 pointer walk, vectorizable once asserted safe
    let src =
        "void copy(float *a, float *b, int n) {\n#pragma safe\nwhile (n) { *a++ = *b++; n--; } }";
    let mut prog = prep(src);
    let rep = vectorize(&mut prog.procs[0], &VectorOptions::default());
    assert_eq!(rep.vectorized, 1, "{}", pretty_proc(&prog.procs[0]));
}

#[test]
fn pointer_copy_loop_does_not_vectorize_under_c_aliasing() {
    let src = "void copy(float *a, float *b, int n) { while (n) { *a++ = *b++; n--; } }";
    let mut prog = prep(src);
    let rep = vectorize(&mut prog.procs[0], &VectorOptions::default());
    assert_eq!(rep.vectorized, 0, "pointer params may alias");
    assert_eq!(rep.scalar, 1);
}

#[test]
fn fortran_aliasing_option_vectorizes_pointer_params() {
    let src = "void copy(float *a, float *b, int n) { while (n) { *a++ = *b++; n--; } }";
    let mut prog = prep(src);
    let opts = VectorOptions {
        aliasing: Aliasing::Fortran,
        ..VectorOptions::default()
    };
    let rep = vectorize(&mut prog.procs[0], &opts);
    assert_eq!(rep.vectorized, 1, "{}", pretty_proc(&prog.procs[0]));
}

#[test]
fn recurrence_stays_scalar() {
    let src = r#"
float x[100];
void f(void) { int i; for (i = 0; i < 99; i++) x[i + 1] = x[i] * 2.0f; }
"#;
    let mut prog = prep(src);
    let rep = vectorize(&mut prog.procs[0], &VectorOptions::default());
    assert_eq!(rep.vectorized, 0);
}

#[test]
fn countdown_loop_vectorizes_with_negative_stride() {
    let src = r#"
float a[64], b[64];
int main(void)
{
    int i, n;
    float *p, *q;
    for (i = 0; i < 64; i++) b[i] = i;
    p = &a[63];
    q = &b[63];
    n = 64;
    while (n) { *p-- = *q--; n--; }
    return 0;
}
"#;
    let base = prep(src);
    let mut vec_prog = base.clone();
    let rep = vectorize(&mut vec_prog.procs[0], &VectorOptions::default());
    assert!(rep.vectorized >= 1, "{}", pretty_proc(&vec_prog.procs[0]));
    let g = [("a", ScalarType::Float, 64)];
    assert_eq!(observe(&base, &g), observe(&vec_prog, &g));
}

#[test]
fn parallel_emission_produces_do_parallel_strips() {
    let src = r#"
float a[100], b[100], c[100];
void add(void) { int i; for (i = 0; i < 100; i++) a[i] = b[i] + c[i]; }
"#;
    let mut prog = prep(src);
    let opts = VectorOptions {
        parallelize: true,
        ..VectorOptions::default()
    };
    let rep = vectorize(&mut prog.procs[0], &opts);
    assert_eq!(rep.vectorized, 1);
    let text = pretty_proc(&prog.procs[0]);
    assert!(text.contains("do parallel"), "{text}");
    assert!(text.contains("min(32,"), "strip length 32: {text}");
}

#[test]
fn parallel_strips_preserve_semantics() {
    let src = r#"
float a[100], b[100], c[100];
int main(void)
{
    int i;
    for (i = 0; i < 100; i++) { b[i] = i; c[i] = 2 * i; }
    for (i = 0; i < 100; i++) a[i] = b[i] + c[i];
    return 0;
}
"#;
    let base = prep(src);
    let mut par = base.clone();
    let opts = VectorOptions {
        parallelize: true,
        ..VectorOptions::default()
    };
    vectorize(&mut par.procs[0], &opts);
    let g = [("a", ScalarType::Float, 100)];
    assert_eq!(observe(&base, &g), observe(&par, &g));
    // two processors beat one
    let (_, c1) = titanc_titan::observe(&par, MachineConfig::optimized(1), "main", &[]).unwrap();
    let (_, c2) = titanc_titan::observe(&par, MachineConfig::optimized(2), "main", &[]).unwrap();
    assert!(c2.cycles < c1.cycles, "{} !< {}", c2.cycles, c1.cycles);
}

#[test]
fn volatile_loop_never_vectorizes() {
    let src = r#"
volatile int port;
int sink[64];
void f(void) { int i; for (i = 0; i < 64; i++) sink[i] = port; }
"#;
    let mut prog = prep(src);
    let rep = vectorize(&mut prog.procs[0], &VectorOptions::default());
    assert_eq!(rep.vectorized, 0);
}

#[test]
fn loop_with_call_never_vectorizes() {
    let src = r#"
float g(float x);
float a[64];
void f(void) { int i; for (i = 0; i < 64; i++) a[i] = g(1.0f); }
"#;
    let mut prog = prep(src);
    let rep = vectorize(&mut prog.procs[0], &VectorOptions::default());
    assert_eq!(rep.vectorized, 0);
}

#[test]
fn spreads_scalar_loop_with_independent_iterations() {
    // a[i] = a[i]*a[i] + 3: self dependence distance 0 only — not
    // vectorizable as written? it is — but make it non-vectorizable by
    // reading the loop variable's value directly
    let src = r#"
int a[100];
void f(void) { int i; for (i = 0; i < 100; i++) a[i] = i; }
"#;
    let mut prog = prep(src);
    let opts = VectorOptions {
        parallelize: true,
        ..VectorOptions::default()
    };
    let rep = vectorize(&mut prog.procs[0], &opts);
    // a[i] = i reads lv as a value: not vectorizable, but iterations are
    // independent — spread across processors
    assert_eq!(rep.vectorized, 0);
    assert_eq!(rep.spread, 1, "{}", pretty_proc(&prog.procs[0]));
    assert!(pretty_proc(&prog.procs[0]).contains("do parallel"));
}

#[test]
fn multi_statement_loop_vectorizes_in_dependence_order() {
    let src = r#"
float a[64], b[64], t[64];
int main(void)
{
    int i;
    for (i = 0; i < 64; i++) b[i] = i;
    for (i = 0; i < 64; i++) {
        t[i] = b[i] * 2.0f;
        a[i] = t[i] + 1.0f;
    }
    return 0;
}
"#;
    let base = prep(src);
    let mut vec_prog = base.clone();
    let rep = vectorize(&mut vec_prog.procs[0], &VectorOptions::default());
    assert!(rep.vectorized >= 1, "{}", pretty_proc(&vec_prog.procs[0]));
    let g = [("a", ScalarType::Float, 64), ("t", ScalarType::Float, 64)];
    assert_eq!(observe(&base, &g), observe(&vec_prog, &g));
}

// ------------------------------------------------------------------
// §6: strength reduction / register promotion
// ------------------------------------------------------------------

#[test]
fn backsolve_register_promotion() {
    // §6's loop: p[i] = z[i] * (y[i] - q[i]) with q one behind p
    let src = r#"
float x[100], y[100], z[100];
int main(void)
{
    float *p, *q;
    int i;
    for (i = 0; i < 100; i++) { x[i] = 1.0f; y[i] = i; z[i] = 0.5f; }
    p = &x[1];
    q = &x[0];
    for (i = 0; i < 98; i++)
        p[i] = z[i] * (y[i] - q[i]);
    return 0;
}
"#;
    let base = prep(src);
    let mut opt = base.clone();
    vectorize(&mut opt.procs[0], &VectorOptions::default());
    let rep = strength_reduce(&mut opt.procs[0], Aliasing::C);
    assert_eq!(rep.promoted, 1, "{}", pretty_proc(&opt.procs[0]));
    assert!(rep.reduced >= 2, "{rep:?}");
    let text = pretty_proc(&opt.procs[0]);
    assert!(text.contains("f_reg"), "{text}");

    let g = [("x", ScalarType::Float, 100)];
    assert_eq!(observe(&base, &g), observe(&opt, &g));
}

#[test]
fn backsolve_speedup_shape() {
    // the paper: 0.5 → 1.9 MFLOPS. verify the shape: ≥2.5× speedup and
    // integer multiplies gone.
    let src = r#"
float x[1026], y[1026], z[1026];
int main(void)
{
    float *p, *q;
    int i;
    for (i = 0; i < 1026; i++) { x[i] = 1.0f; y[i] = i; z[i] = 0.5f; }
    p = &x[1];
    q = &x[0];
    for (i = 0; i < 1024; i++)
        p[i] = z[i] * (y[i] - q[i]);
    return 0;
}
"#;
    let base = compile_to_il(src).unwrap(); // completely unoptimized
    let mut opt = prep(src);
    vectorize(&mut opt.procs[0], &VectorOptions::default());
    strength_reduce(&mut opt.procs[0], Aliasing::C);
    titanc_opt::eliminate_dead_code(&mut opt.procs[0]);

    let (_, s_base) = titanc_titan::observe(&base, MachineConfig::scalar(), "main", &[]).unwrap();
    let (_, s_opt) = titanc_titan::observe(&opt, MachineConfig::optimized(1), "main", &[]).unwrap();
    let speedup = s_base.cycles / s_opt.cycles;
    assert!(
        speedup > 2.0,
        "dependence-driven scalar opts speedup {speedup:.2} (base {} opt {})",
        s_base.cycles,
        s_opt.cycles
    );
    // results agree
    let g = [("x", ScalarType::Float, 100)];
    let b = titanc_titan::observe(&base, MachineConfig::scalar(), "main", &g)
        .unwrap()
        .0;
    let o = titanc_titan::observe(&opt, MachineConfig::optimized(1), "main", &g)
        .unwrap()
        .0;
    assert_eq!(b.globals, o.globals);
}

#[test]
fn strength_reduction_removes_multiplies() {
    let src = r#"
float a[64], b[64];
int main(void)
{
    int i;
    for (i = 0; i < 64; i++) b[i] = i;
    for (i = 0; i < 64; i++) a[i] = b[i] + 1.0f;
    return 0;
}
"#;
    // force scalar (C aliasing fine: named arrays vectorize; so disable by
    // not vectorizing and just strength-reducing)
    let base = prep(src);
    let mut opt = base.clone();
    let rep = strength_reduce(&mut opt.procs[0], Aliasing::C);
    assert!(rep.reduced >= 2, "{rep:?}");
    let text = pretty_proc(&opt.procs[0]);
    assert!(text.contains("sr_p"), "{text}");
    let g = [("a", ScalarType::Float, 64)];
    assert_eq!(observe(&base, &g), observe(&opt, &g));
    // integer multiply count drops
    let (_, s_base) = titanc_titan::observe(&base, MachineConfig::scalar(), "main", &[]).unwrap();
    let (_, s_opt) = titanc_titan::observe(&opt, MachineConfig::scalar(), "main", &[]).unwrap();
    assert!(
        s_opt.cycles < s_base.cycles,
        "{} !< {}",
        s_opt.cycles,
        s_base.cycles
    );
}

#[test]
fn hoists_invariant_statement() {
    let src = r#"
float a[64];
int main(void)
{
    int i;
    float k;
    float scale;
    scale = 3.0f;
    for (i = 0; i < 64; i++) {
        k = scale * 2.0f;
        a[i] = k;
    }
    return 0;
}
"#;
    let prog = compile_to_il(src).unwrap();
    let mut proc = prog.procs[0].clone();
    titanc_opt::convert_while_loops(&mut proc);
    titanc_opt::induction_substitution(&mut proc);
    // constant bounds must be visible for the trips>=1 safety check
    titanc_opt::constant_propagation(&mut proc);
    let rep = strength_reduce(&mut proc, Aliasing::C);
    assert!(rep.hoisted >= 1, "{}", pretty_proc(&proc));
    // equivalence
    let mut opt_prog = prog.clone();
    opt_prog.procs[0] = proc;
    let g = [("a", ScalarType::Float, 64)];
    let b = titanc_titan::observe(&prog, MachineConfig::scalar(), "main", &g)
        .unwrap()
        .0;
    let o = titanc_titan::observe(&opt_prog, MachineConfig::scalar(), "main", &g)
        .unwrap()
        .0;
    assert_eq!(b, o);
}

#[test]
fn daxpy_pragma_full_pipeline_speedup() {
    // the §9 result shape without inlining: pragma-safe daxpy body,
    // vectorized + parallelized on 2 processors vs scalar
    let src = r#"
float xa[100], yb[100], zc[100];
int main(void)
{
    float *x, *y, *z;
    float alpha;
    int n;
    x = &xa[0];
    y = &yb[0];
    z = &zc[0];
    alpha = 1.0f;
    n = 100;
#pragma safe
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
    return 0;
}
"#;
    let base = compile_to_il(src).unwrap();
    let mut opt = prep(src);
    let opts = VectorOptions {
        parallelize: true,
        ..VectorOptions::default()
    };
    let rep = vectorize(&mut opt.procs[0], &opts);
    assert!(rep.vectorized >= 1, "{}", pretty_proc(&opt.procs[0]));

    let g = [("xa", ScalarType::Float, 100)];
    let b = titanc_titan::observe(&base, MachineConfig::scalar(), "main", &g).unwrap();
    let o = titanc_titan::observe(&opt, MachineConfig::optimized(2), "main", &g).unwrap();
    assert_eq!(b.0.globals, o.0.globals);
    let speedup = b.1.cycles / o.1.cycles;
    assert!(speedup > 4.0, "vector+parallel speedup {speedup:.2}");
}

#[test]
fn partial_distribution_splits_vector_and_scalar() {
    // the second statement is a recurrence (stays scalar); the first is a
    // clean vector statement. Allen-Kennedy distribution separates them.
    let src = r#"
float a[64], b[64], r[66];
int main(void)
{
    int i;
    for (i = 0; i < 64; i++) {
        a[i] = b[i] + 1.0f;
        r[i + 1] = r[i] * 0.5f;
    }
    return 0;
}
"#;
    let base = prep(src);
    let mut opt = base.clone();
    let rep = vectorize(&mut opt.procs[0], &VectorOptions::default());
    assert_eq!(rep.vectorized, 1, "{}", pretty_proc(&opt.procs[0]));
    let text = pretty_proc(&opt.procs[0]);
    assert!(text.contains("(float)["), "vector part emitted: {text}");
    assert!(
        text.contains("do fortran"),
        "residual scalar loop remains: {text}"
    );
    let g = [("a", ScalarType::Float, 64), ("r", ScalarType::Float, 66)];
    assert_eq!(observe(&base, &g), observe(&opt, &g));
}

#[test]
fn distribution_respects_dependence_order() {
    // vector statement consumes what the scalar recurrence produces:
    // the residual loop must run before the vector statement
    let src = r#"
float a[64], r[66];
int main(void)
{
    int i;
    r[0] = 1.0f;
    for (i = 0; i < 64; i++) {
        r[i + 1] = r[i] * 0.5f;
        a[i] = r[i] + 1.0f;
    }
    return 0;
}
"#;
    let base = prep(src);
    let mut opt = base.clone();
    let rep = vectorize(&mut opt.procs[0], &VectorOptions::default());
    // r[i] is read by the vector candidate but r is written by the
    // recurrence with unknown-to-vector timing: the dependence keeps them
    // ordered. Whatever the classification, semantics must hold.
    let _ = rep;
    let g = [("a", ScalarType::Float, 64), ("r", ScalarType::Float, 66)];
    assert_eq!(observe(&base, &g), observe(&opt, &g));
}

#[test]
fn scalar_flow_between_statements_stays_in_one_loop() {
    // t carries a value from statement 1 to statement 2 each iteration;
    // distribution must not separate them (scalar edges force one SCC)
    let src = r#"
float a[64], b[64];
int main(void)
{
    int i;
    float t;
    for (i = 0; i < 64; i++) {
        t = b[i] * 2.0f;
        a[i] = t + 1.0f;
    }
    return 0;
}
"#;
    let base = prep(src);
    let mut opt = base.clone();
    vectorize(&mut opt.procs[0], &VectorOptions::default());
    let g = [("a", ScalarType::Float, 64)];
    assert_eq!(observe(&base, &g), observe(&opt, &g));
}
