//! Dependence-driven scalar optimization (§6).
//!
//! "There are probably far more C programs that do not vectorize than do"
//! — but the dependence graph built for vectorization still pays for
//! itself on scalar loops:
//!
//! * **Register promotion** (§6 item 1): a loop-carried flow dependence
//!   with distance 1 pinpoints a memory cell whose stored value is re-read
//!   on the next iteration — the backsolve loop's `x[i+1] = …; … x[i] …`.
//!   The value is pulled up into a register, eliminating the load and the
//!   memory-order constraint on scheduling.
//! * **Strength reduction** (§6 item 3): affine addresses
//!   `base + coeff·lv + off` are replaced by pointer temporaries bumped by
//!   `coeff·step` each iteration, removing the integer multiplies that
//!   induction-variable substitution introduced (the "deoptimization" the
//!   paper admits IVS causes on non-vector loops). Common affine addresses
//!   share one temporary — the combined CSE the paper describes.
//! * **Loop-invariant hoisting**: invariant top-level right-hand sides move
//!   in front of the loop.

use titanc_deps::{const_trip_count, decompose, Affine, Aliasing, DepGraph};
use titanc_il::{BinOp, Expr, LValue, Procedure, ScalarType, Stmt, StmtId, StmtKind, Type};
use titanc_opt::util::invariant_in;

/// What the pass did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrengthReport {
    /// Memory cells promoted to registers.
    pub promoted: usize,
    /// Distinct affine addresses strength-reduced to pointer walks.
    pub reduced: usize,
    /// Invariant statements hoisted.
    pub hoisted: usize,
}

impl StrengthReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: StrengthReport) {
        self.promoted += other.promoted;
        self.reduced += other.reduced;
        self.hoisted += other.hoisted;
    }
}

titanc_il::struct_json!(StrengthReport, [promoted, reduced, hoisted]);

/// Runs the §6 optimizations on every remaining scalar DO loop.
pub fn strength_reduce(proc: &mut Procedure, aliasing: Aliasing) -> StrengthReport {
    let mut report = StrengthReport::default();
    let ids: Vec<StmtId> = do_loop_ids(proc);
    for id in ids {
        promote_registers(proc, id, aliasing, &mut report);
        hoist_invariants(proc, id, &mut report);
        reduce_addresses(proc, id, &mut report);
    }
    if report.promoted > 0 || report.reduced > 0 || report.hoisted > 0 {
        proc.bump_generation();
    }
    report
}

fn do_loop_ids(proc: &Procedure) -> Vec<StmtId> {
    let mut out = Vec::new();
    proc.for_each_stmt(&mut |s| {
        if matches!(s.kind, StmtKind::DoLoop { .. }) {
            out.push(s.id);
        }
    });
    out
}

fn loop_parts(
    proc: &Procedure,
    id: StmtId,
) -> Option<(titanc_il::VarId, Expr, Expr, i64, Vec<Stmt>)> {
    let s = proc.find_stmt(id)?;
    match &s.kind {
        StmtKind::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            let st = step.as_int()?;
            if st == 0 {
                return None;
            }
            Some((*var, lo.clone(), hi.clone(), st, body.clone()))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// register promotion
// ---------------------------------------------------------------------

/// Pulls a distance-1 store→load pair into a register:
///
/// ```text
/// r = load(A(lo));                    // preheader
/// DO lv { … t = rhs; store(W, t); r = t; …  load → r … }
/// ```
fn promote_registers(
    proc: &mut Procedure,
    id: StmtId,
    aliasing: Aliasing,
    report: &mut StrengthReport,
) {
    let (lv, lo, hi, step, body) = match loop_parts(proc, id) {
        Some(p) => p,
        None => return,
    };
    let trips = const_trip_count(&lo, &hi, &Expr::int(step));
    let graph = DepGraph::build_for_loop(proc, &body, lv, lo.as_int(), step, trips, aliasing);
    if graph.pinned.iter().any(|&p| p) {
        return;
    }
    // find a store with distance-1 flow into a load, both analyzable
    let cands = graph.carried_true_distances();
    let pair = cands.iter().find(|(_, d)| *d == 1);
    let (edge, _) = match pair {
        Some(p) => *p,
        None => return,
    };
    let store_idx = edge.from;
    let load_idx = edge.to;

    // the store statement: lhs Deref affine
    let (store_aff, store_ty) = {
        match &body[store_idx].kind {
            StmtKind::Assign {
                lhs:
                    LValue::Deref {
                        addr,
                        ty,
                        volatile: false,
                    },
                ..
            } => match decompose(proc, &body, lv, addr) {
                Some(a) => (a, *ty),
                None => return,
            },
            _ => return,
        }
    };
    // the load: find the unique Load in the sink statement whose affine is
    // store_aff shifted by exactly one iteration
    let want_offset = store_aff.offset - store_aff.coeff * step;
    let matches_load = |aff: &Affine| {
        aff.same_base(&store_aff) && aff.coeff == store_aff.coeff && aff.offset == want_offset
    };
    // ensure no OTHER write may touch the promoted cell range
    for r in &graph.refs {
        if r.is_write && r.stmt != store_idx {
            match &r.affine {
                Some(a) if a.same_base(&store_aff) => return,
                Some(_) => {}
                None => return,
            }
        }
    }
    // and the load must execute unconditionally at top level
    if body[load_idx].blocks().iter().any(|b| !b.is_empty()) {
        return;
    }

    // build the transformation
    let reg = proc.fresh_temp(match store_ty {
        ScalarType::Float => Type::Float,
        ScalarType::Double => Type::Double,
        ScalarType::Char => Type::Char,
        ScalarType::Ptr => Type::ptr_to(Type::Void),
        ScalarType::Int => Type::Int,
    });
    proc.var_mut(reg).name = format!("f_reg{}", reg.index());
    let tval = proc.fresh_temp(proc.var(reg).ty.clone());

    // preheader: reg = load(A_load(lo))
    let load_aff = Affine {
        terms: store_aff.terms.clone(),
        coeff: store_aff.coeff,
        offset: want_offset,
    };
    let pre = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(reg),
        rhs: Expr::load(load_aff.materialize(&lo), store_ty),
    });

    // rewrite body
    let mut new_body = body.clone();
    // replace the matching load in the sink statement with reg
    let mut replaced = false;
    for e in new_body[load_idx].exprs_mut() {
        replace_matching_load(proc, &body, lv, e, &matches_load, reg, &mut replaced);
    }
    if !replaced {
        return;
    }
    // split the store: tval = rhs; store = tval; reg = tval
    let (store_lhs, store_rhs) = match &new_body[store_idx].kind {
        StmtKind::Assign { lhs, rhs } => (lhs.clone(), rhs.clone()),
        _ => return,
    };
    let s1 = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(tval),
        rhs: store_rhs,
    });
    let s2 = proc.stamp(StmtKind::Assign {
        lhs: store_lhs,
        rhs: Expr::var(tval),
    });
    let s3 = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(reg),
        rhs: Expr::var(tval),
    });
    new_body.splice(store_idx..=store_idx, [s1, s2, s3]);

    replace_loop(proc, id, vec![pre], new_body, None);
    report.promoted += 1;
}

#[allow(clippy::too_many_arguments)]
fn replace_matching_load(
    proc: &Procedure,
    body: &[Stmt],
    lv: titanc_il::VarId,
    e: &mut Expr,
    matches: &dyn Fn(&Affine) -> bool,
    reg: titanc_il::VarId,
    replaced: &mut bool,
) {
    if let Expr::Load {
        addr,
        volatile: false,
        ..
    } = e
    {
        if let Some(aff) = decompose(proc, body, lv, addr) {
            if matches(&aff) {
                *e = Expr::var(reg);
                *replaced = true;
                return;
            }
        }
    }
    for c in e.children_mut() {
        replace_matching_load(proc, body, lv, c, matches, reg, replaced);
    }
}

// ---------------------------------------------------------------------
// loop-invariant hoisting
// ---------------------------------------------------------------------

fn hoist_invariants(proc: &mut Procedure, id: StmtId, report: &mut StrengthReport) {
    let (lv, lo, hi, step, body) = match loop_parts(proc, id) {
        Some(p) => p,
        None => return,
    };
    // Hoisting executes the assignment exactly once *before* the loop, so
    // it is only sound when (a) the loop provably runs at least once —
    // otherwise a post-loop reader would observe a write that never
    // happened — and (b) nothing at or before the definition reads the
    // variable, whose first-iteration value would otherwise still be the
    // pre-loop one.
    let runs_at_least_once = matches!(
        const_trip_count(&lo, &hi, &Expr::int(step)),
        Some(n) if n >= 1
    );
    if !runs_at_least_once {
        return;
    }
    let mut hoisted: Vec<Stmt> = Vec::new();
    let mut kept: Vec<Stmt> = Vec::new();
    for (pos, s) in body.clone().into_iter().enumerate() {
        let hoist = match &s.kind {
            StmtKind::Assign {
                lhs: LValue::Var(v),
                rhs,
            } => {
                titanc_opt::util::register_candidate(proc, *v)
                    && !rhs.reads_var(lv)
                    && invariant_in(proc, &body, rhs)
                    && body.iter().filter(|t| t.defined_var() == Some(*v)).count() == 1
                    && !body.iter().any(|t| {
                        t.blocks()
                            .iter()
                            .any(|b| titanc_opt::util::defined_in(b, *v))
                    })
                    && titanc_opt::util::count_reads_block(&body[..=pos], *v) == 0
            }
            _ => false,
        };
        if hoist {
            hoisted.push(s);
        } else {
            kept.push(s);
        }
    }
    if hoisted.is_empty() {
        return;
    }
    report.hoisted += hoisted.len();
    replace_loop(proc, id, hoisted, kept, None);
}

// ---------------------------------------------------------------------
// strength reduction of affine addresses
// ---------------------------------------------------------------------

/// (base key, coefficient, offset, representative affine)
type AddrKey = (Vec<(String, i64)>, i64, i64, Affine);

fn reduce_addresses(proc: &mut Procedure, id: StmtId, report: &mut StrengthReport) {
    let (lv, lo, _hi, step, body) = match loop_parts(proc, id) {
        Some(p) => p,
        None => return,
    };
    // collect distinct varying affine addresses from loads and stores
    let mut keys: Vec<AddrKey> = Vec::new();
    for s in &body {
        for e in s.exprs() {
            collect_affine_addrs(proc, &body, lv, e, &mut keys);
        }
        if let StmtKind::Assign {
            lhs: LValue::Deref { addr, .. },
            ..
        } = &s.kind
        {
            if let Some(aff) = decompose(proc, &body, lv, addr) {
                if aff.coeff != 0 {
                    push_key(&mut keys, aff);
                }
            }
        }
    }
    if keys.is_empty() {
        return;
    }

    let mut pre = Vec::new();
    let mut post_incs = Vec::new();
    let mut new_body = body.clone();
    for (_, coeff, _off, aff) in &keys {
        let pt = proc.fresh_temp(Type::ptr_to(Type::Void));
        proc.var_mut(pt).name = format!("sr_p{}", pt.index());
        let init = proc.stamp(StmtKind::Assign {
            lhs: LValue::Var(pt),
            rhs: aff.materialize(&lo),
        });
        pre.push(init);
        let bump = proc.stamp(StmtKind::Assign {
            lhs: LValue::Var(pt),
            rhs: Expr::binary(
                BinOp::Add,
                ScalarType::Ptr,
                Expr::var(pt),
                Expr::int(coeff * step),
            ),
        });
        post_incs.push(bump);
        // replace address expressions equal to this affine with Var(pt)
        for s in &mut new_body {
            for e in s.exprs_mut() {
                replace_affine_addr(proc, &body, lv, e, aff, pt);
            }
            if let StmtKind::Assign {
                lhs: LValue::Deref { addr, .. },
                ..
            } = &mut s.kind
            {
                if let Some(a2) = decompose(proc, &body, lv, addr) {
                    if a2 == *aff {
                        *addr = Expr::var(pt);
                    }
                }
            }
        }
        report.reduced += 1;
    }
    new_body.extend(post_incs);
    replace_loop(proc, id, pre, new_body, None);
}

fn push_key(keys: &mut Vec<AddrKey>, aff: Affine) {
    let key = (aff.base_key(), aff.coeff, aff.offset);
    if !keys
        .iter()
        .any(|(b, c, o, _)| *b == key.0 && *c == key.1 && *o == key.2)
    {
        keys.push((key.0, key.1, key.2, aff));
    }
}

fn collect_affine_addrs(
    proc: &Procedure,
    body: &[Stmt],
    lv: titanc_il::VarId,
    e: &Expr,
    keys: &mut Vec<AddrKey>,
) {
    if let Expr::Load {
        addr,
        volatile: false,
        ..
    } = e
    {
        if let Some(aff) = decompose(proc, body, lv, addr) {
            if aff.coeff != 0 {
                push_key(keys, aff);
            }
        }
    }
    for c in e.children() {
        collect_affine_addrs(proc, body, lv, c, keys);
    }
}

fn replace_affine_addr(
    proc: &Procedure,
    body: &[Stmt],
    lv: titanc_il::VarId,
    e: &mut Expr,
    aff: &Affine,
    pt: titanc_il::VarId,
) {
    if let Expr::Load {
        addr,
        volatile: false,
        ..
    } = e
    {
        if let Some(a2) = decompose(proc, body, lv, addr) {
            if a2 == *aff {
                **addr = Expr::var(pt);
                return;
            }
        }
    }
    for c in e.children_mut() {
        replace_affine_addr(proc, body, lv, c, aff, pt);
    }
}

// ---------------------------------------------------------------------

/// Replaces the loop: `pre…; DO { new_body }; post…`.
fn replace_loop(
    proc: &mut Procedure,
    id: StmtId,
    pre: Vec<Stmt>,
    new_body: Vec<Stmt>,
    mut post: Option<Vec<Stmt>>,
) {
    fn walk(
        block: &mut Vec<Stmt>,
        id: StmtId,
        pre: &mut Option<Vec<Stmt>>,
        new_body: &mut Option<Vec<Stmt>>,
        post: &mut Option<Vec<Stmt>>,
    ) -> bool {
        for i in 0..block.len() {
            if block[i].id == id {
                if let StmtKind::DoLoop { body, .. } = &mut block[i].kind {
                    *body = new_body.take().unwrap();
                }
                let pre = pre.take().unwrap();
                let n_pre = pre.len();
                for (k, s) in pre.into_iter().enumerate() {
                    block.insert(i + k, s);
                }
                if let Some(post) = post.take() {
                    for (k, s) in post.into_iter().enumerate() {
                        block.insert(i + n_pre + 1 + k, s);
                    }
                }
                return true;
            }
            for b in block[i].blocks_mut() {
                if walk(b, id, pre, new_body, post) {
                    return true;
                }
            }
        }
        false
    }
    let mut body = std::mem::take(&mut proc.body);
    walk(
        &mut body,
        id,
        &mut Some(pre),
        &mut Some(new_body),
        &mut post,
    );
    proc.body = body;
}
