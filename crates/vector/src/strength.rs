//! Dependence-driven scalar optimization (§6).
//!
//! "There are probably far more C programs that do not vectorize than do"
//! — but the dependence graph built for vectorization still pays for
//! itself on scalar loops:
//!
//! * **Register promotion** (§6 item 1): a loop-carried flow dependence
//!   with distance 1 pinpoints a memory cell whose stored value is re-read
//!   on the next iteration — the backsolve loop's `x[i+1] = …; … x[i] …`.
//!   The value is pulled up into a register, eliminating the load and the
//!   memory-order constraint on scheduling.
//! * **Strength reduction** (§6 item 3): affine addresses
//!   `base + coeff·lv + off` are replaced by pointer temporaries bumped by
//!   `coeff·step` each iteration, removing the integer multiplies that
//!   induction-variable substitution introduced (the "deoptimization" the
//!   paper admits IVS causes on non-vector loops). Common affine addresses
//!   share one temporary — the combined CSE the paper describes.
//! * **Loop-invariant hoisting**: invariant top-level right-hand sides move
//!   in front of the loop.

use titanc_deps::{const_trip_count, decompose, Affine, Aliasing, DepGraph};
use titanc_il::{
    BinOp, Block, Expr, ExprId, LValue, Procedure, ScalarType, StmtId, StmtKind, StmtPool, Type,
};
use titanc_opt::util::invariant_in;

/// What the pass did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrengthReport {
    /// Memory cells promoted to registers.
    pub promoted: usize,
    /// Distinct affine addresses strength-reduced to pointer walks.
    pub reduced: usize,
    /// Invariant statements hoisted.
    pub hoisted: usize,
}

impl StrengthReport {
    /// Folds another report's counts into this one (used by the pass
    /// manager to aggregate per-pass deltas).
    pub fn merge(&mut self, other: StrengthReport) {
        self.promoted += other.promoted;
        self.reduced += other.reduced;
        self.hoisted += other.hoisted;
    }
}

titanc_il::struct_json!(StrengthReport, [promoted, reduced, hoisted]);

/// Runs the §6 optimizations on every remaining scalar DO loop.
pub fn strength_reduce(proc: &mut Procedure, aliasing: Aliasing) -> StrengthReport {
    let mut report = StrengthReport::default();
    let ids: Vec<StmtId> = do_loop_ids(proc);
    for id in ids {
        promote_registers(proc, id, aliasing, &mut report);
        hoist_invariants(proc, id, &mut report);
        reduce_addresses(proc, id, &mut report);
    }
    if report.promoted > 0 || report.reduced > 0 || report.hoisted > 0 {
        proc.bump_generation();
    }
    report
}

fn do_loop_ids(proc: &Procedure) -> Vec<StmtId> {
    let mut out = Vec::new();
    proc.for_each_stmt(&mut |s, kind| {
        if matches!(kind, StmtKind::DoLoop { .. }) {
            out.push(s);
        }
    });
    out
}

/// `(var, lo, hi, step constant, step expr, body)` of a DO loop with a
/// nonzero constant step.
fn loop_parts(
    proc: &Procedure,
    id: StmtId,
) -> Option<(titanc_il::VarId, ExprId, ExprId, i64, ExprId, Block)> {
    match proc.find_stmt(id)? {
        StmtKind::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            let st = proc.exprs.as_int(*step)?;
            if st == 0 {
                return None;
            }
            Some((*var, *lo, *hi, st, *step, body.clone()))
        }
        _ => None,
    }
}

/// Semantic affine equality: same symbolic base, coefficient, and offset
/// (term *ids* differ between two decompositions of distinct loads).
fn affine_eq(a: &Affine, b: &Affine) -> bool {
    a.same_base(b) && a.coeff == b.coeff && a.offset == b.offset
}

// ---------------------------------------------------------------------
// register promotion
// ---------------------------------------------------------------------

/// Pulls a distance-1 store→load pair into a register:
///
/// ```text
/// r = load(A(lo));                    // preheader
/// DO lv { … t = rhs; store(W, t); r = t; …  load → r … }
/// ```
fn promote_registers(
    proc: &mut Procedure,
    id: StmtId,
    aliasing: Aliasing,
    report: &mut StrengthReport,
) {
    let (lv, lo, hi, step, step_e, body) = match loop_parts(proc, id) {
        Some(p) => p,
        None => return,
    };
    let trips = const_trip_count(&proc.exprs, lo, hi, step_e);
    let lo_const = proc.exprs.as_int(lo);
    let graph = DepGraph::build_for_loop(proc, &body, lv, lo_const, step, trips, aliasing);
    if graph.pinned.iter().any(|&p| p) {
        return;
    }
    // find a store with distance-1 flow into a load, both analyzable
    let cands = graph.carried_true_distances();
    let pair = cands.iter().find(|(_, d)| *d == 1);
    let (edge, _) = match pair {
        Some(p) => *p,
        None => return,
    };
    let store_idx = edge.from;
    let load_idx = edge.to;

    // the store statement: lhs Deref affine
    let (store_aff, store_ty) = {
        match &proc.stmts[body[store_idx]] {
            StmtKind::Assign {
                lhs:
                    LValue::Deref {
                        addr,
                        ty,
                        volatile: false,
                    },
                ..
            } => match decompose(proc, &body, lv, *addr) {
                Some(a) => (a, *ty),
                None => return,
            },
            _ => return,
        }
    };
    // the load: find the unique Load in the sink statement whose affine is
    // store_aff shifted by exactly one iteration
    let want_offset = store_aff.offset - store_aff.coeff * step;
    let matches_load = |aff: &Affine| {
        aff.same_base(&store_aff) && aff.coeff == store_aff.coeff && aff.offset == want_offset
    };
    // ensure no OTHER write may touch the promoted cell range
    for r in &graph.refs {
        if r.is_write && r.stmt != store_idx {
            match &r.affine {
                Some(a) if a.same_base(&store_aff) => return,
                Some(_) => {}
                None => return,
            }
        }
    }
    // and the load must execute unconditionally at top level
    if proc.stmts[body[load_idx]]
        .blocks()
        .iter()
        .any(|b| !b.is_empty())
    {
        return;
    }

    // build the transformation
    let reg = proc.fresh_temp(match store_ty {
        ScalarType::Float => Type::Float,
        ScalarType::Double => Type::Double,
        ScalarType::Char => Type::Char,
        ScalarType::Ptr => Type::ptr_to(Type::Void),
        ScalarType::Int => Type::Int,
    });
    proc.var_mut(reg).name = format!("f_reg{}", reg.index());
    let tval = proc.fresh_temp(proc.var(reg).ty.clone());

    // preheader: reg = load(A_load(lo))
    let load_aff = Affine {
        terms: store_aff.terms.clone(),
        coeff: store_aff.coeff,
        offset: want_offset,
    };
    let lo_c = proc.exprs.copy(lo);
    let pre_addr = load_aff.materialize(&mut proc.exprs, lo_c);
    let pre_rhs = proc.exprs.load(pre_addr, store_ty);
    let pre = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(reg),
        rhs: pre_rhs,
    });

    // rewrite body
    let mut new_body = body.clone();
    // replace the matching load in the sink statement with reg
    let mut replaced = false;
    for e in proc.stmts[new_body[load_idx]].exprs() {
        replace_matching_load(proc, &body, lv, e, &matches_load, reg, &mut replaced);
    }
    if !replaced {
        return;
    }
    // split the store: tval = rhs; store = tval; reg = tval
    let (store_lhs, store_rhs) = match &proc.stmts[new_body[store_idx]] {
        StmtKind::Assign { lhs, rhs } => (*lhs, *rhs),
        _ => return,
    };
    let s1 = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(tval),
        rhs: store_rhs,
    });
    let t_read = proc.exprs.var(tval);
    let s2 = proc.stamp(StmtKind::Assign {
        lhs: store_lhs,
        rhs: t_read,
    });
    let t_read2 = proc.exprs.var(tval);
    let s3 = proc.stamp(StmtKind::Assign {
        lhs: LValue::Var(reg),
        rhs: t_read2,
    });
    new_body.splice(store_idx..=store_idx, [s1, s2, s3]);

    replace_loop(proc, id, vec![pre], new_body, None);
    report.promoted += 1;
}

fn replace_matching_load(
    proc: &mut Procedure,
    body: &[StmtId],
    lv: titanc_il::VarId,
    e: ExprId,
    matches: &dyn Fn(&Affine) -> bool,
    reg: titanc_il::VarId,
    replaced: &mut bool,
) {
    if let Expr::Load {
        addr,
        volatile: false,
        ..
    } = proc.exprs[e]
    {
        if let Some(aff) = decompose(proc, body, lv, addr) {
            if matches(&aff) {
                proc.exprs[e] = Expr::Var(reg);
                *replaced = true;
                return;
            }
        }
    }
    for c in proc.exprs[e].child_ids() {
        replace_matching_load(proc, body, lv, c, matches, reg, replaced);
    }
}

// ---------------------------------------------------------------------
// loop-invariant hoisting
// ---------------------------------------------------------------------

fn hoist_invariants(proc: &mut Procedure, id: StmtId, report: &mut StrengthReport) {
    let (lv, lo, hi, _step, step_e, body) = match loop_parts(proc, id) {
        Some(p) => p,
        None => return,
    };
    // Hoisting executes the assignment exactly once *before* the loop, so
    // it is only sound when (a) the loop provably runs at least once —
    // otherwise a post-loop reader would observe a write that never
    // happened — and (b) nothing at or before the definition reads the
    // variable, whose first-iteration value would otherwise still be the
    // pre-loop one.
    let runs_at_least_once = matches!(
        const_trip_count(&proc.exprs, lo, hi, step_e),
        Some(n) if n >= 1
    );
    if !runs_at_least_once {
        return;
    }
    let mut hoisted: Block = Vec::new();
    let mut kept: Block = Vec::new();
    for (pos, &s) in body.iter().enumerate() {
        let hoist = match &proc.stmts[s] {
            StmtKind::Assign {
                lhs: LValue::Var(v),
                rhs,
            } => {
                titanc_opt::util::register_candidate(proc, *v)
                    && !proc.exprs.reads_var(*rhs, lv)
                    && invariant_in(proc, &body, *rhs)
                    && body
                        .iter()
                        .filter(|&&t| proc.stmts[t].defined_var() == Some(*v))
                        .count()
                        == 1
                    && !body.iter().any(|&t| {
                        proc.stmts[t]
                            .blocks()
                            .iter()
                            .any(|b| titanc_opt::util::defined_in(&proc.stmts, b, *v))
                    })
                    && titanc_opt::util::count_reads_block(
                        &proc.stmts,
                        &proc.exprs,
                        &body[..=pos],
                        *v,
                    ) == 0
            }
            _ => false,
        };
        if hoist {
            hoisted.push(s);
        } else {
            kept.push(s);
        }
    }
    if hoisted.is_empty() {
        return;
    }
    report.hoisted += hoisted.len();
    replace_loop(proc, id, hoisted, kept, None);
}

// ---------------------------------------------------------------------
// strength reduction of affine addresses
// ---------------------------------------------------------------------

/// (base key, coefficient, offset, representative affine)
type AddrKey = (Vec<(String, i64)>, i64, i64, Affine);

fn reduce_addresses(proc: &mut Procedure, id: StmtId, report: &mut StrengthReport) {
    let (lv, lo, _hi, step, _step_e, body) = match loop_parts(proc, id) {
        Some(p) => p,
        None => return,
    };
    // collect distinct varying affine addresses from loads and stores
    let mut keys: Vec<AddrKey> = Vec::new();
    for &s in &body {
        for e in proc.stmts[s].exprs() {
            collect_affine_addrs(proc, &body, lv, e, &mut keys);
        }
        if let StmtKind::Assign {
            lhs: LValue::Deref { addr, .. },
            ..
        } = &proc.stmts[s]
        {
            if let Some(aff) = decompose(proc, &body, lv, *addr) {
                if aff.coeff != 0 {
                    push_key(&mut keys, aff);
                }
            }
        }
    }
    if keys.is_empty() {
        return;
    }

    let mut pre = Vec::new();
    let mut post_incs = Vec::new();
    let mut new_body = body.clone();
    for (_, coeff, _off, aff) in &keys {
        let pt = proc.fresh_temp(Type::ptr_to(Type::Void));
        proc.var_mut(pt).name = format!("sr_p{}", pt.index());
        let lo_c = proc.exprs.copy(lo);
        let init_rhs = aff.materialize(&mut proc.exprs, lo_c);
        let init = proc.stamp(StmtKind::Assign {
            lhs: LValue::Var(pt),
            rhs: init_rhs,
        });
        pre.push(init);
        let pt_read = proc.exprs.var(pt);
        let delta = proc.exprs.int(coeff * step);
        let bump_rhs = proc
            .exprs
            .binary(BinOp::Add, ScalarType::Ptr, pt_read, delta);
        let bump = proc.stamp(StmtKind::Assign {
            lhs: LValue::Var(pt),
            rhs: bump_rhs,
        });
        post_incs.push(bump);
        // replace address expressions equal to this affine with Var(pt)
        for &s in &new_body {
            for e in proc.stmts[s].exprs() {
                replace_affine_addr(proc, &body, lv, e, aff, pt);
            }
            let store_addr = match &proc.stmts[s] {
                StmtKind::Assign {
                    lhs: LValue::Deref { addr, .. },
                    ..
                } => Some(*addr),
                _ => None,
            };
            if let Some(addr) = store_addr {
                if let Some(a2) = decompose(proc, &body, lv, addr) {
                    if affine_eq(&a2, aff) {
                        proc.exprs[addr] = Expr::Var(pt);
                    }
                }
            }
        }
        report.reduced += 1;
    }
    new_body.extend(post_incs);
    replace_loop(proc, id, pre, new_body, None);
}

fn push_key(keys: &mut Vec<AddrKey>, aff: Affine) {
    let key = (aff.base_key(), aff.coeff, aff.offset);
    if !keys
        .iter()
        .any(|(b, c, o, _)| *b == key.0 && *c == key.1 && *o == key.2)
    {
        keys.push((key.0, key.1, key.2, aff));
    }
}

fn collect_affine_addrs(
    proc: &Procedure,
    body: &[StmtId],
    lv: titanc_il::VarId,
    e: ExprId,
    keys: &mut Vec<AddrKey>,
) {
    if let Expr::Load {
        addr,
        volatile: false,
        ..
    } = proc.exprs[e]
    {
        if let Some(aff) = decompose(proc, body, lv, addr) {
            if aff.coeff != 0 {
                push_key(keys, aff);
            }
        }
    }
    for c in proc.exprs[e].child_ids() {
        collect_affine_addrs(proc, body, lv, c, keys);
    }
}

/// Overwrites the *address slot* of every load whose affine form equals
/// `aff` with a read of the pointer temporary.
fn replace_affine_addr(
    proc: &mut Procedure,
    body: &[StmtId],
    lv: titanc_il::VarId,
    e: ExprId,
    aff: &Affine,
    pt: titanc_il::VarId,
) {
    if let Expr::Load {
        addr,
        volatile: false,
        ..
    } = proc.exprs[e]
    {
        if let Some(a2) = decompose(proc, body, lv, addr) {
            if affine_eq(&a2, aff) {
                proc.exprs[addr] = Expr::Var(pt);
                return;
            }
        }
    }
    for c in proc.exprs[e].child_ids() {
        replace_affine_addr(proc, body, lv, c, aff, pt);
    }
}

// ---------------------------------------------------------------------

/// Replaces the loop: `pre…; DO { new_body }; post…`.
fn replace_loop(
    proc: &mut Procedure,
    id: StmtId,
    pre: Block,
    new_body: Block,
    mut post: Option<Block>,
) {
    if let StmtKind::DoLoop { body, .. } = &mut proc.stmts[id] {
        *body = new_body;
    }
    fn walk(
        stmts: &mut StmtPool,
        block: &mut Block,
        id: StmtId,
        pre: &mut Option<Block>,
        post: &mut Option<Block>,
    ) -> bool {
        for i in 0..block.len() {
            if block[i] == id {
                let p = pre.take().unwrap();
                let n_pre = p.len();
                block.splice(i..i, p);
                if let Some(po) = post.take() {
                    let at = i + n_pre + 1;
                    block.splice(at..at, po);
                }
                return true;
            }
            let s = block[i];
            let mut kind = std::mem::replace(&mut stmts[s], StmtKind::Nop);
            let mut hit = false;
            for b in kind.blocks_mut() {
                if walk(stmts, b, id, pre, post) {
                    hit = true;
                    break;
                }
            }
            stmts[s] = kind;
            if hit {
                return true;
            }
        }
        false
    }
    let mut body = std::mem::take(&mut proc.body);
    walk(&mut proc.stmts, &mut body, id, &mut Some(pre), &mut post);
    proc.body = body;
}
