//! Lowering tests: the §4/§5.3 shapes.

use crate::compile_to_il;
use titanc_il::{
    pretty_expr_in, pretty_proc, BinOp, Expr, LValue, Procedure, Program, ScalarType, StmtKind,
};

fn lower_one(src: &str, name: &str) -> (Program, Procedure) {
    let prog = compile_to_il(src).expect("compile");
    let proc = prog.proc_by_name(name).expect("proc").clone();
    (prog, proc)
}

/// Collect every statement kind (flattened) of a procedure.
fn flat(proc: &Procedure) -> Vec<StmtKind> {
    let mut v = Vec::new();
    proc.for_each_stmt(&mut |_, k| v.push(k.clone()));
    v
}

#[test]
fn pointer_walk_produces_the_5_3_shape() {
    // §5.3: while(n) { *a++ = *b++; n--; } becomes
    //   temp_1 = a; a = temp_1 + 4; temp_2 = b; b = temp_2 + 4;
    //   *temp_1 = *temp_2; temp_3 = n; n = temp_3 - 1;
    let (_p, proc) = lower_one(
        "void copy(float *a, float *b, int n) { while (n) { *a++ = *b++; n--; } }",
        "copy",
    );
    let text = pretty_proc(&proc);
    assert!(text.contains("while ("), "{text}");
    // pointer increments scaled by sizeof(float) = 4
    assert!(text.contains("+ 4"), "{text}");
    // the star assignment goes through the temporaries
    let body_stmts = flat(&proc);
    let star_assigns: Vec<_> = body_stmts
        .iter()
        .filter(|k| {
            matches!(
                k,
                StmtKind::Assign {
                    lhs: LValue::Deref { .. },
                    ..
                }
            )
        })
        .collect();
    assert_eq!(star_assigns.len(), 1, "{text}");
}

#[test]
fn while_condition_side_effects_are_duplicated() {
    // §4: while((SL,E)) => SL; while(E) { body; SL }
    let (_p, proc) = lower_one("void f(int n) { while (n--) { ; } }", "f");
    // n-- lowers to temp=n; n=temp-1 — must appear both before the loop and
    // at the end of the body.
    let pre_loop: Vec<_> = proc
        .body
        .iter()
        .take_while(|&&s| !matches!(proc.stmts[s], StmtKind::While { .. }))
        .collect();
    assert!(pre_loop.len() >= 2, "SL emitted before loop");
    let w = proc
        .body
        .iter()
        .find(|&&s| matches!(proc.stmts[s], StmtKind::While { .. }))
        .unwrap();
    if let StmtKind::While { body, .. } = &proc.stmts[*w] {
        assert!(body.len() >= 2, "SL duplicated at the end of the body");
    }
}

#[test]
fn chained_assignment_writes_volatile_once() {
    // §4: a = v = b with v volatile — v is written once and never read.
    let src = "volatile int v; void f(int a, int b) { a = v = b; }";
    let (_p, proc) = lower_one(src, "f");
    let stmts = flat(&proc);
    let mut volatile_stores = 0;
    let mut volatile_loads = 0;
    for k in &stmts {
        if let StmtKind::Assign { lhs, rhs } = k {
            if lhs.is_volatile() {
                volatile_stores += 1;
            }
            if proc.exprs.has_volatile_load(*rhs) {
                volatile_loads += 1;
            }
        }
    }
    assert_eq!(volatile_stores, 1, "volatile written exactly once");
    assert_eq!(volatile_loads, 0, "volatile never read back");
}

#[test]
fn volatile_poll_loop_reads_every_iteration() {
    let src = "volatile int keyboard_status; void f(void) { keyboard_status = 0; while (!keyboard_status); }";
    let (_p, proc) = lower_one(src, "f");
    let w = proc
        .body
        .iter()
        .find(|&&s| matches!(proc.stmts[s], StmtKind::While { .. }))
        .expect("loop");
    if let StmtKind::While { cond, .. } = &proc.stmts[*w] {
        assert!(
            proc.exprs.has_volatile_load(*cond),
            "condition must re-read the register"
        );
    }
}

#[test]
fn logical_and_short_circuits() {
    let (_p, proc) = lower_one("int f(int a, int b) { return a && b / a; }", "f");
    // the division must be guarded by an If
    let has_guarded_div = proc.any_stmt(|_, k| {
        if let StmtKind::If { then_blk, .. } = k {
            then_blk.iter().any(|&inner| {
                proc.stmts[inner]
                    .exprs()
                    .iter()
                    .any(|&e| pretty_expr_in(&proc.exprs, e).contains('/'))
            })
        } else {
            false
        }
    });
    assert!(has_guarded_div, "{}", pretty_proc(&proc));
}

#[test]
fn conditional_expression_uses_temp() {
    let (_p, proc) = lower_one("int f(int a, int b) { return a ? b : 3; }", "f");
    let text = pretty_proc(&proc);
    assert!(text.contains("if ("), "{text}");
    assert!(text.contains("temp_"), "{text}");
}

#[test]
fn for_becomes_while() {
    let (_p, proc) = lower_one(
        "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = 0; }",
        "f",
    );
    assert!(
        proc.any_stmt(|_, k| matches!(k, StmtKind::While { .. })),
        "for loops lower to while loops"
    );
    assert!(
        !proc.any_stmt(|_, k| matches!(k, StmtKind::DoLoop { .. })),
        "DO recognition happens in the optimizer, not the front end"
    );
}

#[test]
fn subscript_scales_by_element_size() {
    let (_p, proc) = lower_one("void f(double *a, int i) { a[i] = 1.0; }", "f");
    let text = pretty_proc(&proc);
    assert!(text.contains("* 8"), "double subscript scales by 8: {text}");
}

#[test]
fn pointer_difference_divides_by_size() {
    let (_p, proc) = lower_one("int f(float *a, float *b) { return a - b; }", "f");
    let text = pretty_proc(&proc);
    assert!(text.contains("/ 4"), "{text}");
}

#[test]
fn compound_assignment_pins_address() {
    let (_p, proc) = lower_one("void f(float *a, int i) { a[i] += 1.0f; }", "f");
    // the address a+4*i must be computed once into a pointer temp
    let stmts = flat(&proc);
    let ptr_temp_assigns = stmts
        .iter()
        .filter(|k| {
            matches!(k, StmtKind::Assign { lhs: LValue::Var(v), .. }
                if proc.var(*v).ty == titanc_il::Type::ptr_to(titanc_il::Type::Void))
        })
        .count();
    assert_eq!(ptr_temp_assigns, 1, "{}", pretty_proc(&proc));
}

#[test]
fn postfix_incdec_value_is_old() {
    let (_p, proc) = lower_one("int f(int n) { int m; m = n++; return m; }", "f");
    let text = pretty_proc(&proc);
    // m receives the temporary holding the old value
    assert!(text.contains("temp_0 = n"), "{text}");
    assert!(text.contains("n = (temp_0 + 1)"), "{text}");
    assert!(text.contains("m = temp_0"), "{text}");
}

#[test]
fn prefix_incdec_value_is_new() {
    let (_p, proc) = lower_one("int f(int n) { int m; m = ++n; return m; }", "f");
    let text = pretty_proc(&proc);
    assert!(text.contains("n = (n + 1)"), "{text}");
    assert!(text.contains("m = n"), "{text}");
}

#[test]
fn call_results_go_through_temps() {
    let src = "float g(float x); float f(float x) { return g(x) + g(x + 1.0f); }";
    let (_p, proc) = lower_one(src, "f");
    let stmts = flat(&proc);
    let calls = stmts
        .iter()
        .filter(|k| matches!(k, StmtKind::Call { .. }))
        .count();
    assert_eq!(calls, 2);
    // both calls assign to temporaries
    for k in &stmts {
        if let StmtKind::Call { dst, .. } = k {
            assert!(matches!(dst, Some(LValue::Var(_))));
        }
    }
}

#[test]
fn struct_member_offsets() {
    let src = r#"
struct pt { float x; float y; float z; };
float f(struct pt *p) { return p->z; }
"#;
    let (_prog, proc) = lower_one(src, "f");
    let text = pretty_proc(&proc);
    assert!(text.contains("+ 8"), "z is at offset 8: {text}");
}

#[test]
fn struct_embedded_array_addressing() {
    // The §10 Doré lesson: arrays embedded within structures.
    let src = r#"
struct matrix { float m[4][4]; };
float f(struct matrix *t, int i, int j) { return t->m[i][j]; }
"#;
    let (_prog, proc) = lower_one(src, "f");
    let text = pretty_proc(&proc);
    assert!(text.contains("* 16"), "row stride 16 bytes: {text}");
    assert!(text.contains("* 4"), "column stride 4 bytes: {text}");
}

#[test]
fn break_and_continue_lower_to_gotos() {
    let src = "void f(int n) { while (n) { if (n == 3) break; if (n == 4) continue; n--; } }";
    let (_p, proc) = lower_one(src, "f");
    let stmts = flat(&proc);
    assert!(stmts.iter().any(|k| matches!(k, StmtKind::Goto(_))));
    assert!(stmts.iter().any(|k| matches!(k, StmtKind::Label(_))));
}

#[test]
fn do_while_executes_body_first() {
    let (_p, proc) = lower_one("void f(int n) { do { n--; } while (n); }", "f");
    // shape: Label; body; IfGoto
    assert!(matches!(proc.stmts[proc.body[0]], StmtKind::Label(_)));
    assert!(proc
        .body
        .iter()
        .any(|&s| matches!(proc.stmts[s], StmtKind::IfGoto { .. })));
}

#[test]
fn comma_keeps_volatile_reads() {
    let src = "volatile int status; int f(int x) { return (status, x); }";
    let (_p, proc) = lower_one(src, "f");
    let stmts = flat(&proc);
    let keeps = stmts
        .iter()
        .any(|k| matches!(k, StmtKind::Assign { rhs, .. } if proc.exprs.has_volatile_load(*rhs)));
    assert!(keeps, "volatile read in discarded comma operand is kept");
}

#[test]
fn comma_drops_pure_reads() {
    let src = "int f(int x, int y) { return (x, y); }";
    let (_p, proc) = lower_one(src, "f");
    // nothing but the return
    assert_eq!(proc.body.len(), 1, "{}", pretty_proc(&proc));
}

#[test]
fn sizeof_is_constant() {
    let (_p, proc) = lower_one("int f(void) { return sizeof(double); }", "f");
    match &proc.stmts[proc.body[0]] {
        StmtKind::Return(Some(e)) if matches!(proc.exprs[*e], Expr::IntConst(8)) => {}
        other => panic!("expected constant 8, got {other:?}"),
    }
}

#[test]
fn global_initializers_recorded() {
    let prog = compile_to_il("float alpha = 2.5; int n = -3;").unwrap();
    let a = prog.global_by_name("alpha").unwrap();
    assert_eq!(a.init, Some(titanc_il::ConstInit::Float(2.5)));
    let n = prog.global_by_name("n").unwrap();
    assert_eq!(n.init, Some(titanc_il::ConstInit::Int(-3)));
}

#[test]
fn static_local_becomes_static_storage() {
    let (_p, proc) = lower_one(
        "int counter(void) { static int count = 0; count++; return count; }",
        "counter",
    );
    let v = proc.var_by_name("count").unwrap();
    assert_eq!(proc.var(v).storage, titanc_il::Storage::Static);
    assert_eq!(proc.var(v).init, Some(titanc_il::ConstInit::Int(0)));
}

#[test]
fn float_condition_compares_to_zero() {
    let (_p, proc) = lower_one("void f(float x) { if (x) x = 1.0f; }", "f");
    let w = proc
        .body
        .iter()
        .find(|&&s| matches!(proc.stmts[s], StmtKind::If { .. }))
        .unwrap();
    if let StmtKind::If { cond, .. } = &proc.stmts[*w] {
        match proc.exprs[*cond] {
            Expr::Binary {
                op: BinOp::Ne, ty, ..
            } => assert_eq!(ty, ScalarType::Float),
            other => panic!("expected != 0.0 comparison, got {other:?}"),
        }
    }
}

#[test]
fn argument_conversions_follow_prototype() {
    let src = "void g(double d); void f(int x) { g(x); }";
    let (_p, proc) = lower_one(src, "f");
    let stmts = flat(&proc);
    let call = stmts
        .iter()
        .find(|k| matches!(k, StmtKind::Call { .. }))
        .unwrap();
    if let StmtKind::Call { args, .. } = call {
        assert!(matches!(
            proc.exprs[args[0]],
            Expr::Cast {
                to: ScalarType::Double,
                ..
            }
        ));
    }
}

#[test]
fn pragma_safe_marks_loop() {
    let src =
        "void f(float *a, float *b, int n) {\n#pragma safe\nwhile (n) { *a++ = *b++; n--; } }";
    let (_p, proc) = lower_one(src, "f");
    let w = proc
        .body
        .iter()
        .find(|&&s| matches!(proc.stmts[s], StmtKind::While { .. }))
        .unwrap();
    assert!(matches!(proc.stmts[*w], StmtKind::While { safe: true, .. }));
}

#[test]
fn undeclared_identifier_is_an_error() {
    let err = compile_to_il("void f(void) { x = 1; }").unwrap_err();
    assert!(err.contains("undeclared"), "{err}");
}

#[test]
fn address_of_marks_variable_addressed() {
    let (_p, proc) = lower_one("void f(void) { int x; int *p; p = &x; *p = 2; }", "f");
    let x = proc.var_by_name("x").unwrap();
    assert!(proc.var(x).addressed);
}

#[test]
fn backsolve_lowers() {
    // §6's example, used by EXP2.
    let src = r#"
void backsolve(float *x, float *y, float *z, int n)
{
    float *p, *q;
    int i;
    p = &x[1];
    q = &x[0];
    for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
}
"#;
    let (_p, proc) = lower_one(src, "backsolve");
    let text = pretty_proc(&proc);
    assert!(text.contains("while ("), "{text}");
    assert!(text.contains("p = "), "{text}");
}

#[test]
fn daxpy_main_lowers() {
    // The §9 driving example.
    let src = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n);
int main(void)
{
    float a[100], b[100], c[100];
    daxpy(a, b, c, 1.0, 100);
    return 0;
}
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}
"#;
    let prog = compile_to_il(src).unwrap();
    assert_eq!(prog.procs.len(), 2);
    let main = prog.proc_by_name("main").unwrap();
    let call = {
        let mut found = None;
        main.for_each_stmt(&mut |_, k| {
            if let StmtKind::Call { callee, args, .. } = k {
                found = Some((callee.clone(), args.len()));
            }
        });
        found.unwrap()
    };
    assert_eq!(call, ("daxpy".to_string(), 5));
}

#[test]
fn switch_lowers_to_dispatch_chain() {
    let src = r#"
int f(int x)
{
    int r;
    r = 0;
    switch (x) {
    case 1:
        r = 10;
        break;
    case 2:
        r = 20;
        /* fallthrough */
    case 3:
        r = r + 1;
        break;
    default:
        r = -1;
    }
    return r;
}
"#;
    let (_p, proc) = lower_one(src, "f");
    let stmts = flat(&proc);
    let ifgotos = stmts
        .iter()
        .filter(|k| matches!(k, StmtKind::IfGoto { .. }))
        .count();
    assert_eq!(ifgotos, 3, "one dispatch branch per case");
    let labels = stmts
        .iter()
        .filter(|k| matches!(k, StmtKind::Label(_)))
        .count();
    assert!(labels >= 5, "case + default + end labels");
}

#[test]
fn switch_executes_with_fallthrough() {
    let src = r#"
int pick(int x)
{
    int r;
    r = 0;
    switch (x) {
    case 1:
        r = 10;
        break;
    case 2:
        r = 20;
    case 3:
        r = r + 1;
        break;
    default:
        r = -1;
    }
    return r;
}
int out_g[5];
int main(void)
{
    out_g[0] = pick(1);
    out_g[1] = pick(2);
    out_g[2] = pick(3);
    out_g[3] = pick(99);
    return 0;
}
"#;
    let prog = compile_to_il(src).unwrap();
    let (obs, _) = titanc_titan::observe(
        &prog,
        titanc_titan::MachineConfig::default(),
        "main",
        &[("out_g", ScalarType::Int, 4)],
    )
    .unwrap();
    use titanc_il::fold::Value;
    assert_eq!(
        obs.globals[0].1,
        vec![
            Value::Int(10),
            Value::Int(21),
            Value::Int(1),
            Value::Int(-1)
        ]
    );
}

#[test]
fn continue_inside_switch_targets_enclosing_loop() {
    let src = r#"
int f(int n)
{
    int i, s;
    s = 0;
    for (i = 0; i < n; i++) {
        switch (i) {
        case 2:
            continue;
        default:
            ;
        }
        s = s + 1;
    }
    return s;
}
int main(void) { return f(5); }
"#;
    let prog = compile_to_il(src).unwrap();
    let mut sim = titanc_titan::Simulator::new(&prog, titanc_titan::MachineConfig::default());
    let r = sim.run("main", &[]).unwrap();
    assert_eq!(r.value.unwrap().as_int(), 4, "i == 2 skipped");
}

#[test]
fn switch_without_default_falls_through_to_end() {
    let src = r#"
int f(int x) { int r; r = 7; switch (x) { case 1: r = 1; break; } return r; }
int main(void) { return f(5) * 10 + f(1); }
"#;
    let prog = compile_to_il(src).unwrap();
    let mut sim = titanc_titan::Simulator::new(&prog, titanc_titan::MachineConfig::default());
    let r = sim.run("main", &[]).unwrap();
    assert_eq!(r.value.unwrap().as_int(), 71);
}
