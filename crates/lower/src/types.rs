//! C-type ↔ IL-type conversion, struct layout, usual arithmetic
//! conversions, and the translation-unit environment.

use crate::LowerError;
use std::collections::HashMap;
use titanc_cfront::ast::{self, CType, QualType};
use titanc_cfront::Span;
use titanc_il::{ConstInit, ScalarType, StructDef, StructId, Type};

/// A callable signature known to the translation unit.
#[derive(Clone, PartialEq, Debug)]
pub struct Signature {
    /// Return type.
    pub ret: QualType,
    /// Parameter types (arrays already adjusted to pointers).
    pub params: Vec<QualType>,
}

/// Translation-unit environment: struct tags, globals, signatures.
#[derive(Default, Debug)]
pub struct Env {
    /// Struct tag → id.
    pub structs: HashMap<String, StructId>,
    /// Layouts, indexed by [`StructId`].
    pub struct_defs: Vec<StructDef>,
    /// Global name → declared type.
    pub globals: HashMap<String, QualType>,
    /// Function name → signature.
    pub signatures: HashMap<String, Signature>,
}

impl Env {
    /// Records a function signature.
    pub fn add_signature(&mut self, name: &str, ret: &QualType, params: &[ast::Param]) {
        self.signatures.insert(
            name.to_string(),
            Signature {
                ret: ret.clone(),
                params: params.iter().map(|p| p.ty.clone()).collect(),
            },
        );
    }

    /// Looks up a struct layout by id.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.struct_defs[id.index()]
    }
}

/// Converts an AST type to an IL type plus the top-level volatile flag.
pub fn cvt_qualtype(env: &Env, q: &QualType, span: Span) -> Result<(Type, bool), LowerError> {
    Ok((cvt_ctype(env, &q.ty, span)?, q.volatile))
}

fn cvt_ctype(env: &Env, t: &CType, span: Span) -> Result<Type, LowerError> {
    Ok(match t {
        CType::Void => Type::Void,
        CType::Char => Type::Char,
        CType::Int => Type::Int,
        CType::Float => Type::Float,
        CType::Double => Type::Double,
        CType::Ptr(inner) => Type::ptr_to(cvt_ctype(env, &inner.ty, span)?),
        CType::Array(inner, n) => {
            let len =
                n.ok_or_else(|| LowerError::new("array declaration requires a length here", span))?;
            Type::array_of(cvt_ctype(env, &inner.ty, span)?, len)
        }
        CType::Struct(name) => {
            let id = env
                .structs
                .get(name)
                .ok_or_else(|| LowerError::new(format!("unknown struct `{name}`"), span))?;
            Type::Struct(*id)
        }
    })
}

/// Size of an IL type in bytes given the environment's struct layouts.
pub fn type_size(env: &Env, ty: &Type) -> i64 {
    ty.size_with(&|sid| env.struct_def(sid).size)
}

/// Alignment of an IL type (the Titan aligns to the largest scalar member;
/// doubles to 8, everything else to its own size).
pub fn type_align(env: &Env, ty: &Type) -> i64 {
    match ty {
        Type::Void => 1,
        Type::Char => 1,
        Type::Int | Type::Float | Type::Ptr(_) => 4,
        Type::Double => 8,
        Type::Array(t, _) => type_align(env, t),
        Type::Struct(sid) => env
            .struct_def(*sid)
            .fields
            .iter()
            .map(|f| type_align(env, &f.ty))
            .max()
            .unwrap_or(1),
    }
}

/// Computes the layout of a struct declaration.
pub fn layout_struct(env: &mut Env, sd: &ast::StructDecl) -> Result<StructDef, LowerError> {
    let mut offset: i64 = 0;
    let mut max_align: i64 = 1;
    let mut fields = Vec::new();
    for (name, q) in &sd.fields {
        let (ty, _vol) = cvt_qualtype(env, q, sd.span)?;
        let align = type_align(env, &ty);
        let size = type_size(env, &ty);
        offset = (offset + align - 1) / align * align;
        fields.push(titanc_il::Field {
            name: name.clone(),
            ty,
            offset,
        });
        offset += size;
        max_align = max_align.max(align);
    }
    let size = (offset + max_align - 1) / max_align * max_align;
    Ok(StructDef {
        name: sd.name.clone(),
        fields,
        size,
    })
}

/// Evaluates a constant global initializer.
pub fn const_init(e: &ast::Expr) -> Result<ConstInit, LowerError> {
    match &e.kind {
        ast::ExprKind::IntLit(v) | ast::ExprKind::CharLit(v) => Ok(ConstInit::Int(*v)),
        ast::ExprKind::FloatLit(v, _) => Ok(ConstInit::Float(*v)),
        ast::ExprKind::Unary(ast::CUnOp::Neg, inner) => match const_init(inner)? {
            ConstInit::Int(v) => Ok(ConstInit::Int(-v)),
            ConstInit::Float(v) => Ok(ConstInit::Float(-v)),
        },
        _ => Err(LowerError::new(
            "global initializers must be constants",
            e.span,
        )),
    }
}

/// The usual arithmetic conversions: the common kind for a binary
/// operation over two scalar kinds.
pub fn common_kind(a: ScalarType, b: ScalarType) -> ScalarType {
    use ScalarType::*;
    if a == Double || b == Double {
        Double
    } else if a == Float || b == Float {
        Float
    } else if a == Ptr || b == Ptr {
        Ptr
    } else {
        Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_kind_promotions() {
        use ScalarType::*;
        assert_eq!(common_kind(Int, Double), Double);
        assert_eq!(common_kind(Float, Int), Float);
        assert_eq!(common_kind(Char, Char), Int);
        assert_eq!(common_kind(Ptr, Int), Ptr);
        assert_eq!(common_kind(Float, Double), Double);
    }

    #[test]
    fn struct_layout_aligns_doubles() {
        let mut env = Env::default();
        let sd = ast::StructDecl {
            name: "s".into(),
            fields: vec![
                ("c".into(), QualType::plain(CType::Char)),
                ("d".into(), QualType::plain(CType::Double)),
                ("i".into(), QualType::plain(CType::Int)),
            ],
            span: Span::default(),
        };
        let def = layout_struct(&mut env, &sd).unwrap();
        assert_eq!(def.fields[0].offset, 0);
        assert_eq!(def.fields[1].offset, 8);
        assert_eq!(def.fields[2].offset, 16);
        assert_eq!(def.size, 24); // rounded to 8
    }

    #[test]
    fn struct_layout_embedded_array() {
        let mut env = Env::default();
        let sd = ast::StructDecl {
            name: "matrix".into(),
            fields: vec![
                (
                    "m".into(),
                    QualType::plain(CType::Array(
                        Box::new(QualType::plain(CType::Array(
                            Box::new(QualType::plain(CType::Float)),
                            Some(4),
                        ))),
                        Some(4),
                    )),
                ),
                ("tag".into(), QualType::plain(CType::Int)),
            ],
            span: Span::default(),
        };
        let def = layout_struct(&mut env, &sd).unwrap();
        assert_eq!(def.fields[1].offset, 64);
        assert_eq!(def.size, 68);
    }

    #[test]
    fn const_init_eval() {
        let e = titanc_cfront::parse_expr("-3").unwrap();
        assert_eq!(const_init(&e).unwrap(), ConstInit::Int(-3));
        let f = titanc_cfront::parse_expr("2.5").unwrap();
        assert_eq!(const_init(&f).unwrap(), ConstInit::Float(2.5));
        let bad = titanc_cfront::parse_expr("x + 1").unwrap();
        assert!(const_init(&bad).is_err());
    }
}
