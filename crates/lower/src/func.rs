//! Lowering of one function body.
//!
//! The central convention (§4): lowering an expression *emits* the
//! statement list SL into the current block and *returns* the pure IL
//! expression E. Contexts that need C's value semantics (embedded
//! assignment, `++` as a value, calls as values) introduce temporaries,
//! trusting the Titan's global register allocation to make them free.
//!
//! Expression nodes are allocated directly into the procedure's
//! [`titanc_il::ExprPool`] as lowering proceeds — a [`TV`] carries an
//! `ExprId`, never an owned tree. Children are allocated before their
//! parents, so every procedure leaves lowering with its pool in
//! bottom-up (postorder) layout.

use crate::types::{common_kind, cvt_qualtype, type_size, Env};
use crate::LowerError;
use std::collections::HashMap;
use titanc_cfront::ast::{self, CBinOp, CType, CUnOp, ExprKind, QualType};
use titanc_cfront::Span;
use titanc_il::{
    BinOp, Block, Expr, ExprId, LValue, LabelId, Procedure, ScalarType, SrcSpan, StmtKind, Storage,
    Type, UnOp, VarId, VarInfo,
};

/// Maps a front-end span onto the IL's source-position type.
fn src_span(s: Span) -> SrcSpan {
    SrcSpan::new(s.line, s.col)
}

/// Lowers one function definition to an IL procedure.
pub fn lower_function(env: &Env, f: &ast::FuncDef) -> Result<Procedure, LowerError> {
    let (ret, _vol) = cvt_qualtype(env, &f.ret, f.span)?;
    let mut lw = FuncLowerer {
        env,
        proc: Procedure::new(&f.name, ret),
        scopes: vec![HashMap::new()],
        ctypes: HashMap::new(),
        global_imports: HashMap::new(),
        user_labels: HashMap::new(),
        loops: Vec::new(),
        pending_safe: false,
    };
    for (i, p) in f.params.iter().enumerate() {
        let name = p
            .name
            .clone()
            .ok_or_else(|| LowerError::new(format!("parameter {i} needs a name"), f.span))?;
        let (ty, _vol) = cvt_qualtype(env, &p.ty, f.span)?;
        if ty.scalar().is_none() {
            return Err(LowerError::new(
                format!("parameter `{name}` must be scalar (structs pass by pointer)"),
                f.span,
            ));
        }
        let id = lw.proc.add_var(VarInfo {
            name: name.clone(),
            ty,
            storage: Storage::Param,
            volatile: false,
            addressed: false,
            init: None,
        });
        lw.proc.params.push(id);
        lw.scopes.last_mut().unwrap().insert(name, id);
        lw.ctypes.insert(id, p.ty.clone());
    }
    let mut out = Vec::new();
    for s in &f.body {
        lw.stmt(s, &mut out)?;
    }
    lw.proc.body = out;
    Ok(lw.proc)
}

/// A typed rvalue: the E of an (SL, E) pair plus its C type.
#[derive(Clone, Debug)]
struct TV {
    e: ExprId,
    ty: QualType,
}

/// An lvalue: where a store goes.
#[derive(Clone, Copy, Debug)]
enum Place {
    Var(VarId),
    Mem {
        addr: ExprId,
        kind: ScalarType,
        volatile: bool,
    },
}

struct LoopCtx {
    break_l: LabelId,
    /// `None` inside a `switch`: `continue` binds to the enclosing loop.
    cont_l: Option<LabelId>,
    break_used: bool,
    cont_used: bool,
}

struct FuncLowerer<'e> {
    env: &'e Env,
    proc: Procedure,
    scopes: Vec<HashMap<String, VarId>>,
    ctypes: HashMap<VarId, QualType>,
    global_imports: HashMap<String, VarId>,
    user_labels: HashMap<String, LabelId>,
    loops: Vec<LoopCtx>,
    pending_safe: bool,
}

/// The scalar register kind of a C type; arrays decay to pointers.
fn scalar_kind(q: &QualType) -> Option<ScalarType> {
    match &q.ty {
        CType::Char => Some(ScalarType::Char),
        CType::Int => Some(ScalarType::Int),
        CType::Float => Some(ScalarType::Float),
        CType::Double => Some(ScalarType::Double),
        CType::Ptr(_) | CType::Array(..) => Some(ScalarType::Ptr),
        CType::Void | CType::Struct(_) => None,
    }
}

fn pointee(q: &QualType) -> Option<&QualType> {
    match &q.ty {
        CType::Ptr(inner) | CType::Array(inner, _) => Some(inner),
        _ => None,
    }
}

fn int_ty() -> QualType {
    QualType::plain(CType::Int)
}

impl<'e> FuncLowerer<'e> {
    fn err(&self, msg: impl Into<String>, span: Span) -> LowerError {
        LowerError::new(msg, span)
    }

    fn emit(&mut self, out: &mut Block, kind: StmtKind) {
        let s = self.proc.stamp(kind);
        out.push(s);
    }

    /// Emits a statement anchored to its source position. Loops, calls
    /// and branches are anchored so the optimizer's per-loop decision
    /// events can be reported over the source.
    fn emit_at(&mut self, out: &mut Block, kind: StmtKind, span: Span) {
        let s = self.proc.stamp_at(kind, src_span(span));
        out.push(s);
    }

    fn temp(&mut self, kind: ScalarType) -> VarId {
        let ty = match kind {
            ScalarType::Char => Type::Char,
            ScalarType::Int => Type::Int,
            ScalarType::Float => Type::Float,
            ScalarType::Double => Type::Double,
            ScalarType::Ptr => Type::ptr_to(Type::Void),
        };
        self.proc.fresh_temp(ty)
    }

    fn lookup(&mut self, name: &str, span: Span) -> Result<VarId, LowerError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        if let Some(v) = self.global_imports.get(name) {
            return Ok(*v);
        }
        if let Some(q) = self.env.globals.get(name).cloned() {
            let (ty, volatile) = cvt_qualtype(self.env, &q, span)?;
            let id = self.proc.add_var(VarInfo {
                name: name.to_string(),
                ty,
                storage: Storage::Global,
                volatile,
                addressed: true,
                init: None,
            });
            self.global_imports.insert(name.to_string(), id);
            self.ctypes.insert(id, q);
            return Ok(id);
        }
        Err(self.err(format!("undeclared identifier `{name}`"), span))
    }

    fn ctype_of(&self, v: VarId) -> QualType {
        self.ctypes
            .get(&v)
            .cloned()
            .unwrap_or_else(|| QualType::plain(CType::Int))
    }

    fn size_of_ctype(&self, q: &QualType, span: Span) -> Result<i64, LowerError> {
        let (ty, _) = cvt_qualtype(self.env, q, span)?;
        Ok(type_size(self.env, &ty))
    }

    fn user_label(&mut self, name: &str) -> LabelId {
        if let Some(l) = self.user_labels.get(name) {
            return *l;
        }
        let l = self.proc.fresh_label();
        self.user_labels.insert(name.to_string(), l);
        l
    }

    /// Converts an rvalue to a target scalar kind.
    fn convert(&mut self, tv: TV, to: ScalarType, span: Span) -> Result<ExprId, LowerError> {
        let from = scalar_kind(&tv.ty).ok_or_else(|| self.err("expected a scalar value", span))?;
        Ok(self.proc.exprs.cast(to, from, tv.e))
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn stmt(&mut self, s: &ast::Stmt, out: &mut Block) -> Result<(), LowerError> {
        let was_safe = self.pending_safe;
        self.pending_safe = false;
        match s {
            ast::Stmt::PragmaSafe => {
                self.pending_safe = true;
            }
            ast::Stmt::Empty => {}
            ast::Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for inner in stmts {
                    self.stmt(inner, out)?;
                }
                self.scopes.pop();
            }
            ast::Stmt::Decl(ds) => {
                for d in ds {
                    self.decl(d, out)?;
                }
            }
            ast::Stmt::Expr(e) => self.expr_discard(e, out)?,
            ast::Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = self.rvalue(cond, out)?;
                let ce = self.truth(c, cond.span)?;
                let mut then_blk = Vec::new();
                self.stmt(then_s, &mut then_blk)?;
                let mut else_blk = Vec::new();
                if let Some(es) = else_s {
                    self.stmt(es, &mut else_blk)?;
                }
                self.emit_at(
                    out,
                    StmtKind::If {
                        cond: ce,
                        then_blk,
                        else_blk,
                    },
                    cond.span,
                );
            }
            ast::Stmt::While { cond, body } => {
                self.lower_while(cond, None, body, was_safe, out)?;
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.expr_discard(i, out)?;
                }
                // `for (;;)` has no condition to anchor the loop to; fall
                // back to the init or step expression's position
                let head_span = cond
                    .as_ref()
                    .map(|c| c.span)
                    .or_else(|| init.as_ref().map(|i| i.span))
                    .or_else(|| step.as_ref().map(|s| s.span))
                    .unwrap_or_default();
                let one = ast::Expr::new(ExprKind::IntLit(1), head_span);
                let cond_e = cond.as_ref().unwrap_or(&one);
                self.lower_while(cond_e, step.as_ref(), body, was_safe, out)?;
            }
            ast::Stmt::DoWhile { body, cond } => {
                let top = self.proc.fresh_label();
                let break_l = self.proc.fresh_label();
                let cont_l = self.proc.fresh_label();
                self.emit(out, StmtKind::Label(top));
                self.loops.push(LoopCtx {
                    break_l,
                    cont_l: Some(cont_l),
                    break_used: false,
                    cont_used: false,
                });
                let mut blk = Vec::new();
                self.stmt(body, &mut blk)?;
                let ctx = self.loops.pop().unwrap();
                out.extend(blk);
                if ctx.cont_used {
                    self.emit(out, StmtKind::Label(cont_l));
                }
                let c = self.rvalue(cond, out)?;
                let ce = self.truth(c, cond.span)?;
                self.emit(
                    out,
                    StmtKind::IfGoto {
                        cond: ce,
                        target: top,
                    },
                );
                if ctx.break_used {
                    self.emit(out, StmtKind::Label(break_l));
                }
            }
            ast::Stmt::Return(v) => {
                let value = match v {
                    None => None,
                    Some(e) => {
                        let tv = self.rvalue(e, out)?;
                        let to = self.proc.ret.scalar().ok_or_else(|| {
                            self.err("returning a value from void function", e.span)
                        })?;
                        Some(self.convert(tv, to, e.span)?)
                    }
                };
                self.emit(out, StmtKind::Return(value));
            }
            ast::Stmt::Break => {
                let l = match self.loops.last_mut() {
                    Some(ctx) => {
                        ctx.break_used = true;
                        ctx.break_l
                    }
                    None => return Err(self.err("break outside a loop", Span::default())),
                };
                self.emit(out, StmtKind::Goto(l));
            }
            ast::Stmt::Continue => {
                // `continue` binds to the nearest enclosing *loop*,
                // skipping switches
                let l = match self.loops.iter_mut().rev().find(|ctx| ctx.cont_l.is_some()) {
                    Some(ctx) => {
                        ctx.cont_used = true;
                        ctx.cont_l.unwrap()
                    }
                    None => return Err(self.err("continue outside a loop", Span::default())),
                };
                self.emit(out, StmtKind::Goto(l));
            }
            ast::Stmt::Goto(name) => {
                let l = self.user_label(name);
                self.emit(out, StmtKind::Goto(l));
            }
            ast::Stmt::Switch { cond, body } => self.lower_switch(cond, body, out)?,
            ast::Stmt::Case(_) | ast::Stmt::Default => {
                return Err(self.err(
                    "case/default outside the immediate switch body",
                    Span::default(),
                ));
            }
            ast::Stmt::Label(name, inner) => {
                let l = self.user_label(name);
                self.emit(out, StmtKind::Label(l));
                self.stmt(inner, out)?;
            }
        }
        Ok(())
    }

    /// Lowers `while (cond) body` (and `for`, which passes its step).
    ///
    /// Per §4, the cond's statement list SL is emitted once before the loop
    /// and duplicated at the end of the body:
    /// `SL; while (E) { body; [cont:] step; SL' }`.
    fn lower_while(
        &mut self,
        cond: &ast::Expr,
        step: Option<&ast::Expr>,
        body: &ast::Stmt,
        safe: bool,
        out: &mut Block,
    ) -> Result<(), LowerError> {
        let mut sl = Vec::new();
        let c = self.rvalue(cond, &mut sl)?;
        let ce = self.truth(c, cond.span)?;
        // the pre-loop copy keeps the statements as lowered; the bottom
        // duplicate gets fresh stamps and fresh expression slots so the
        // two copies never alias
        out.extend(sl.iter().copied());

        let break_l = self.proc.fresh_label();
        let cont_l = self.proc.fresh_label();
        self.loops.push(LoopCtx {
            break_l,
            cont_l: Some(cont_l),
            break_used: false,
            cont_used: false,
        });
        let mut blk = Vec::new();
        self.stmt(body, &mut blk)?;
        let ctx = self.loops.pop().unwrap();
        if ctx.cont_used {
            self.emit(&mut blk, StmtKind::Label(cont_l));
        }
        if let Some(st) = step {
            self.expr_discard(st, &mut blk)?;
        }
        // duplicate SL at the bottom of the body
        for &s in &sl {
            let dup = self.proc.clone_stmt(s);
            blk.push(dup);
        }
        self.emit_at(
            out,
            StmtKind::While {
                cond: ce,
                body: blk,
                safe,
            },
            cond.span,
        );
        if ctx.break_used {
            self.emit(out, StmtKind::Label(break_l));
        }
        Ok(())
    }

    /// Lowers `switch` to a dispatch chain of conditional branches into a
    /// label-marked body — fallthrough comes for free, `break` jumps to the
    /// end label.
    fn lower_switch(
        &mut self,
        cond: &ast::Expr,
        body: &[ast::Stmt],
        out: &mut Block,
    ) -> Result<(), LowerError> {
        let tv = self.rvalue(cond, out)?;
        let scrut = self.convert(tv, ScalarType::Int, cond.span)?;
        let t = self.temp(ScalarType::Int);
        self.emit(
            out,
            StmtKind::Assign {
                lhs: LValue::Var(t),
                rhs: scrut,
            },
        );
        // allocate labels for every case marker
        let mut case_labels: Vec<(i64, LabelId)> = Vec::new();
        let mut default_label: Option<LabelId> = None;
        for s in body {
            match s {
                ast::Stmt::Case(v) => case_labels.push((*v, self.proc.fresh_label())),
                ast::Stmt::Default => {
                    if default_label.is_some() {
                        return Err(self.err("duplicate default label", Span::default()));
                    }
                    default_label = Some(self.proc.fresh_label());
                }
                _ => {}
            }
        }
        let end_l = self.proc.fresh_label();
        self.loops.push(LoopCtx {
            break_l: end_l,
            cont_l: None,
            break_used: false,
            cont_used: false,
        });
        // dispatch chain
        for (v, l) in &case_labels {
            let tv = self.proc.exprs.var(t);
            let cv = self.proc.exprs.int(*v);
            let cond = self.proc.exprs.ibinary(BinOp::Eq, tv, cv);
            self.emit(out, StmtKind::IfGoto { cond, target: *l });
        }
        self.emit(out, StmtKind::Goto(default_label.unwrap_or(end_l)));
        // body with markers replaced by labels
        let mut next_case = 0usize;
        for s in body {
            match s {
                ast::Stmt::Case(_) => {
                    let (_, l) = case_labels[next_case];
                    next_case += 1;
                    self.emit(out, StmtKind::Label(l));
                }
                ast::Stmt::Default => {
                    self.emit(out, StmtKind::Label(default_label.unwrap()));
                }
                other => self.stmt(other, out)?,
            }
        }
        self.loops.pop();
        self.emit(out, StmtKind::Label(end_l));
        Ok(())
    }

    fn decl(&mut self, d: &ast::VarDecl, out: &mut Block) -> Result<(), LowerError> {
        let (ty, volatile) = cvt_qualtype(self.env, &d.ty, d.span)?;
        let is_static = d.storage == ast::StorageClass::Static;
        let storage = if is_static {
            Storage::Static
        } else {
            Storage::Auto
        };
        let addressed = ty.scalar().is_none() || volatile;
        let init_const = if is_static {
            match &d.init {
                None => None,
                Some(e) => Some(crate::types::const_init(e)?),
            }
        } else {
            None
        };
        let id = self.proc.add_var(VarInfo {
            name: d.name.clone(),
            ty,
            storage,
            volatile,
            addressed,
            init: init_const,
        });
        self.scopes.last_mut().unwrap().insert(d.name.clone(), id);
        self.ctypes.insert(id, d.ty.clone());
        if !is_static {
            if let Some(e) = &d.init {
                let tv = self.rvalue(e, out)?;
                let kind = scalar_kind(&self.ctype_of(id))
                    .ok_or_else(|| self.err("cannot initialize aggregates", d.span))?;
                let value = self.convert(tv, kind, d.span)?;
                let place = Place::for_var(self, id);
                self.store(place, value, out);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // places (lvalues)
    // ------------------------------------------------------------------

    fn place(&mut self, e: &ast::Expr, out: &mut Block) -> Result<(Place, QualType), LowerError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let v = self.lookup(name, e.span)?;
                let q = self.ctype_of(v);
                Ok((Place::for_var(self, v), q))
            }
            ExprKind::Unary(CUnOp::Deref, inner) => {
                let ptr = self.rvalue(inner, out)?;
                let pt = pointee(&ptr.ty)
                    .cloned()
                    .ok_or_else(|| self.err("dereferencing a non-pointer", e.span))?;
                let kind = scalar_kind(&pt)
                    .ok_or_else(|| self.err("dereferencing to a non-scalar", e.span))?;
                Ok((
                    Place::Mem {
                        addr: ptr.e,
                        kind,
                        volatile: pt.volatile,
                    },
                    pt,
                ))
            }
            ExprKind::Index(base, idx) => {
                let (addr, elem) = self.element_addr(base, idx, out, e.span)?;
                let kind = scalar_kind(&elem)
                    .ok_or_else(|| self.err("indexing to a non-scalar", e.span))?;
                Ok((
                    Place::Mem {
                        addr,
                        kind,
                        volatile: elem.volatile,
                    },
                    elem,
                ))
            }
            ExprKind::Member { base, field, arrow } => {
                let (addr, fty) = self.member_addr(base, field, *arrow, out, e.span)?;
                let kind = scalar_kind(&fty)
                    .ok_or_else(|| self.err("assigning to an aggregate field", e.span))?;
                Ok((
                    Place::Mem {
                        addr,
                        kind,
                        volatile: fty.volatile,
                    },
                    fty,
                ))
            }
            _ => Err(self.err("expression is not assignable", e.span)),
        }
    }

    /// The address of `base[idx]` and the element's type.
    fn element_addr(
        &mut self,
        base: &ast::Expr,
        idx: &ast::Expr,
        out: &mut Block,
        span: Span,
    ) -> Result<(ExprId, QualType), LowerError> {
        let b = self.rvalue(base, out)?;
        let elem = pointee(&b.ty)
            .cloned()
            .ok_or_else(|| self.err("indexing a non-array", span))?;
        let i = self.rvalue(idx, out)?;
        let i_e = self.convert(i, ScalarType::Int, span)?;
        let size = self.size_of_ctype(&elem, span)?;
        let size_e = self.proc.exprs.int(size);
        let scaled = self.proc.exprs.ibinary(BinOp::Mul, i_e, size_e);
        let addr = self
            .proc
            .exprs
            .binary(BinOp::Add, ScalarType::Ptr, b.e, scaled);
        Ok((addr, elem))
    }

    /// The address of `base.field` / `base->field` and the field's type.
    fn member_addr(
        &mut self,
        base: &ast::Expr,
        field: &str,
        arrow: bool,
        out: &mut Block,
        span: Span,
    ) -> Result<(ExprId, QualType), LowerError> {
        let (base_addr, sq) = if arrow {
            let p = self.rvalue(base, out)?;
            let pt = pointee(&p.ty)
                .cloned()
                .ok_or_else(|| self.err("`->` on a non-pointer", span))?;
            (p.e, pt)
        } else {
            let (pl, q) = self.place(base, out).or_else(|_| {
                // base may itself be a struct-valued member chain; handle
                // via struct rvalue = address
                let tv = self.rvalue(base, out)?;
                Ok::<_, LowerError>((
                    Place::Mem {
                        addr: tv.e,
                        kind: ScalarType::Ptr,
                        volatile: false,
                    },
                    tv.ty,
                ))
            })?;
            let addr = match pl {
                Place::Var(v) => {
                    self.proc.var_mut(v).addressed = true;
                    self.proc.exprs.addr_of(v)
                }
                Place::Mem { addr, .. } => addr,
            };
            (addr, q)
        };
        let tag = match &sq.ty {
            CType::Struct(tag) => tag.clone(),
            _ => return Err(self.err("member access on a non-struct", span)),
        };
        let sid = self
            .env
            .structs
            .get(&tag)
            .ok_or_else(|| self.err(format!("unknown struct `{tag}`"), span))?;
        let def = self.env.struct_def(*sid);
        let fld = def
            .field(field)
            .ok_or_else(|| self.err(format!("struct `{tag}` has no field `{field}`"), span))?;
        let offset = fld.offset;
        // recover the AST-level type of the field for further lowering
        let fq = self
            .field_qualtype(&tag, field)
            .ok_or_else(|| self.err("field type unavailable", span))?;
        let off_e = self.proc.exprs.int(offset);
        let addr = self
            .proc
            .exprs
            .binary(BinOp::Add, ScalarType::Ptr, base_addr, off_e);
        Ok((addr, fq))
    }

    fn field_qualtype(&self, tag: &str, field: &str) -> Option<QualType> {
        // Reconstruct from the IL field type (qualifiers are dropped on
        // fields in this subset).
        let sid = self.env.structs.get(tag)?;
        let def = self.env.struct_def(*sid);
        let f = def.field(field)?;
        Some(il_to_qualtype(self.env, &f.ty))
    }

    fn store(&mut self, place: Place, value: ExprId, out: &mut Block) {
        match place {
            Place::Var(v) => {
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Var(v),
                        rhs: value,
                    },
                );
            }
            Place::Mem {
                addr,
                kind,
                volatile,
            } => {
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Deref {
                            addr,
                            ty: kind,
                            volatile,
                        },
                        rhs: value,
                    },
                );
            }
        }
    }

    fn load_place(&mut self, place: &Place, q: &QualType) -> TV {
        match place {
            Place::Var(v) => TV {
                e: self.proc.exprs.var(*v),
                ty: q.clone(),
            },
            Place::Mem {
                addr,
                kind,
                volatile,
            } => {
                // copy the address so the load and the eventual store
                // never share expression slots
                let a = self.proc.exprs.copy(*addr);
                TV {
                    e: self.proc.exprs.alloc(Expr::Load {
                        addr: a,
                        ty: *kind,
                        volatile: *volatile,
                    }),
                    ty: q.clone(),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // expressions
    // ------------------------------------------------------------------

    /// Lowers an expression for its value.
    fn rvalue(&mut self, e: &ast::Expr, out: &mut Block) -> Result<TV, LowerError> {
        self.expr(e, out, true)
            .map(|tv| tv.expect("value requested"))
    }

    /// Lowers an expression purely for its side effects.
    fn expr_discard(&mut self, e: &ast::Expr, out: &mut Block) -> Result<(), LowerError> {
        self.expr(e, out, false).map(|_| ())
    }

    /// C truthiness of a scalar: pointers/floats compare against zero so
    /// the IL condition is always an `Int`.
    fn truth(&mut self, tv: TV, span: Span) -> Result<ExprId, LowerError> {
        let kind = scalar_kind(&tv.ty).ok_or_else(|| self.err("condition must be scalar", span))?;
        Ok(match kind {
            ScalarType::Int => tv.e,
            ScalarType::Char => self
                .proc
                .exprs
                .cast(ScalarType::Int, ScalarType::Char, tv.e),
            ScalarType::Ptr => {
                let z = self.proc.exprs.int(0);
                self.proc.exprs.binary(BinOp::Ne, ScalarType::Ptr, tv.e, z)
            }
            ScalarType::Float | ScalarType::Double => {
                let z = self.proc.exprs.alloc(Expr::FloatConst(0.0, kind));
                self.proc.exprs.binary(BinOp::Ne, kind, tv.e, z)
            }
        })
    }

    #[allow(clippy::too_many_lines)]
    fn expr(
        &mut self,
        e: &ast::Expr,
        out: &mut Block,
        value_needed: bool,
    ) -> Result<Option<TV>, LowerError> {
        let span = e.span;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Some(TV {
                e: self.proc.exprs.int(*v),
                ty: int_ty(),
            })),
            ExprKind::CharLit(v) => Ok(Some(TV {
                e: self.proc.exprs.int(*v),
                ty: int_ty(),
            })),
            ExprKind::FloatLit(v, single) => Ok(Some(TV {
                e: if *single {
                    self.proc.exprs.float(*v)
                } else {
                    self.proc.exprs.double(*v)
                },
                ty: QualType::plain(if *single { CType::Float } else { CType::Double }),
            })),
            ExprKind::StrLit(_) => {
                Err(self.err("string literals are not supported by this subset", span))
            }
            ExprKind::Ident(name) => {
                let v = self.lookup(name, span)?;
                let q = self.ctype_of(v);
                if matches!(q.ty, CType::Array(..)) {
                    // array decays to its address
                    return Ok(Some(TV {
                        e: self.proc.exprs.addr_of(v),
                        ty: q,
                    }));
                }
                if matches!(q.ty, CType::Struct(_)) {
                    // struct rvalue = its address (used by member access)
                    self.proc.var_mut(v).addressed = true;
                    return Ok(Some(TV {
                        e: self.proc.exprs.addr_of(v),
                        ty: q,
                    }));
                }
                let info = self.proc.var(v);
                if info.volatile {
                    let kind =
                        scalar_kind(&q).ok_or_else(|| self.err("volatile aggregate read", span))?;
                    let a = self.proc.exprs.addr_of(v);
                    return Ok(Some(TV {
                        e: self.proc.exprs.alloc(Expr::Load {
                            addr: a,
                            ty: kind,
                            volatile: true,
                        }),
                        ty: q,
                    }));
                }
                Ok(Some(TV {
                    e: self.proc.exprs.var(v),
                    ty: q,
                }))
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.lower_assign(op, lhs, rhs, out, value_needed, span)
            }
            ExprKind::IncDec { inc, prefix, arg } => {
                self.lower_incdec(*inc, *prefix, arg, out, value_needed, span)
            }
            ExprKind::Unary(op, arg) => self.lower_unary(*op, arg, out, value_needed, span),
            ExprKind::Binary(op, l, r) => self.lower_binary(*op, l, r, out, value_needed, span),
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => {
                let c = self.rvalue(cond, out)?;
                let ce = self.truth(c, span)?;
                let mut then_blk = Vec::new();
                let t_tv = self.rvalue(then_e, &mut then_blk)?;
                let mut else_blk = Vec::new();
                let e_tv = self.rvalue(else_e, &mut else_blk)?;
                let tk =
                    scalar_kind(&t_tv.ty).ok_or_else(|| self.err("non-scalar ?: branch", span))?;
                let ek =
                    scalar_kind(&e_tv.ty).ok_or_else(|| self.err("non-scalar ?: branch", span))?;
                let k = common_kind(tk, ek);
                let result_ty = t_tv.ty.clone();
                let tmp = self.temp(k);
                let tval = self.convert(t_tv, k, span)?;
                let s = self.proc.stamp(StmtKind::Assign {
                    lhs: LValue::Var(tmp),
                    rhs: tval,
                });
                then_blk.push(s);
                let eval = self.convert(e_tv, k, span)?;
                let s = self.proc.stamp(StmtKind::Assign {
                    lhs: LValue::Var(tmp),
                    rhs: eval,
                });
                else_blk.push(s);
                self.emit(
                    out,
                    StmtKind::If {
                        cond: ce,
                        then_blk,
                        else_blk,
                    },
                );
                let ty = match k {
                    ScalarType::Ptr => result_ty,
                    ScalarType::Int => int_ty(),
                    ScalarType::Float => QualType::plain(CType::Float),
                    ScalarType::Double => QualType::plain(CType::Double),
                    ScalarType::Char => int_ty(),
                };
                Ok(Some(TV {
                    e: self.proc.exprs.var(tmp),
                    ty,
                }))
            }
            ExprKind::Comma(l, r) => {
                self.expr_discard_keeping_volatile(l, out)?;
                self.expr(r, out, value_needed)
            }
            ExprKind::Call { name, args } => {
                let sig = self.env.signatures.get(name).cloned();
                let mut arg_exprs = Vec::new();
                for (i, a) in args.iter().enumerate() {
                    let tv = self.rvalue(a, out)?;
                    let converted = match sig.as_ref().and_then(|s| s.params.get(i)) {
                        Some(pq) => {
                            let to = scalar_kind(pq)
                                .ok_or_else(|| self.err("aggregate argument", a.span))?;
                            self.convert(tv, to, a.span)?
                        }
                        None => tv.e,
                    };
                    arg_exprs.push(converted);
                }
                let ret_q = sig.as_ref().map(|s| s.ret.clone()).unwrap_or_else(int_ty);
                if value_needed {
                    let kind = scalar_kind(&ret_q)
                        .ok_or_else(|| self.err("using a void return value", span))?;
                    let tmp = self.temp(kind);
                    self.emit_at(
                        out,
                        StmtKind::Call {
                            dst: Some(LValue::Var(tmp)),
                            callee: name.clone(),
                            args: arg_exprs,
                        },
                        span,
                    );
                    Ok(Some(TV {
                        e: self.proc.exprs.var(tmp),
                        ty: ret_q,
                    }))
                } else {
                    self.emit_at(
                        out,
                        StmtKind::Call {
                            dst: None,
                            callee: name.clone(),
                            args: arg_exprs,
                        },
                        span,
                    );
                    Ok(None)
                }
            }
            ExprKind::Index(base, idx) => {
                let (addr, elem) = self.element_addr(base, idx, out, span)?;
                if matches!(elem.ty, CType::Array(..) | CType::Struct(_)) {
                    // multi-dim: the element decays again
                    return Ok(Some(TV { e: addr, ty: elem }));
                }
                let kind =
                    scalar_kind(&elem).ok_or_else(|| self.err("indexing to non-scalar", span))?;
                Ok(Some(TV {
                    e: self.proc.exprs.alloc(Expr::Load {
                        addr,
                        ty: kind,
                        volatile: elem.volatile,
                    }),
                    ty: elem,
                }))
            }
            ExprKind::Member { base, field, arrow } => {
                let (addr, fty) = self.member_addr(base, field, *arrow, out, span)?;
                if matches!(fty.ty, CType::Array(..) | CType::Struct(_)) {
                    return Ok(Some(TV { e: addr, ty: fty }));
                }
                let kind =
                    scalar_kind(&fty).ok_or_else(|| self.err("aggregate member value", span))?;
                Ok(Some(TV {
                    e: self.proc.exprs.alloc(Expr::Load {
                        addr,
                        ty: kind,
                        volatile: fty.volatile,
                    }),
                    ty: fty,
                }))
            }
            ExprKind::Cast(q, arg) => {
                let tv = self.rvalue(arg, out)?;
                let to = scalar_kind(q).ok_or_else(|| self.err("cast to non-scalar type", span))?;
                let ex = self.convert(tv, to, span)?;
                Ok(Some(TV {
                    e: ex,
                    ty: q.clone(),
                }))
            }
            ExprKind::SizeofTy(q) => {
                let size = self.size_of_ctype(q, span)?;
                Ok(Some(TV {
                    e: self.proc.exprs.int(size),
                    ty: int_ty(),
                }))
            }
            ExprKind::SizeofExpr(inner) => {
                let q = self.type_of(inner)?;
                let size = self.size_of_ctype(&q, span)?;
                Ok(Some(TV {
                    e: self.proc.exprs.int(size),
                    ty: int_ty(),
                }))
            }
        }
    }

    /// Discards an expression's value but keeps a volatile read alive by
    /// assigning it to a temporary (reading a volatile is an effect).
    fn expr_discard_keeping_volatile(
        &mut self,
        e: &ast::Expr,
        out: &mut Block,
    ) -> Result<(), LowerError> {
        let tv = self.expr(e, out, false)?;
        if let Some(tv) = tv {
            if self.proc.exprs.has_volatile_load(tv.e) {
                if let Some(kind) = scalar_kind(&tv.ty) {
                    let tmp = self.temp(kind);
                    self.emit(
                        out,
                        StmtKind::Assign {
                            lhs: LValue::Var(tmp),
                            rhs: tv.e,
                        },
                    );
                }
            }
        }
        Ok(())
    }

    fn lower_assign(
        &mut self,
        op: &Option<CBinOp>,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        out: &mut Block,
        value_needed: bool,
        span: Span,
    ) -> Result<Option<TV>, LowerError> {
        let (place, q) = self.place(lhs, out)?;
        let kind = scalar_kind(&q).ok_or_else(|| self.err("assignment to aggregate", span))?;
        // Pin the address in a temporary when we must use it twice
        // (compound assignment) — evaluate once, per C semantics.
        let place = match (place, op) {
            (
                Place::Mem {
                    addr,
                    kind,
                    volatile,
                },
                Some(_),
            ) if !self.proc.exprs.is_const(addr) => {
                let taddr = self.temp(ScalarType::Ptr);
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Var(taddr),
                        rhs: addr,
                    },
                );
                Place::Mem {
                    addr: self.proc.exprs.var(taddr),
                    kind,
                    volatile,
                }
            }
            _ => place,
        };
        let rhs_tv = self.rvalue(rhs, out)?;
        let new_value = match op {
            None => self.convert(rhs_tv, kind, span)?,
            Some(cop) => {
                let old = self.load_place(&place, &q);
                let tv = self.arith(*cop, old, rhs_tv, span)?;
                self.convert(tv, kind, span)?
            }
        };
        if value_needed {
            // (SL1; SL2; t = E2; E1 = t, t) — §4's temporary scheme: the
            // value of the assignment is the temporary, so a volatile
            // target is written once and never read.
            let tmp = self.temp(kind);
            self.emit(
                out,
                StmtKind::Assign {
                    lhs: LValue::Var(tmp),
                    rhs: new_value,
                },
            );
            let tv = self.proc.exprs.var(tmp);
            self.store(place, tv, out);
            Ok(Some(TV {
                e: self.proc.exprs.var(tmp),
                ty: q,
            }))
        } else {
            self.store(place, new_value, out);
            Ok(None)
        }
    }

    fn lower_incdec(
        &mut self,
        inc: bool,
        prefix: bool,
        arg: &ast::Expr,
        out: &mut Block,
        value_needed: bool,
        span: Span,
    ) -> Result<Option<TV>, LowerError> {
        let (place, q) = self.place(arg, out)?;
        let kind = scalar_kind(&q).ok_or_else(|| self.err("++/-- on aggregate", span))?;
        let delta: ExprId = match (&q.ty, kind) {
            (CType::Ptr(inner), _) => {
                let sz = self.size_of_ctype(inner, span)?;
                self.proc.exprs.int(sz)
            }
            (_, ScalarType::Float) => self.proc.exprs.float(1.0),
            (_, ScalarType::Double) => self.proc.exprs.double(1.0),
            _ => self.proc.exprs.int(1),
        };
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        match place {
            Place::Var(v) => {
                if value_needed && !prefix {
                    // §5.3 shape: temp_1 = a; a = temp_1 + 4
                    let tmp = self.temp(kind);
                    let rv = self.proc.exprs.var(v);
                    self.emit(
                        out,
                        StmtKind::Assign {
                            lhs: LValue::Var(tmp),
                            rhs: rv,
                        },
                    );
                    let tv = self.proc.exprs.var(tmp);
                    let newv = self.proc.exprs.binary(op, kind, tv, delta);
                    self.emit(
                        out,
                        StmtKind::Assign {
                            lhs: LValue::Var(v),
                            rhs: newv,
                        },
                    );
                    Ok(Some(TV {
                        e: self.proc.exprs.var(tmp),
                        ty: q,
                    }))
                } else {
                    let rv = self.proc.exprs.var(v);
                    let newv = self.proc.exprs.binary(op, kind, rv, delta);
                    self.emit(
                        out,
                        StmtKind::Assign {
                            lhs: LValue::Var(v),
                            rhs: newv,
                        },
                    );
                    Ok(value_needed.then(|| TV {
                        e: self.proc.exprs.var(v),
                        ty: q,
                    }))
                }
            }
            Place::Mem {
                addr,
                kind: mkind,
                volatile,
            } => {
                // pin the address once
                let taddr = self.temp(ScalarType::Ptr);
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Var(taddr),
                        rhs: addr,
                    },
                );
                let la = self.proc.exprs.var(taddr);
                let load = self.proc.exprs.alloc(Expr::Load {
                    addr: la,
                    ty: mkind,
                    volatile,
                });
                let told = self.temp(mkind);
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Var(told),
                        rhs: load,
                    },
                );
                let ov = self.proc.exprs.var(told);
                let newv = self.proc.exprs.binary(op, kind, ov, delta);
                let tnew = self.temp(mkind);
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Var(tnew),
                        rhs: newv,
                    },
                );
                let sa = self.proc.exprs.var(taddr);
                let nv = self.proc.exprs.var(tnew);
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Deref {
                            addr: sa,
                            ty: mkind,
                            volatile,
                        },
                        rhs: nv,
                    },
                );
                let result = if prefix { tnew } else { told };
                Ok(value_needed.then(|| TV {
                    e: self.proc.exprs.var(result),
                    ty: q,
                }))
            }
        }
    }

    fn lower_unary(
        &mut self,
        op: CUnOp,
        arg: &ast::Expr,
        out: &mut Block,
        value_needed: bool,
        span: Span,
    ) -> Result<Option<TV>, LowerError> {
        match op {
            CUnOp::AddrOf => {
                match self.place(arg, out) {
                    Ok((place, q)) => {
                        let addr = match place {
                            Place::Var(v) => {
                                self.proc.var_mut(v).addressed = true;
                                self.proc.exprs.addr_of(v)
                            }
                            Place::Mem { addr, .. } => addr,
                        };
                        Ok(Some(TV {
                            e: addr,
                            ty: q.ptr(),
                        }))
                    }
                    Err(e) => {
                        // aggregates (struct/array elements) have no scalar
                        // place, but their rvalue *is* their address
                        let tv = self.rvalue(arg, out)?;
                        if matches!(tv.ty.ty, CType::Struct(_) | CType::Array(..)) {
                            Ok(Some(TV {
                                e: tv.e,
                                ty: tv.ty.ptr(),
                            }))
                        } else {
                            Err(e)
                        }
                    }
                }
            }
            CUnOp::Deref => {
                let ptr = self.rvalue(arg, out)?;
                let pt = pointee(&ptr.ty)
                    .cloned()
                    .ok_or_else(|| self.err("dereferencing a non-pointer", span))?;
                if matches!(pt.ty, CType::Array(..) | CType::Struct(_)) {
                    return Ok(Some(TV { e: ptr.e, ty: pt }));
                }
                let kind =
                    scalar_kind(&pt).ok_or_else(|| self.err("dereferencing void pointer", span))?;
                Ok(Some(TV {
                    e: self.proc.exprs.alloc(Expr::Load {
                        addr: ptr.e,
                        ty: kind,
                        volatile: pt.volatile,
                    }),
                    ty: pt,
                }))
            }
            CUnOp::Plus => self.expr(arg, out, value_needed),
            CUnOp::Neg => {
                let tv = self.rvalue(arg, out)?;
                let kind =
                    scalar_kind(&tv.ty).ok_or_else(|| self.err("negating a non-scalar", span))?;
                let kind = if kind == ScalarType::Char {
                    ScalarType::Int
                } else {
                    kind
                };
                let ex = self.convert(tv.clone(), kind, span)?;
                Ok(Some(TV {
                    e: self.proc.exprs.unary(UnOp::Neg, kind, ex),
                    ty: promote(tv.ty),
                }))
            }
            CUnOp::Not => {
                let tv = self.rvalue(arg, out)?;
                let truth = self.truth(tv, span)?;
                Ok(Some(TV {
                    e: self.proc.exprs.unary(UnOp::Not, ScalarType::Int, truth),
                    ty: int_ty(),
                }))
            }
            CUnOp::BitNot => {
                let tv = self.rvalue(arg, out)?;
                let ex = self.convert(tv, ScalarType::Int, span)?;
                Ok(Some(TV {
                    e: self.proc.exprs.unary(UnOp::BitNot, ScalarType::Int, ex),
                    ty: int_ty(),
                }))
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: CBinOp,
        l: &ast::Expr,
        r: &ast::Expr,
        out: &mut Block,
        value_needed: bool,
        span: Span,
    ) -> Result<Option<TV>, LowerError> {
        match op {
            CBinOp::LogAnd | CBinOp::LogOr => {
                let is_and = op == CBinOp::LogAnd;
                let ltv = self.rvalue(l, out)?;
                let lc = self.truth(ltv, span)?;
                let tmp = self.temp(ScalarType::Int);
                // t = (E_l != 0); if (t ==/!= 0) { SL_r; t = (E_r != 0); }
                let lnot = self.proc.exprs.unary(UnOp::Not, ScalarType::Int, lc);
                let lnorm = self.proc.exprs.unary(UnOp::Not, ScalarType::Int, lnot);
                self.emit(
                    out,
                    StmtKind::Assign {
                        lhs: LValue::Var(tmp),
                        rhs: lnorm,
                    },
                );
                let guard = if is_and {
                    self.proc.exprs.var(tmp)
                } else {
                    let tv = self.proc.exprs.var(tmp);
                    self.proc.exprs.unary(UnOp::Not, ScalarType::Int, tv)
                };
                let mut inner = Vec::new();
                let rtv = self.rvalue(r, &mut inner)?;
                let rc = self.truth(rtv, span)?;
                let rnot = self.proc.exprs.unary(UnOp::Not, ScalarType::Int, rc);
                let rnorm = self.proc.exprs.unary(UnOp::Not, ScalarType::Int, rnot);
                let s = self.proc.stamp(StmtKind::Assign {
                    lhs: LValue::Var(tmp),
                    rhs: rnorm,
                });
                inner.push(s);
                self.emit(
                    out,
                    StmtKind::If {
                        cond: guard,
                        then_blk: inner,
                        else_blk: Vec::new(),
                    },
                );
                let _ = value_needed;
                Ok(Some(TV {
                    e: self.proc.exprs.var(tmp),
                    ty: int_ty(),
                }))
            }
            _ => {
                let ltv = self.rvalue(l, out)?;
                let rtv = self.rvalue(r, out)?;
                Ok(Some(self.arith(op, ltv, rtv, span)?))
            }
        }
    }

    /// Arithmetic with C's conversions, including pointer arithmetic.
    fn arith(&mut self, op: CBinOp, l: TV, r: TV, span: Span) -> Result<TV, LowerError> {
        let lk = scalar_kind(&l.ty).ok_or_else(|| self.err("non-scalar operand", span))?;
        let rk = scalar_kind(&r.ty).ok_or_else(|| self.err("non-scalar operand", span))?;
        let bop = match op {
            CBinOp::Add => BinOp::Add,
            CBinOp::Sub => BinOp::Sub,
            CBinOp::Mul => BinOp::Mul,
            CBinOp::Div => BinOp::Div,
            CBinOp::Rem => BinOp::Rem,
            CBinOp::Shl => BinOp::Shl,
            CBinOp::Shr => BinOp::Shr,
            CBinOp::Lt => BinOp::Lt,
            CBinOp::Gt => BinOp::Gt,
            CBinOp::Le => BinOp::Le,
            CBinOp::Ge => BinOp::Ge,
            CBinOp::Eq => BinOp::Eq,
            CBinOp::Ne => BinOp::Ne,
            CBinOp::BitAnd => BinOp::BitAnd,
            CBinOp::BitXor => BinOp::BitXor,
            CBinOp::BitOr => BinOp::BitOr,
            CBinOp::LogAnd | CBinOp::LogOr => unreachable!("handled by lower_binary"),
        };
        // pointer arithmetic
        let l_is_ptr = lk == ScalarType::Ptr;
        let r_is_ptr = rk == ScalarType::Ptr;
        if (op == CBinOp::Add || op == CBinOp::Sub) && (l_is_ptr ^ r_is_ptr) {
            let (ptv, itv, pfirst) = if l_is_ptr {
                (l, r, true)
            } else {
                (r, l, false)
            };
            if !pfirst && op == CBinOp::Sub {
                return Err(self.err("cannot subtract a pointer from an integer", span));
            }
            let elem = pointee(&ptv.ty)
                .cloned()
                .ok_or_else(|| self.err("pointer arithmetic on non-pointer", span))?;
            let size = self.size_of_ctype(&elem, span)?;
            let idx = self.convert(itv, ScalarType::Int, span)?;
            let size_e = self.proc.exprs.int(size);
            let scaled = self.proc.exprs.ibinary(BinOp::Mul, idx, size_e);
            let e = self.proc.exprs.binary(bop, ScalarType::Ptr, ptv.e, scaled);
            return Ok(TV { e, ty: ptv.ty });
        }
        if op == CBinOp::Sub && l_is_ptr && r_is_ptr {
            let elem = pointee(&l.ty)
                .cloned()
                .ok_or_else(|| self.err("pointer difference on non-pointer", span))?;
            let size = self.size_of_ctype(&elem, span)?;
            let diff = self
                .proc
                .exprs
                .binary(BinOp::Sub, ScalarType::Ptr, l.e, r.e);
            let cast = self.proc.exprs.cast(ScalarType::Int, ScalarType::Ptr, diff);
            let size_e = self.proc.exprs.int(size);
            return Ok(TV {
                e: self.proc.exprs.ibinary(BinOp::Div, cast, size_e),
                ty: int_ty(),
            });
        }
        let k = common_kind(lk, rk);
        let le = self.convert(l.clone(), k, span)?;
        let re = self.convert(r.clone(), k, span)?;
        let e = self.proc.exprs.binary(bop, k, le, re);
        let ty = if bop.is_comparison() {
            int_ty()
        } else {
            match k {
                ScalarType::Int | ScalarType::Char => int_ty(),
                ScalarType::Float => QualType::plain(CType::Float),
                ScalarType::Double => QualType::plain(CType::Double),
                ScalarType::Ptr => {
                    if l_is_ptr {
                        l.ty
                    } else {
                        r.ty
                    }
                }
            }
        };
        Ok(TV { e, ty })
    }

    /// Type of an expression without lowering it (for `sizeof`).
    fn type_of(&mut self, e: &ast::Expr) -> Result<QualType, LowerError> {
        Ok(match &e.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) => int_ty(),
            ExprKind::FloatLit(_, single) => {
                QualType::plain(if *single { CType::Float } else { CType::Double })
            }
            ExprKind::Ident(name) => {
                let v = self.lookup(name, e.span)?;
                self.ctype_of(v)
            }
            ExprKind::Unary(CUnOp::Deref, inner) => {
                let q = self.type_of(inner)?;
                pointee(&q)
                    .cloned()
                    .ok_or_else(|| self.err("dereferencing a non-pointer", e.span))?
            }
            ExprKind::Unary(CUnOp::AddrOf, inner) => self.type_of(inner)?.ptr(),
            ExprKind::Index(base, _) => {
                let q = self.type_of(base)?;
                pointee(&q)
                    .cloned()
                    .ok_or_else(|| self.err("indexing a non-array", e.span))?
            }
            ExprKind::Cast(q, _) => q.clone(),
            _ => int_ty(),
        })
    }
}

impl Place {
    fn for_var(lw: &mut FuncLowerer<'_>, v: VarId) -> Place {
        let info = lw.proc.var(v);
        if info.volatile {
            let kind = info.ty.scalar().unwrap_or(ScalarType::Int);
            Place::Mem {
                addr: lw.proc.exprs.addr_of(v),
                kind,
                volatile: true,
            }
        } else {
            Place::Var(v)
        }
    }
}

/// Integer promotion at the AST type level.
fn promote(q: QualType) -> QualType {
    match q.ty {
        CType::Char => QualType::plain(CType::Int),
        _ => q,
    }
}

/// Reconstructs an AST type from an IL type (used for struct fields).
fn il_to_qualtype(env: &Env, t: &Type) -> QualType {
    QualType::plain(match t {
        Type::Void => CType::Void,
        Type::Char => CType::Char,
        Type::Int => CType::Int,
        Type::Float => CType::Float,
        Type::Double => CType::Double,
        Type::Ptr(inner) => CType::Ptr(Box::new(il_to_qualtype(env, inner))),
        Type::Array(inner, n) => CType::Array(Box::new(il_to_qualtype(env, inner)), Some(*n)),
        Type::Struct(sid) => CType::Struct(env.struct_def(*sid).name.clone()),
    })
}
