//! # titanc-lower — AST → IL normalization
//!
//! Implements §4 of Allen & Johnson (PLDI 1988): every C expression is
//! recast as a pair *(SL, E)* of an IL statement list and a pure IL
//! expression. Concretely:
//!
//! * Embedded assignments become explicit [`titanc_il::StmtKind::Assign`]
//!   statements; chained assignment `a = v = b` goes through a temporary
//!   (`t = b; v = t; a = t`) so a volatile `v` is written once and never
//!   read — the paper's reading of the (then-draft) ANSI semantics.
//! * `++`/`--` expand to load/increment statement pairs — the §5.3 shape
//!   `temp_1 = a; a = temp_1 + 4; … *temp_1 …` comes from here.
//! * `&&`, `||`, `?:` become `If` statements writing a temporary.
//! * `for` loops become `while` loops "straightforwardly, without
//!   sophisticated analysis" (§5.2); DO-loop recognition happens later in
//!   `titanc-opt`.
//! * `while ((SL,E))` duplicates SL at the end of the body, exactly as §4
//!   prescribes.
//! * Every access to a `volatile` object becomes an explicit volatile
//!   [`titanc_il::Expr::Load`] or volatile store, so all later phases can
//!   recognize pinned accesses purely structurally.
//!
//! ## Example
//!
//! ```
//! let tu = titanc_cfront::parse(
//!     "void copy(float *a, float *b, int n) { while (n) { *a++ = *b++; n--; } }",
//! ).unwrap();
//! let prog = titanc_lower::lower(&tu)?;
//! let copy = prog.proc_by_name("copy").unwrap();
//! // The pointer walk is now a sequence of explicit assignments.
//! assert!(copy.len() > 5);
//! # Ok::<(), titanc_lower::LowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod func;
mod types;

use std::error::Error;
use std::fmt;

use titanc_cfront::ast;
use titanc_cfront::Span;
use titanc_il::{Program, VarInfo};

pub use types::Signature;

/// An error produced while lowering (semantic errors: unknown names, bad
/// types, unsupported constructs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LowerError {
    /// Human-readable message.
    pub message: String,
    /// Source position.
    pub span: Span,
}

impl LowerError {
    pub(crate) fn new(message: impl Into<String>, span: Span) -> LowerError {
        LowerError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for LowerError {}

/// Lowers a parsed translation unit to an IL [`Program`].
///
/// # Errors
///
/// Returns a [`LowerError`] for semantic problems: undeclared identifiers,
/// unknown struct tags or fields, non-constant global initializers, and
/// constructs outside the supported subset.
pub fn lower(tu: &ast::TranslationUnit) -> Result<Program, LowerError> {
    let mut prog = Program::new();
    let mut env = types::Env::default();

    // Pass 1: struct layouts, global declarations, signatures.
    for item in &tu.items {
        match item {
            ast::Item::Struct(sd) => {
                // Register the tag before layout so self-referential
                // pointer fields (`struct node *next`) resolve.
                let id = titanc_il::StructId::from_index(prog.structs.len());
                env.structs.insert(sd.name.clone(), id);
                env.struct_defs.push(titanc_il::StructDef {
                    name: sd.name.clone(),
                    fields: Vec::new(),
                    size: 0,
                });
                let def = types::layout_struct(&mut env, sd)?;
                env.struct_defs[id.index()] = def.clone();
                prog.structs.push(def);
            }
            ast::Item::Global(g) => {
                let (ty, volatile) = types::cvt_qualtype(&env, &g.ty, g.span)?;
                let init = match &g.init {
                    None => None,
                    Some(e) => Some(types::const_init(e)?),
                };
                prog.ensure_global(VarInfo {
                    name: g.name.clone(),
                    ty,
                    storage: titanc_il::Storage::Global,
                    volatile,
                    addressed: true,
                    init,
                });
                env.globals.insert(g.name.clone(), g.ty.clone());
            }
            ast::Item::Proto(p) => {
                env.add_signature(&p.name, &p.ret, &p.params);
            }
            ast::Item::Func(f) => {
                env.add_signature(&f.name, &f.ret, &f.params);
            }
        }
    }

    // Pass 2: lower function bodies.
    for item in &tu.items {
        if let ast::Item::Func(f) = item {
            let proc = func::lower_function(&env, f)?;
            prog.add_proc(proc);
        }
    }
    Ok(prog)
}

/// Parses and lowers in one step — the common entry point for tests and
/// tools.
///
/// # Errors
///
/// Returns the parse diagnostic or lowering error rendered as a string.
pub fn compile_to_il(src: &str) -> Result<Program, String> {
    let tu = titanc_cfront::parse(src).map_err(|e| e.to_string())?;
    lower(&tu).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests;
