//! Parser error recovery: a translation unit with several independent
//! mistakes must produce one diagnostic per mistake (with real source
//! positions), keep the items that parsed cleanly, and terminate on any
//! input — including pure garbage.

use titanc_cfront::{parse_recovering, DiagnosticSink, Severity};

fn errors(src: &str, cap: usize) -> (usize, Vec<(u32, u32, String)>) {
    let mut sink = DiagnosticSink::new(cap);
    let tu = parse_recovering(src, &mut sink);
    let spans = sink
        .errors()
        .map(|d| (d.span.line, d.span.col, d.message.clone()))
        .collect();
    (tu.items.len(), spans)
}

#[test]
fn two_bad_statements_two_diagnostics() {
    let src = "void f(void)\n{\n    int x;\n    x = ;\n    x = 1;\n    y 2;\n    x = 3;\n}\n";
    let (items, errs) = errors(src, 20);
    assert_eq!(errs.len(), 2, "expected exactly two diagnostics: {errs:?}");
    // each diagnostic lands on the line of its own mistake
    assert_eq!(errs[0].0, 4, "first error on line 4: {errs:?}");
    assert!(errs[0].2.contains("expected expression"), "{errs:?}");
    assert_eq!(errs[1].0, 6, "second error on line 6: {errs:?}");
    // the function around them still parses
    assert_eq!(items, 1);
}

#[test]
fn bad_items_do_not_take_down_their_neighbors() {
    let src = "\
int good_one(int a) { return a + 1; }
int 123bad;
float good_two(float x) { return x * 2.0f; }
int = 4;
int good_three(void) { return 3; }
";
    let mut sink = DiagnosticSink::new(20);
    let tu = parse_recovering(src, &mut sink);
    assert!(sink.has_errors());
    assert!(sink.error_count() >= 2, "{:?}", sink.diagnostics());
    let names: Vec<_> = tu
        .items
        .iter()
        .filter_map(|i| match i {
            titanc_cfront::ast::Item::Func(f) => Some(f.name.as_str()),
            _ => None,
        })
        .collect();
    assert!(names.contains(&"good_one"), "{names:?}");
    assert!(names.contains(&"good_two"), "{names:?}");
    assert!(names.contains(&"good_three"), "{names:?}");
}

#[test]
fn max_errors_caps_the_cascade() {
    // every line is its own error
    let mut src = String::from("void f(void) {\n");
    for _ in 0..50 {
        src.push_str("    x = ;\n");
    }
    src.push_str("}\n");
    let mut sink = DiagnosticSink::new(5);
    let _ = parse_recovering(&src, &mut sink);
    assert_eq!(sink.errors().count(), 5, "stored errors stop at the cap");
    assert!(sink.at_limit());
}

#[test]
fn recovery_terminates_on_garbage() {
    // pathological inputs: unbalanced braces, operator soup, truncation
    let cases = [
        "(((((((((((",
        "}}}}}}}}}}}}",
        "void f( { ) } ; int",
        "int x = = = = = ;;;; void @",
        "do while for if else } { ; ) (",
        "void f(void) { if (x ",
        "+ - * / % << >> == != ;",
    ];
    for src in cases {
        let mut sink = DiagnosticSink::new(20);
        let _ = parse_recovering(src, &mut sink);
        // termination is the property; garbage must also not be silent
        assert!(sink.has_errors(), "no diagnostic for {src:?}");
    }
}

#[test]
fn recovery_terminates_on_random_token_soup() {
    // deterministic xorshift64* over a token alphabet: every sample must
    // return (quickly), never hang or panic
    let mut state: u64 = 0x5EED_CAFE;
    let alphabet = [
        "int", "float", "void", "x", "f", "(", ")", "{", "}", "[", "]", ";", ",", "=", "+", "*",
        "->", "1", "2.5f", "if", "for", "while", "return", "struct", "&&", "!",
    ];
    for _ in 0..200 {
        let mut src = String::new();
        for _ in 0..64 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let i = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % alphabet.len() as u64) as usize;
            src.push_str(alphabet[i]);
            src.push(' ');
        }
        let mut sink = DiagnosticSink::new(20);
        let _ = parse_recovering(&src, &mut sink);
    }
}

#[test]
fn clean_input_yields_no_diagnostics() {
    let src = "int add(int a, int b) { return a + b; }";
    let mut sink = DiagnosticSink::new(20);
    let tu = parse_recovering(src, &mut sink);
    assert!(!sink.has_errors());
    assert!(sink.diagnostics().is_empty());
    assert_eq!(tu.items.len(), 1);
}

#[test]
fn severities_order_and_render() {
    assert!(Severity::Remark < Severity::Warning);
    assert!(Severity::Warning < Severity::Error);
}
