//! Diagnostics with source positions.

use std::error::Error;
use std::fmt;

/// A line/column source position (1-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A front-end error message anchored to a source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Where the problem was detected.
    pub span: Span,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_position_and_message() {
        let d = Diagnostic::new("unexpected token", Span { line: 3, col: 7 });
        assert_eq!(d.to_string(), "3:7: unexpected token");
    }
}
