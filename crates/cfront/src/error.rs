//! Diagnostics with source positions, severities, and a collecting sink.
//!
//! The front end is *fail-soft*: instead of aborting on the first problem
//! (the PCC discipline the seed implemented), the parser records every
//! [`Diagnostic`] into a [`DiagnosticSink`] and synchronizes to the next
//! statement or declaration. Errors are fatal to a compilation only in
//! aggregate — the driver checks [`DiagnosticSink::has_errors`] once the
//! whole translation unit has been attempted. Warnings and remarks (the
//! vectorizer's "loop left scalar because ..." notes, the optimizer's
//! budget-exhaustion notices) ride the same type so one renderer covers
//! the entire compiler.

use std::error::Error;
use std::fmt;

/// A line/column source position (1-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// The "no position" span used by diagnostics that describe whole-
    /// compilation facts (optimizer remarks) rather than source text.
    pub fn none() -> Span {
        Span::default()
    }

    /// True when the span carries a real source position.
    pub fn is_known(&self) -> bool {
        self.line != 0 || self.col != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational note about an optimization decision (e.g. a loop
    /// that stayed scalar, a budget that ran out). Never fails a build.
    Remark,
    /// Suspicious but compilable.
    Warning,
    /// The translation unit is not valid; compilation fails once the
    /// front end finishes collecting.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Remark => "remark",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A front-end message anchored to a source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// How serious the problem is.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Where the problem was detected.
    pub span: Span,
}

impl Diagnostic {
    /// Builds an error diagnostic (the historical constructor: everything
    /// the lexer and parser report is an error).
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Builds a warning.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Builds a remark.
    pub fn remark(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Remark,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Errors keep the seed's bare `line:col: message` rendering (the
        // CLI prefixes the file name); softer severities are labeled.
        match (self.severity, self.span.is_known()) {
            (Severity::Error, true) => write!(f, "{}: {}", self.span, self.message),
            (Severity::Error, false) => write!(f, "{}", self.message),
            (sev, true) => write!(f, "{}: {}: {}", self.span, sev, self.message),
            (sev, false) => write!(f, "{}: {}", sev, self.message),
        }
    }
}

impl Error for Diagnostic {}

/// Collects diagnostics across a compilation, capping the error flood.
///
/// The cap applies to *errors only* — one mangled declaration can cascade
/// into dozens of follow-on errors, and after `max_errors` of them the
/// parser gives up on the translation unit ([`DiagnosticSink::at_limit`]
/// tells it to stop). Warnings and remarks are never capped and never
/// make [`DiagnosticSink::has_errors`] true.
#[derive(Clone, Debug)]
pub struct DiagnosticSink {
    diags: Vec<Diagnostic>,
    max_errors: usize,
    errors: usize,
    suppressed: usize,
}

/// Default error cap (the classic "too many errors" threshold).
pub const DEFAULT_MAX_ERRORS: usize = 20;

impl Default for DiagnosticSink {
    fn default() -> DiagnosticSink {
        DiagnosticSink::new(DEFAULT_MAX_ERRORS)
    }
}

impl DiagnosticSink {
    /// A sink that records at most `max_errors` errors (0 means "no cap").
    pub fn new(max_errors: usize) -> DiagnosticSink {
        DiagnosticSink {
            diags: Vec::new(),
            max_errors: if max_errors == 0 {
                usize::MAX
            } else {
                max_errors
            },
            errors: 0,
            suppressed: 0,
        }
    }

    /// Records a diagnostic. Errors beyond the cap are counted but not
    /// stored.
    pub fn emit(&mut self, d: Diagnostic) {
        if d.severity == Severity::Error {
            if self.errors >= self.max_errors {
                self.suppressed += 1;
                return;
            }
            self.errors += 1;
        }
        self.diags.push(d);
    }

    /// Records an error at `span`.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.emit(Diagnostic::new(message, span));
    }

    /// Records a warning at `span`.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.emit(Diagnostic::warning(message, span));
    }

    /// Records a remark at `span`.
    pub fn remark(&mut self, message: impl Into<String>, span: Span) {
        self.emit(Diagnostic::remark(message, span));
    }

    /// True once the error cap is reached — the parser should stop.
    pub fn at_limit(&self) -> bool {
        self.errors >= self.max_errors
    }

    /// Number of errors recorded (capped ones included).
    pub fn error_count(&self) -> usize {
        self.errors + self.suppressed
    }

    /// Errors suppressed beyond the cap.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// True when at least one error was recorded.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }

    /// The recorded diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the sink, yielding the recorded diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// The recorded errors only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_position_and_message() {
        let d = Diagnostic::new("unexpected token", Span { line: 3, col: 7 });
        assert_eq!(d.to_string(), "3:7: unexpected token");
    }

    #[test]
    fn labels_soft_severities() {
        let w = Diagnostic::warning("shadowed", Span { line: 2, col: 1 });
        assert_eq!(w.to_string(), "2:1: warning: shadowed");
        let r = Diagnostic::remark("loop left scalar", Span::none());
        assert_eq!(r.to_string(), "remark: loop left scalar");
    }

    #[test]
    fn sink_caps_errors_but_not_remarks() {
        let mut sink = DiagnosticSink::new(2);
        for i in 0..5 {
            sink.error(
                format!("e{i}"),
                Span {
                    line: 1,
                    col: i + 1,
                },
            );
            sink.remark(format!("r{i}"), Span::none());
        }
        assert!(sink.at_limit());
        assert!(sink.has_errors());
        assert_eq!(sink.error_count(), 5);
        assert_eq!(sink.suppressed(), 3);
        assert_eq!(sink.errors().count(), 2);
        // remarks all survived the cap
        assert_eq!(
            sink.diagnostics()
                .iter()
                .filter(|d| d.severity == Severity::Remark)
                .count(),
            5
        );
    }

    #[test]
    fn zero_cap_means_uncapped() {
        let mut sink = DiagnosticSink::new(0);
        for _ in 0..100 {
            sink.error("e", Span::none());
        }
        assert_eq!(sink.error_count(), 100);
        assert_eq!(sink.suppressed(), 0);
        assert!(!sink.at_limit());
    }
}
