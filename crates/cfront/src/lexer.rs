//! The C lexer.
//!
//! Tokenizes the C subset used by the paper's workloads: all the operators
//! the paper calls out as problematic for vectorization (`++`, `--`, `?:`,
//! `&&`, `||`, embedded assignment, compound assignment), the keywords of
//! K&R C plus the ANSI additions the Titan front end supported (`volatile`,
//! prototypes via ordinary syntax, `void`).

use crate::error::{Diagnostic, Span};
use std::fmt;

/// A lexical token kind.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal; `true` when suffixed `f`/`F` (single precision).
    FloatLit(f64, bool),
    /// Character literal (value of the character).
    CharLit(i64),
    /// String literal (unescaped contents).
    StrLit(String),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuator or operator.
    Punct(Punct),
    /// `#pragma safe` — the §9 loop-independence assertion.
    PragmaSafe,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::IntLit(v) => write!(f, "{v}"),
            Tok::FloatLit(v, _) => write!(f, "{v}"),
            Tok::CharLit(v) => write!(f, "'{v}'"),
            Tok::StrLit(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Punct(p) => write!(f, "{}", p.as_str()),
            Tok::PragmaSafe => write!(f, "#pragma safe"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// C keywords recognized by the front end.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Kw {
    Void,
    Char,
    Int,
    Float,
    Double,
    Struct,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Goto,
    Static,
    Extern,
    Register,
    Volatile,
    Const,
    Sizeof,
    Unsigned,
    Long,
    Short,
    Switch,
    Case,
    Default,
    Enum,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "void" => Kw::Void,
        "char" => Kw::Char,
        "int" => Kw::Int,
        "float" => Kw::Float,
        "double" => Kw::Double,
        "struct" => Kw::Struct,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "do" => Kw::Do,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "goto" => Kw::Goto,
        "static" => Kw::Static,
        "extern" => Kw::Extern,
        "register" => Kw::Register,
        "volatile" => Kw::Volatile,
        "const" => Kw::Const,
        "sizeof" => Kw::Sizeof,
        "unsigned" => Kw::Unsigned,
        "long" => Kw::Long,
        "short" => Kw::Short,
        "switch" => Kw::Switch,
        "case" => Kw::Case,
        "default" => Kw::Default,
        "enum" => Kw::Enum,
        _ => return None,
    })
}

/// Punctuators and operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
}

impl Punct {
    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Dot => ".",
            Arrow => "->",
            PlusPlus => "++",
            MinusMinus => "--",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

/// Tokenizes C source.
///
/// # Errors
///
/// Returns a diagnostic for unterminated literals/comments and unknown
/// characters.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    pending: Option<Tok>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            pending: None,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn here(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(msg, self.here())
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            let span = self.here();
            if let Some(tok) = self.pending.take() {
                out.push(Token { tok, span });
                continue;
            }
            if self.pos >= self.src.len() {
                out.push(Token {
                    tok: Tok::Eof,
                    span,
                });
                return Ok(out);
            }
            let tok = self.next_token()?;
            out.push(Token { tok, span });
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(Diagnostic::new("unterminated comment", start));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'#' => {
                    // Preprocessor lines are ignored (the corpus is
                    // preprocessed by hand) — except `#pragma safe`, which
                    // becomes a token (§9's vectorization pragma).
                    let start = self.pos;
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                    let line = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
                    if line.contains("pragma") && line.contains("safe") {
                        self.pending = Some(Tok::PragmaSafe);
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Tok, Diagnostic> {
        let c = self.peek();
        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_ascii_digit()) {
            return self.number();
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.ident());
        }
        if c == b'\'' {
            return self.char_lit();
        }
        if c == b'"' {
            return self.string_lit();
        }
        self.punct()
    }

    fn number(&mut self) -> Result<Tok, Diagnostic> {
        let start = self.pos;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let hs = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hs..self.pos]).unwrap();
            let v =
                i64::from_str_radix(text, 16).map_err(|_| self.err("hex literal out of range"))?;
            while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
                self.bump();
            }
            return Ok(Tok::IntLit(v));
        }
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let save = (self.pos, self.line, self.col);
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                (self.pos, self.line, self.col) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            let single = matches!(self.peek(), b'f' | b'F');
            if single {
                self.bump();
            }
            let v: f64 = text.parse().map_err(|_| self.err("bad float literal"))?;
            Ok(Tok::FloatLit(v, single))
        } else {
            while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
                self.bump();
            }
            let v: i64 = text
                .parse()
                .map_err(|_| self.err("int literal out of range"))?;
            Ok(Tok::IntLit(v))
        }
    }

    fn ident(&mut self) -> Tok {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match keyword(text) {
            Some(k) => Tok::Kw(k),
            None => Tok::Ident(text.to_string()),
        }
    }

    fn escape(&mut self) -> Result<i64, Diagnostic> {
        // caller consumed the backslash
        let c = self.bump();
        Ok(match c {
            b'n' => b'\n' as i64,
            b't' => b'\t' as i64,
            b'r' => b'\r' as i64,
            b'0' => 0,
            b'\\' => b'\\' as i64,
            b'\'' => b'\'' as i64,
            b'"' => b'"' as i64,
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn char_lit(&mut self) -> Result<Tok, Diagnostic> {
        self.bump(); // '
        let v = if self.peek() == b'\\' {
            self.bump();
            self.escape()?
        } else {
            self.bump() as i64
        };
        if self.bump() != b'\'' {
            return Err(self.err("unterminated char literal"));
        }
        Ok(Tok::CharLit(v))
    }

    fn string_lit(&mut self) -> Result<Tok, Diagnostic> {
        let start = self.here();
        self.bump(); // "
        let mut s = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(Diagnostic::new("unterminated string literal", start));
            }
            match self.peek() {
                b'"' => {
                    self.bump();
                    return Ok(Tok::StrLit(s));
                }
                b'\\' => {
                    self.bump();
                    let v = self.escape()?;
                    s.push(v as u8 as char);
                }
                _ => s.push(self.bump() as char),
            }
        }
    }

    fn punct(&mut self) -> Result<Tok, Diagnostic> {
        use Punct::*;
        let (c, c2, c3) = (self.peek(), self.peek2(), self.peek3());
        // three-character operators first
        let three = match (c, c2, c3) {
            (b'<', b'<', b'=') => Some(ShlAssign),
            (b'>', b'>', b'=') => Some(ShrAssign),
            _ => None,
        };
        if let Some(p) = three {
            self.bump();
            self.bump();
            self.bump();
            return Ok(Tok::Punct(p));
        }
        let two = match (c, c2) {
            (b'-', b'>') => Some(Arrow),
            (b'+', b'+') => Some(PlusPlus),
            (b'-', b'-') => Some(MinusMinus),
            (b'<', b'<') => Some(Shl),
            (b'>', b'>') => Some(Shr),
            (b'<', b'=') => Some(Le),
            (b'>', b'=') => Some(Ge),
            (b'=', b'=') => Some(EqEq),
            (b'!', b'=') => Some(Ne),
            (b'&', b'&') => Some(AmpAmp),
            (b'|', b'|') => Some(PipePipe),
            (b'+', b'=') => Some(PlusAssign),
            (b'-', b'=') => Some(MinusAssign),
            (b'*', b'=') => Some(StarAssign),
            (b'/', b'=') => Some(SlashAssign),
            (b'%', b'=') => Some(PercentAssign),
            (b'&', b'=') => Some(AmpAssign),
            (b'|', b'=') => Some(PipeAssign),
            (b'^', b'=') => Some(CaretAssign),
            _ => None,
        };
        if let Some(p) = two {
            self.bump();
            self.bump();
            return Ok(Tok::Punct(p));
        }
        let one = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'?' => Question,
            b'.' => Dot,
            b'+' => Plus,
            b'-' => Minus,
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'&' => Amp,
            b'|' => Pipe,
            b'^' => Caret,
            b'~' => Tilde,
            b'!' => Bang,
            b'<' => Lt,
            b'>' => Gt,
            b'=' => Assign,
            _ => return Err(self.err(format!("unexpected character {:?}", c as char))),
        };
        self.bump();
        Ok(Tok::Punct(one))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_pointer_walk() {
        let t = toks("while(n) { *a++ = *b++; n--; }");
        assert!(t.contains(&Tok::Kw(Kw::While)));
        assert!(t.contains(&Tok::Punct(Punct::PlusPlus)));
        assert!(t.contains(&Tok::Punct(Punct::MinusMinus)));
        assert_eq!(t.last(), Some(&Tok::Eof));
    }

    #[test]
    fn distinguishes_float_and_int() {
        assert_eq!(toks("42")[0], Tok::IntLit(42));
        assert_eq!(toks("4.5")[0], Tok::FloatLit(4.5, false));
        assert_eq!(toks("4.5f")[0], Tok::FloatLit(4.5, true));
        assert_eq!(toks("1e3")[0], Tok::FloatLit(1000.0, false));
        assert_eq!(toks(".5")[0], Tok::FloatLit(0.5, false));
        assert_eq!(toks("0x10")[0], Tok::IntLit(16));
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(toks("a+++b")[1], Tok::Punct(Punct::PlusPlus));
        assert_eq!(toks("a<<=b")[1], Tok::Punct(Punct::ShlAssign));
        assert_eq!(toks("a->b")[1], Tok::Punct(Punct::Arrow));
        assert_eq!(toks("a&&b")[1], Tok::Punct(Punct::AmpAmp));
        assert_eq!(toks("a&b")[1], Tok::Punct(Punct::Amp));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(toks("volatile")[0], Tok::Kw(Kw::Volatile));
        assert_eq!(toks("volatiles")[0], Tok::Ident("volatiles".into()));
        assert_eq!(
            toks("keyboard_status")[0],
            Tok::Ident("keyboard_status".into())
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let t = toks("#include <stdio.h>\nint /* hi */ x; // tail\nfloat y;");
        assert_eq!(t[0], Tok::Kw(Kw::Int));
        assert_eq!(t[1], Tok::Ident("x".into()));
        assert_eq!(t[3], Tok::Kw(Kw::Float));
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(toks("'a'")[0], Tok::CharLit('a' as i64));
        assert_eq!(toks(r"'\n'")[0], Tok::CharLit(10));
        assert_eq!(toks(r#""hi\n""#)[0], Tok::StrLit("hi\n".into()));
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("int x;\nfloat y;").unwrap();
        let float_tok = tokens.iter().find(|t| t.tok == Tok::Kw(Kw::Float)).unwrap();
        assert_eq!(float_tok.span.line, 2);
        assert_eq!(float_tok.span.col, 1);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("/* oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn exponent_requires_digits() {
        // `1e` is int 1 followed by ident e
        let t = toks("1e");
        assert_eq!(t[0], Tok::IntLit(1));
        assert_eq!(t[1], Tok::Ident("e".into()));
    }

    #[test]
    fn pragma_safe_becomes_a_token() {
        let t = toks("#pragma safe\nwhile(n) n--;");
        assert_eq!(t[0], Tok::PragmaSafe);
        assert_eq!(t[1], Tok::Kw(Kw::While));
        // other pragmas are skipped
        let t2 = toks("#pragma once\nint x;");
        assert_eq!(t2[0], Tok::Kw(Kw::Int));
    }

    #[test]
    fn integer_suffixes_ignored() {
        assert_eq!(toks("10L")[0], Tok::IntLit(10));
        assert_eq!(toks("10UL")[0], Tok::IntLit(10));
    }
}
