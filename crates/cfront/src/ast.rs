//! The C abstract syntax tree.
//!
//! The AST is deliberately faithful to C's surface: `++`, embedded
//! assignment, `?:`, `&&`, `||` and the comma operator all appear here and
//! are only recast into the side-effect-free IL by `titanc-lower` (§4).

use crate::error::Span;

/// A possibly-volatile-qualified type. (`const` is accepted and dropped;
/// `volatile` is the qualifier the paper cares about.)
#[derive(Clone, PartialEq, Debug)]
pub struct QualType {
    /// The unqualified type.
    pub ty: CType,
    /// `volatile`-qualified.
    pub volatile: bool,
}

impl QualType {
    /// An unqualified type.
    pub fn plain(ty: CType) -> QualType {
        QualType {
            ty,
            volatile: false,
        }
    }

    /// A pointer to this type.
    pub fn ptr(self) -> QualType {
        QualType::plain(CType::Ptr(Box::new(self)))
    }
}

/// A C type as written.
#[derive(Clone, PartialEq, Debug)]
pub enum CType {
    /// `void`.
    Void,
    /// `char` (signed, 1 byte).
    Char,
    /// `int` (and, in this front end, `short`/`long`/`unsigned`, all
    /// treated as the Titan's 32-bit word).
    Int,
    /// `float` (4 bytes).
    Float,
    /// `double` (8 bytes).
    Double,
    /// Pointer.
    Ptr(Box<QualType>),
    /// Array; `None` length means `[]` (adjusted to a pointer in
    /// parameters).
    Array(Box<QualType>, Option<usize>),
    /// `struct tag`.
    Struct(String),
}

/// Storage-class specifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StorageClass {
    /// No explicit storage class.
    #[default]
    None,
    /// `static`.
    Static,
    /// `extern`.
    Extern,
    /// `register` (accepted; a hint the Titan compiler ignores because it
    /// allocates registers globally, §4).
    Register,
}

/// A whole translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TranslationUnit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, PartialEq, Debug)]
pub enum Item {
    /// Function definition.
    Func(FuncDef),
    /// Function prototype.
    Proto(FuncProto),
    /// Global variable definition/declaration.
    Global(VarDecl),
    /// Struct definition.
    Struct(StructDecl),
}

/// A struct definition `struct tag { … };`.
#[derive(Clone, PartialEq, Debug)]
pub struct StructDecl {
    /// The tag.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<(String, QualType)>,
    /// Source position.
    pub span: Span,
}

/// A function prototype.
#[derive(Clone, PartialEq, Debug)]
pub struct FuncProto {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: QualType,
    /// Parameters.
    pub params: Vec<Param>,
    /// Source position.
    pub span: Span,
}

/// One parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct Param {
    /// Name (absent in prototypes like `void f(int);`).
    pub name: Option<String>,
    /// Declared type (arrays already adjusted to pointers).
    pub ty: QualType,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: QualType,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Declared `static`.
    pub is_static: bool,
    /// Source position.
    pub span: Span,
}

/// A variable declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: QualType,
    /// Storage class.
    pub storage: StorageClass,
    /// Scalar initializer, if any.
    pub init: Option<Expr>,
    /// Source position.
    pub span: Span,
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Local declaration(s) — one statement may declare several variables
    /// (`float *p, *q, r;`), all in the *enclosing* scope.
    Decl(Vec<VarDecl>),
    /// Expression statement.
    Expr(Expr),
    /// `;`
    Empty,
    /// `{ … }`
    Block(Vec<Stmt>),
    /// `if`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_s: Box<Stmt>,
        /// Else branch.
        else_s: Option<Box<Stmt>>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do … while`.
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for`.
    For {
        /// Init expression (C89: no declarations here).
        init: Option<Expr>,
        /// Condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `goto label`.
    Goto(String),
    /// `label: stmt`.
    Label(String, Box<Stmt>),
    /// `#pragma safe` — asserts the next loop's iterations are independent
    /// (the §9 vectorization pragma).
    PragmaSafe,
    /// `switch` with its body flattened to one statement list in which
    /// [`Stmt::Case`]/[`Stmt::Default`] markers appear (C's fallthrough
    /// semantics preserved).
    Switch {
        /// Scrutinee.
        cond: Expr,
        /// Body with interleaved case markers.
        body: Vec<Stmt>,
    },
    /// `case N:` marker (only valid directly inside a switch body).
    Case(i64),
    /// `default:` marker (only valid directly inside a switch body).
    Default,
}

/// Binary operators as written in C (`&&`/`||` included; they are recast by
/// lowering, not here).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CUnOp {
    Neg,
    Plus,
    Not,
    BitNot,
    Deref,
    AddrOf,
}

/// An expression with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// Source position.
    pub span: Span,
}

impl Expr {
    /// Builds an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

/// Expression node kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal; `true` = `f`-suffixed (single precision).
    FloatLit(f64, bool),
    /// Character literal.
    CharLit(i64),
    /// String literal.
    StrLit(String),
    /// Identifier.
    Ident(String),
    /// Unary operation.
    Unary(CUnOp, Box<Expr>),
    /// Binary operation (including `&&`/`||`).
    Binary(CBinOp, Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `Some` for compound assignment (`+=` etc.).
    Assign {
        /// Compound operator, if any.
        op: Option<CBinOp>,
        /// Target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// `++`/`--`, prefix or postfix.
    IncDec {
        /// +1 or -1.
        inc: bool,
        /// Prefix form.
        prefix: bool,
        /// Operand.
        arg: Box<Expr>,
    },
    /// `?:`.
    Cond {
        /// Condition.
        cond: Box<Expr>,
        /// Taken when nonzero.
        then_e: Box<Expr>,
        /// Taken when zero.
        else_e: Box<Expr>,
    },
    /// Comma operator.
    Comma(Box<Expr>, Box<Expr>),
    /// Direct call `name(args…)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` / `base->field`.
    Member {
        /// Object (or pointer for `->`).
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `->` form.
        arrow: bool,
    },
    /// `(type)expr`.
    Cast(QualType, Box<Expr>),
    /// `sizeof(type)`.
    SizeofTy(QualType),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualtype_ptr_builder() {
        let q = QualType::plain(CType::Float).ptr();
        match q.ty {
            CType::Ptr(inner) => assert_eq!(inner.ty, CType::Float),
            _ => panic!("expected pointer"),
        }
    }

    #[test]
    fn default_storage_class() {
        assert_eq!(StorageClass::default(), StorageClass::None);
    }
}
