//! # titanc-cfront — the C front end
//!
//! Lexer, parser and AST for the C subset compiled by `titanc`, the
//! reproduction of the Titan C compiler (Allen & Johnson, PLDI 1988, §4).
//!
//! The front end is deliberately *syntactic*: it performs no optimization
//! and builds a faithful AST in which every C wart the paper discusses —
//! `++`, embedded assignment, `?:`, `&&`, `||`, the comma operator,
//! `volatile`, `goto` into loops — is still visible. The recasting of
//! expressions into side-effect-free *(statement list, expression)* pairs
//! happens in `titanc-lower`.
//!
//! Supported subset: `void`/`char`/`int`/`float`/`double` (with
//! `short`/`long`/`unsigned` accepted as `int`), pointers, multi-dimensional
//! arrays, structs (including arrays embedded in structs, the §10 Doré
//! lesson), prototypes, `static`/`extern`/`register`, `volatile`/`const`,
//! all of C89's statements except `switch`, and the full expression grammar
//! minus function pointers.
//!
//! ## Example
//!
//! ```
//! let tu = titanc_cfront::parse("int square(int x) { return x * x; }")?;
//! assert_eq!(tu.items.len(), 1);
//! # Ok::<(), titanc_cfront::Diagnostic>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::TranslationUnit;
pub use error::{Diagnostic, DiagnosticSink, Severity, Span, DEFAULT_MAX_ERRORS};
pub use parser::{parse, parse_expr, parse_recovering};
