//! Recursive-descent parser for the C subset.
//!
//! Because the front end supports no `typedef`, the classic
//! declaration/expression ambiguity disappears: a parenthesis opens a cast
//! exactly when the next token is a type keyword or `struct`. Declarators
//! support pointers, arrays and prototypes (no function pointers — the
//! Titan compiler required direct calls for inlining anyway).

use crate::ast::*;
use crate::error::{Diagnostic, DiagnosticSink, Span};
use crate::lexer::{lex, Kw, Punct, Tok, Token};

/// Parses a translation unit.
///
/// # Errors
///
/// Returns the first diagnostic encountered (the front end is
/// fail-fast, like PCC was). Use [`parse_recovering`] for the fail-soft
/// entry point that collects every diagnostic.
pub fn parse(src: &str) -> Result<TranslationUnit, Diagnostic> {
    let tokens = lex(src)?;
    Parser::new(tokens).translation_unit()
}

/// Parses a translation unit with error recovery.
///
/// One bad statement yields one diagnostic plus continued parsing: the
/// parser records the diagnostic into `sink` and *synchronizes* — it
/// skips tokens until a `;`, a block close, or something that starts a
/// declaration, then picks up where C's statement structure resumes.
/// Every item that parsed cleanly is kept, so a translation unit with
/// errors still yields the recognizable part of the program (callers
/// must check [`DiagnosticSink::has_errors`] before trusting it).
///
/// The sink's error cap bounds the cascade: once `max_errors` errors
/// are recorded the rest of the file is abandoned.
pub fn parse_recovering(src: &str, sink: &mut DiagnosticSink) -> TranslationUnit {
    let tokens = match lex(src) {
        Ok(t) => t,
        Err(d) => {
            // lexical errors are not recoverable: the token stream after
            // a mangled literal is unbounded garbage
            sink.emit(d);
            return TranslationUnit { items: Vec::new() };
        }
    };
    let mut p = Parser::new(tokens);
    p.recovering = true;
    p.sink = std::mem::take(sink);
    let tu = p.translation_unit_recovering();
    *sink = p.sink;
    tu
}

/// Parses a single expression (used by tests and the REPL-style tools).
///
/// # Errors
///
/// Returns a diagnostic if the source is not a complete expression.
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// `enum` constants resolve to integer literals at parse time (the
    /// front end has no symbol table; enums are pure constants in C89).
    enum_consts: std::collections::HashMap<String, i64>,
    /// Fail-soft mode: statement errors are recorded into `sink` and the
    /// parser synchronizes instead of aborting.
    recovering: bool,
    sink: DiagnosticSink,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Parser {
        Parser {
            toks,
            pos: 0,
            enum_consts: std::collections::HashMap::new(),
            recovering: false,
            sink: DiagnosticSink::default(),
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(msg, self.span())
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), Diagnostic> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found `{}`",
                p.as_str(),
                self.peek()
            )))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if *self.peek() == Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, Diagnostic> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), Diagnostic> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected `{}` after expression", self.peek())))
        }
    }

    // ---- types ----

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(
                Kw::Void
                    | Kw::Char
                    | Kw::Int
                    | Kw::Float
                    | Kw::Double
                    | Kw::Struct
                    | Kw::Enum
                    | Kw::Unsigned
                    | Kw::Long
                    | Kw::Short
                    | Kw::Volatile
                    | Kw::Const
            )
        )
    }

    fn starts_decl(&self) -> bool {
        self.starts_type() || matches!(self.peek(), Tok::Kw(Kw::Static | Kw::Extern | Kw::Register))
    }

    /// Parses declaration specifiers: storage class + qualifiers + base type.
    fn decl_specifiers(&mut self) -> Result<(StorageClass, QualType), Diagnostic> {
        let mut storage = StorageClass::None;
        let mut volatile = false;
        let mut base: Option<CType> = None;
        let mut saw_int_modifier = false;
        loop {
            match self.peek() {
                Tok::Kw(Kw::Static) => {
                    self.bump();
                    storage = StorageClass::Static;
                }
                Tok::Kw(Kw::Extern) => {
                    self.bump();
                    storage = StorageClass::Extern;
                }
                Tok::Kw(Kw::Register) => {
                    self.bump();
                    storage = StorageClass::Register;
                }
                Tok::Kw(Kw::Volatile) => {
                    self.bump();
                    volatile = true;
                }
                Tok::Kw(Kw::Const) => {
                    self.bump();
                }
                Tok::Kw(Kw::Unsigned | Kw::Long | Kw::Short) => {
                    self.bump();
                    saw_int_modifier = true;
                }
                Tok::Kw(Kw::Void) => {
                    self.bump();
                    base = Some(CType::Void);
                }
                Tok::Kw(Kw::Char) => {
                    self.bump();
                    base = Some(CType::Char);
                }
                Tok::Kw(Kw::Int) => {
                    self.bump();
                    base = Some(CType::Int);
                }
                Tok::Kw(Kw::Float) => {
                    self.bump();
                    base = Some(CType::Float);
                }
                Tok::Kw(Kw::Double) => {
                    self.bump();
                    base = Some(CType::Double);
                }
                Tok::Kw(Kw::Struct) => {
                    self.bump();
                    let name = self.ident()?;
                    base = Some(CType::Struct(name));
                }
                Tok::Kw(Kw::Enum) => {
                    self.bump();
                    // optional tag; enums are plain ints in this front end
                    if matches!(self.peek(), Tok::Ident(_)) {
                        self.bump();
                    }
                    base = Some(CType::Int);
                }
                _ => break,
            }
        }
        let ty = match base {
            Some(t) => t,
            None if saw_int_modifier => CType::Int,
            None => return Err(self.err("expected a type")),
        };
        Ok((storage, QualType { ty, volatile }))
    }

    /// Parses a declarator: pointers, name, array/function suffixes.
    /// Returns `(name, type, params_if_function)`.
    #[allow(clippy::type_complexity)]
    fn declarator(
        &mut self,
        base: QualType,
    ) -> Result<(String, QualType, Option<Vec<Param>>), Diagnostic> {
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            let mut volatile = false;
            while matches!(self.peek(), Tok::Kw(Kw::Volatile | Kw::Const)) {
                if self.eat_kw(Kw::Volatile) {
                    volatile = true;
                } else {
                    self.bump();
                }
            }
            ty = ty.ptr();
            ty.volatile = volatile;
        }
        let name = self.ident()?;
        if self.eat_punct(Punct::LParen) {
            let params = self.param_list()?;
            return Ok((name, ty, Some(params)));
        }
        // Array suffixes: e.g. a[4][4] builds Array(Array(base,4),4) with
        // the *outermost* bracket as the outermost array.
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            if self.eat_punct(Punct::RBracket) {
                dims.push(None);
            } else {
                let n = self.const_int_expr()?;
                if n < 0 {
                    return Err(self.err("negative array length"));
                }
                self.expect_punct(Punct::RBracket)?;
                dims.push(Some(n as usize));
            }
        }
        for d in dims.into_iter().rev() {
            ty = QualType::plain(CType::Array(Box::new(ty), d));
        }
        Ok((name, ty, None))
    }

    fn param_list(&mut self) -> Result<Vec<Param>, Diagnostic> {
        let mut params = Vec::new();
        if self.eat_punct(Punct::RParen) {
            return Ok(params);
        }
        // `(void)` means no parameters
        if *self.peek() == Tok::Kw(Kw::Void) && *self.peek2() == Tok::Punct(Punct::RParen) {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            let (_storage, base) = self.decl_specifiers()?;
            let mut ty = base;
            while self.eat_punct(Punct::Star) {
                let mut volatile = false;
                while matches!(self.peek(), Tok::Kw(Kw::Volatile | Kw::Const)) {
                    if self.eat_kw(Kw::Volatile) {
                        volatile = true;
                    } else {
                        self.bump();
                    }
                }
                ty = ty.ptr();
                ty.volatile = volatile;
            }
            let name = match self.peek() {
                Tok::Ident(_) => Some(self.ident()?),
                _ => None,
            };
            // array parameter adjusts to pointer
            while self.eat_punct(Punct::LBracket) {
                if !self.eat_punct(Punct::RBracket) {
                    let _ = self.const_int_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                }
                ty = ty.ptr();
            }
            params.push(Param { name, ty });
            if self.eat_punct(Punct::RParen) {
                return Ok(params);
            }
            self.expect_punct(Punct::Comma)?;
        }
    }

    /// A limited constant-expression evaluator for array bounds.
    fn const_int_expr(&mut self) -> Result<i64, Diagnostic> {
        let e = self.conditional()?;
        const_eval(&e).ok_or_else(|| self.err("array length must be a constant expression"))
    }

    /// Parses an abstract type name (for casts and `sizeof`).
    fn type_name(&mut self) -> Result<QualType, Diagnostic> {
        let (_s, base) = self.decl_specifiers()?;
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            let mut volatile = false;
            while matches!(self.peek(), Tok::Kw(Kw::Volatile | Kw::Const)) {
                if self.eat_kw(Kw::Volatile) {
                    volatile = true;
                } else {
                    self.bump();
                }
            }
            ty = ty.ptr();
            ty.volatile = volatile;
        }
        Ok(ty)
    }

    // ---- top level ----

    fn translation_unit(&mut self) -> Result<TranslationUnit, Diagnostic> {
        let mut items = Vec::new();
        while *self.peek() != Tok::Eof {
            self.item(&mut items)?;
        }
        Ok(TranslationUnit { items })
    }

    /// Fail-soft top level: every item error is recorded and the parser
    /// resynchronizes at the next plausible declaration start.
    fn translation_unit_recovering(&mut self) -> TranslationUnit {
        let mut items = Vec::new();
        while *self.peek() != Tok::Eof {
            if self.sink.at_limit() {
                self.sink.emit(Diagnostic::remark(
                    "too many errors; giving up on the rest of the file",
                    self.span(),
                ));
                break;
            }
            let before = self.pos;
            if let Err(d) = self.item(&mut items) {
                self.sink.emit(d);
                self.sync_top_level(before);
            }
        }
        TranslationUnit { items }
    }

    /// Skips to the next top-level synchronization point: past a `;` or
    /// the `}` that closes the offending definition, or up to a token
    /// that starts a declaration. Always consumes at least one token so
    /// recovery can never loop forever on garbage input.
    fn sync_top_level(&mut self, before: usize) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    break;
                }
                Tok::Punct(Punct::LBrace) => {
                    depth += 1;
                    self.bump();
                }
                Tok::Punct(Punct::RBrace) => {
                    self.bump();
                    if depth <= 1 {
                        break;
                    }
                    depth -= 1;
                }
                _ if depth == 0 && self.pos > before && self.starts_decl() => break,
                _ => {
                    self.bump();
                }
            }
        }
        if self.pos == before && *self.peek() != Tok::Eof {
            self.bump();
        }
    }

    /// Statement-level synchronization: skip to just past the next `;`
    /// (balancing braces opened inside the bad statement) or stop at the
    /// `}` that closes the enclosing block, which the block loop eats.
    fn sync_stmt(&mut self, before: usize) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    break;
                }
                Tok::Punct(Punct::LBrace) => {
                    depth += 1;
                    self.bump();
                }
                Tok::Punct(Punct::RBrace) => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
        if self.pos == before && *self.peek() != Tok::Eof {
            self.bump();
        }
    }

    fn item(&mut self, items: &mut Vec<Item>) -> Result<(), Diagnostic> {
        let span = self.span();
        let _ = span;
        // enum definition? `enum [Tag] { A, B = 5, C };`
        if *self.peek() == Tok::Kw(Kw::Enum) {
            let brace_at = if matches!(self.peek2(), Tok::Ident(_)) {
                2
            } else {
                1
            };
            if self.toks[(self.pos + brace_at).min(self.toks.len() - 1)].tok
                == Tok::Punct(Punct::LBrace)
            {
                self.bump(); // enum
                if matches!(self.peek(), Tok::Ident(_)) {
                    self.bump(); // tag
                }
                self.bump(); // {
                let mut next = 0i64;
                loop {
                    if self.eat_punct(Punct::RBrace) {
                        break;
                    }
                    let name = self.ident()?;
                    if self.eat_punct(Punct::Assign) {
                        next = self.const_int_expr()?;
                    }
                    self.enum_consts.insert(name, next);
                    next += 1;
                    if !self.eat_punct(Punct::Comma) {
                        self.expect_punct(Punct::RBrace)?;
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                return Ok(());
            }
        }
        let span = self.span();
        // struct definition?
        if *self.peek() == Tok::Kw(Kw::Struct) {
            if let Tok::Ident(_) = self.peek2() {
                if self.toks[(self.pos + 2).min(self.toks.len() - 1)].tok
                    == Tok::Punct(Punct::LBrace)
                {
                    self.bump(); // struct
                    let name = self.ident()?;
                    self.bump(); // {
                    let mut fields = Vec::new();
                    while !self.eat_punct(Punct::RBrace) {
                        let (_s, base) = self.decl_specifiers()?;
                        loop {
                            let (fname, fty, fparams) = self.declarator(base.clone())?;
                            if fparams.is_some() {
                                return Err(self.err("function fields are not supported"));
                            }
                            fields.push((fname, fty));
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::Semi)?;
                    }
                    self.expect_punct(Punct::Semi)?;
                    items.push(Item::Struct(StructDecl { name, fields, span }));
                    return Ok(());
                }
            }
        }
        let (storage, base) = self.decl_specifiers()?;
        let (name, ty, params) = self.declarator(base.clone())?;
        if let Some(params) = params {
            if self.eat_punct(Punct::Semi) {
                items.push(Item::Proto(FuncProto {
                    name,
                    ret: ty,
                    params,
                    span,
                }));
                return Ok(());
            }
            self.expect_punct(Punct::LBrace)?;
            let body = self.block_body()?;
            items.push(Item::Func(FuncDef {
                name,
                ret: ty,
                params,
                body,
                is_static: storage == StorageClass::Static,
                span,
            }));
            return Ok(());
        }
        // global variable declaration list
        let mut current = (name, ty);
        loop {
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.assign()?)
            } else {
                None
            };
            items.push(Item::Global(VarDecl {
                name: current.0,
                ty: current.1,
                storage,
                init,
                span,
            }));
            if self.eat_punct(Punct::Comma) {
                let (n2, t2, p2) = self.declarator(base.clone())?;
                if p2.is_some() {
                    return Err(self.err("function declarator in variable list"));
                }
                current = (n2, t2);
            } else {
                self.expect_punct(Punct::Semi)?;
                return Ok(());
            }
        }
    }

    // ---- statements ----

    fn block_body(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of file in block"));
            }
            let before = self.pos;
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(d) => {
                    if !self.recovering || self.sink.at_limit() {
                        return Err(d);
                    }
                    // fail-soft: one bad statement, one diagnostic, and
                    // parsing continues at the next statement boundary
                    self.sink.emit(d);
                    self.sync_stmt(before);
                }
            }
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        // label?
        if let (Tok::Ident(_), Tok::Punct(Punct::Colon)) = (self.peek(), self.peek2()) {
            let name = self.ident()?;
            self.bump(); // :
            let inner = self.stmt()?;
            return Ok(Stmt::Label(name, Box::new(inner)));
        }
        match self.peek().clone() {
            Tok::PragmaSafe => {
                self.bump();
                Ok(Stmt::PragmaSafe)
            }
            Tok::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_s = Box::new(self.stmt()?);
                let else_s = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_s,
                    else_s,
                })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if !self.eat_kw(Kw::While) {
                    return Err(self.err("expected `while` after do-body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == Tok::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let v = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return(v))
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::Kw(Kw::Goto) => {
                self.bump();
                let l = self.ident()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Goto(l))
            }
            Tok::Kw(Kw::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::LBrace)?;
                let mut body = Vec::new();
                while !self.eat_punct(Punct::RBrace) {
                    if *self.peek() == Tok::Eof {
                        return Err(self.err("unexpected end of file in switch"));
                    }
                    if self.eat_kw(Kw::Case) {
                        let v = self.const_int_expr()?;
                        self.expect_punct(Punct::Colon)?;
                        body.push(Stmt::Case(v));
                        continue;
                    }
                    if self.eat_kw(Kw::Default) {
                        self.expect_punct(Punct::Colon)?;
                        body.push(Stmt::Default);
                        continue;
                    }
                    body.push(self.stmt()?);
                }
                Ok(Stmt::Switch { cond, body })
            }
            Tok::Kw(Kw::Case | Kw::Default) => Err(self
                .err("`case`/`default` labels are only supported directly inside a switch body")),
            _ if self.starts_decl() => {
                let span = self.span();
                let (storage, base) = self.decl_specifiers()?;
                let mut decls = Vec::new();
                loop {
                    let (name, ty, params) = self.declarator(base.clone())?;
                    if params.is_some() {
                        return Err(self.err("local function declarations are not supported"));
                    }
                    let init = if self.eat_punct(Punct::Assign) {
                        Some(self.assign()?)
                    } else {
                        None
                    };
                    decls.push(VarDecl {
                        name,
                        ty,
                        storage,
                        init,
                        span,
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Decl(decls))
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        let mut e = self.assign()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.assign()?;
            e = Expr::new(ExprKind::Comma(Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn assign(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Tok::Punct(Punct::Assign) => None,
            Tok::Punct(Punct::PlusAssign) => Some(CBinOp::Add),
            Tok::Punct(Punct::MinusAssign) => Some(CBinOp::Sub),
            Tok::Punct(Punct::StarAssign) => Some(CBinOp::Mul),
            Tok::Punct(Punct::SlashAssign) => Some(CBinOp::Div),
            Tok::Punct(Punct::PercentAssign) => Some(CBinOp::Rem),
            Tok::Punct(Punct::AmpAssign) => Some(CBinOp::BitAnd),
            Tok::Punct(Punct::PipeAssign) => Some(CBinOp::BitOr),
            Tok::Punct(Punct::CaretAssign) => Some(CBinOp::BitXor),
            Tok::Punct(Punct::ShlAssign) => Some(CBinOp::Shl),
            Tok::Punct(Punct::ShrAssign) => Some(CBinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign()?; // right associative
        Ok(Expr::new(
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn conditional(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        let cond = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then_e = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_e = self.conditional()?;
            Ok(Expr::new(
                ExprKind::Cond {
                    cond: Box::new(cond),
                    then_e: Box::new(then_e),
                    else_e: Box::new(else_e),
                },
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: u8) -> Option<CBinOp> {
        let p = match self.peek() {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        let (op, l) = match p {
            Punct::PipePipe => (CBinOp::LogOr, 0),
            Punct::AmpAmp => (CBinOp::LogAnd, 1),
            Punct::Pipe => (CBinOp::BitOr, 2),
            Punct::Caret => (CBinOp::BitXor, 3),
            Punct::Amp => (CBinOp::BitAnd, 4),
            Punct::EqEq => (CBinOp::Eq, 5),
            Punct::Ne => (CBinOp::Ne, 5),
            Punct::Lt => (CBinOp::Lt, 6),
            Punct::Gt => (CBinOp::Gt, 6),
            Punct::Le => (CBinOp::Le, 6),
            Punct::Ge => (CBinOp::Ge, 6),
            Punct::Shl => (CBinOp::Shl, 7),
            Punct::Shr => (CBinOp::Shr, 7),
            Punct::Plus => (CBinOp::Add, 8),
            Punct::Minus => (CBinOp::Sub, 8),
            Punct::Star => (CBinOp::Mul, 9),
            Punct::Slash => (CBinOp::Div, 9),
            Punct::Percent => (CBinOp::Rem, 9),
            _ => return None,
        };
        (l == level).then_some(op)
    }

    fn binary(&mut self, level: u8) -> Result<Expr, Diagnostic> {
        if level > 9 {
            return self.unary();
        }
        let span = self.span();
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Punct(Punct::PlusPlus) => {
                self.bump();
                let arg = self.unary()?;
                Ok(Expr::new(
                    ExprKind::IncDec {
                        inc: true,
                        prefix: true,
                        arg: Box::new(arg),
                    },
                    span,
                ))
            }
            Tok::Punct(Punct::MinusMinus) => {
                self.bump();
                let arg = self.unary()?;
                Ok(Expr::new(
                    ExprKind::IncDec {
                        inc: false,
                        prefix: true,
                        arg: Box::new(arg),
                    },
                    span,
                ))
            }
            Tok::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Unary(CUnOp::Neg, Box::new(self.cast_expr()?)),
                    span,
                ))
            }
            Tok::Punct(Punct::Plus) => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Unary(CUnOp::Plus, Box::new(self.cast_expr()?)),
                    span,
                ))
            }
            Tok::Punct(Punct::Bang) => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Unary(CUnOp::Not, Box::new(self.cast_expr()?)),
                    span,
                ))
            }
            Tok::Punct(Punct::Tilde) => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Unary(CUnOp::BitNot, Box::new(self.cast_expr()?)),
                    span,
                ))
            }
            Tok::Punct(Punct::Star) => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Unary(CUnOp::Deref, Box::new(self.cast_expr()?)),
                    span,
                ))
            }
            Tok::Punct(Punct::Amp) => {
                self.bump();
                Ok(Expr::new(
                    ExprKind::Unary(CUnOp::AddrOf, Box::new(self.cast_expr()?)),
                    span,
                ))
            }
            Tok::Kw(Kw::Sizeof) => {
                self.bump();
                if *self.peek() == Tok::Punct(Punct::LParen) && self.type_follows_paren() {
                    self.bump();
                    let ty = self.type_name()?;
                    self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(ExprKind::SizeofTy(ty), span))
                } else {
                    let e = self.unary()?;
                    Ok(Expr::new(ExprKind::SizeofExpr(Box::new(e)), span))
                }
            }
            _ => self.cast_expr(),
        }
    }

    fn type_follows_paren(&self) -> bool {
        matches!(
            self.peek2(),
            Tok::Kw(
                Kw::Void
                    | Kw::Char
                    | Kw::Int
                    | Kw::Float
                    | Kw::Double
                    | Kw::Struct
                    | Kw::Enum
                    | Kw::Unsigned
                    | Kw::Long
                    | Kw::Short
                    | Kw::Volatile
                    | Kw::Const
            )
        )
    }

    fn cast_expr(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        if *self.peek() == Tok::Punct(Punct::LParen) && self.type_follows_paren() {
            self.bump();
            let ty = self.type_name()?;
            self.expect_punct(Punct::RParen)?;
            let arg = self.cast_expr()?;
            return Ok(Expr::new(ExprKind::Cast(ty, Box::new(arg)), span));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                Tok::Punct(Punct::Dot) => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: false,
                        },
                        span,
                    );
                }
                Tok::Punct(Punct::Arrow) => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: true,
                        },
                        span,
                    );
                }
                Tok::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec {
                            inc: true,
                            prefix: false,
                            arg: Box::new(e),
                        },
                        span,
                    );
                }
                Tok::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec {
                            inc: false,
                            prefix: false,
                            arg: Box::new(e),
                        },
                        span,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::new(ExprKind::IntLit(v), span)),
            Tok::FloatLit(v, single) => Ok(Expr::new(ExprKind::FloatLit(v, single), span)),
            Tok::CharLit(v) => Ok(Expr::new(ExprKind::CharLit(v), span)),
            Tok::StrLit(s) => Ok(Expr::new(ExprKind::StrLit(s), span)),
            Tok::Ident(name) => {
                if let Some(v) = self.enum_consts.get(&name) {
                    return Ok(Expr::new(ExprKind::IntLit(*v), span));
                }
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assign()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    Ok(Expr::new(ExprKind::Call { name, args }, span))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            Tok::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::new(
                format!("expected expression, found `{other}`"),
                span,
            )),
        }
    }
}

/// Evaluates a constant integer expression (array bounds). Supports
/// literals, `+ - * / %` `<< >>` and unary minus — everything the corpus
/// needs.
fn const_eval(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) | ExprKind::CharLit(v) => Some(*v),
        ExprKind::Unary(CUnOp::Neg, a) => Some(-const_eval(a)?),
        ExprKind::Binary(op, a, b) => {
            let (x, y) = (const_eval(a)?, const_eval(b)?);
            Some(match op {
                CBinOp::Add => x + y,
                CBinOp::Sub => x - y,
                CBinOp::Mul => x * y,
                CBinOp::Div => x.checked_div(y)?,
                CBinOp::Rem => x.checked_rem(y)?,
                CBinOp::Shl => x << (y & 31),
                CBinOp::Shr => x >> (y & 31),
                _ => return None,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_daxpy() {
        let src = r#"
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
    if (n <= 0)
        return;
    if (alpha == 0)
        return;
    for (; n; n--)
        *x++ = *y++ + alpha * *z++;
}
"#;
        let tu = parse(src).unwrap();
        assert_eq!(tu.items.len(), 1);
        match &tu.items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "daxpy");
                assert_eq!(f.params.len(), 5);
                assert_eq!(f.body.len(), 3);
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn parses_volatile_poll_loop() {
        let src = "volatile int keyboard_status;\nvoid f(void) { keyboard_status = 0; while (!keyboard_status); }";
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Global(g) => {
                assert!(g.ty.volatile);
                assert_eq!(g.name, "keyboard_status");
            }
            _ => panic!("expected global"),
        }
    }

    #[test]
    fn parses_backsolve() {
        let src = r#"
void backsolve(float x[100], float y[100], float z[100], int n)
{
    float *p, *q;
    int i;
    p = &x[1];
    q = &x[0];
    for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
}
"#;
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => {
                // array params adjusted to pointers
                assert!(matches!(f.params[0].ty.ty, CType::Ptr(_)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn struct_with_embedded_array() {
        let src = r#"
struct matrix { float m[4][4]; int tag; };
struct matrix g;
"#;
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Struct(s) => {
                assert_eq!(s.name, "matrix");
                assert_eq!(s.fields.len(), 2);
                match &s.fields[0].1.ty {
                    CType::Array(inner, Some(4)) => {
                        assert!(matches!(inner.ty, CType::Array(_, Some(4))));
                    }
                    other => panic!("bad field type {other:?}"),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_and_associativity() {
        let e = parse_expr("a + b * c").unwrap();
        match e.kind {
            ExprKind::Binary(CBinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(CBinOp::Mul, ..)));
            }
            _ => panic!(),
        }
        // assignment is right-associative
        let e2 = parse_expr("a = b = c").unwrap();
        match e2.kind {
            ExprKind::Assign { rhs, .. } => {
                assert!(matches!(rhs.kind, ExprKind::Assign { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn conditional_and_logical() {
        let e = parse_expr("a ? b : c ? d : e").unwrap();
        match e.kind {
            ExprKind::Cond { else_e, .. } => {
                assert!(matches!(else_e.kind, ExprKind::Cond { .. }));
            }
            _ => panic!(),
        }
        let e2 = parse_expr("a && b || c").unwrap();
        assert!(matches!(e2.kind, ExprKind::Binary(CBinOp::LogOr, ..)));
    }

    #[test]
    fn pointer_walk_expression() {
        let e = parse_expr("*a++ = *b++").unwrap();
        match e.kind {
            ExprKind::Assign { lhs, rhs, op: None } => {
                assert!(matches!(lhs.kind, ExprKind::Unary(CUnOp::Deref, _)));
                assert!(matches!(rhs.kind, ExprKind::Unary(CUnOp::Deref, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn casts_vs_parens() {
        let e = parse_expr("(float)n").unwrap();
        assert!(matches!(e.kind, ExprKind::Cast(..)));
        let e2 = parse_expr("(n)").unwrap();
        assert!(matches!(e2.kind, ExprKind::Ident(_)));
        let e3 = parse_expr("(float *)p").unwrap();
        match e3.kind {
            ExprKind::Cast(ty, _) => assert!(matches!(ty.ty, CType::Ptr(_))),
            _ => panic!(),
        }
    }

    #[test]
    fn sizeof_forms() {
        assert!(matches!(
            parse_expr("sizeof(float)").unwrap().kind,
            ExprKind::SizeofTy(_)
        ));
        assert!(matches!(
            parse_expr("sizeof x").unwrap().kind,
            ExprKind::SizeofExpr(_)
        ));
        assert!(matches!(
            parse_expr("sizeof(x)").unwrap().kind,
            ExprKind::SizeofExpr(_)
        ));
    }

    #[test]
    fn compound_assignment_ops() {
        let e = parse_expr("x += 2").unwrap();
        match e.kind {
            ExprKind::Assign {
                op: Some(CBinOp::Add),
                ..
            } => {}
            _ => panic!(),
        }
    }

    #[test]
    fn comma_operator() {
        let e = parse_expr("a = 1, b = 2").unwrap();
        assert!(matches!(e.kind, ExprKind::Comma(..)));
    }

    #[test]
    fn member_access() {
        let e = parse_expr("m.v[2]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index(..)));
        let e2 = parse_expr("p->next").unwrap();
        assert!(matches!(e2.kind, ExprKind::Member { arrow: true, .. }));
    }

    #[test]
    fn goto_and_labels() {
        let src = "void f(void) { int i; i = 0; loop: i++; if (i < 10) goto loop; }";
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => {
                assert!(f
                    .body
                    .iter()
                    .any(|s| matches!(s, Stmt::Label(name, _) if name == "loop")));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn multi_declarator_lines() {
        let src = "void f(void) { float *p, *q, r; p = q; r = 0; }";
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => {
                // first statement declares three variables in one group
                match &f.body[0] {
                    Stmt::Decl(decls) => assert_eq!(decls.len(), 3),
                    other => panic!("expected decl group, got {other:?}"),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn pragma_safe_statement() {
        let src = "void f(float *a, int n) {\n#pragma safe\nwhile (n) { *a++ = 0; n--; } }";
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => {
                assert!(matches!(f.body[0], Stmt::PragmaSafe));
                assert!(matches!(f.body[1], Stmt::While { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn prototypes() {
        let src = "void daxpy(float *x, float *y, float *z, float alpha, int n);";
        let tu = parse(src).unwrap();
        assert!(matches!(&tu.items[0], Item::Proto(p) if p.params.len() == 5));
        let src2 = "int f(void);";
        let tu2 = parse(src2).unwrap();
        assert!(matches!(&tu2.items[0], Item::Proto(p) if p.params.is_empty()));
    }

    #[test]
    fn error_reports_position() {
        let err = parse("void f(void) { int x; x = ; }").unwrap_err();
        assert!(err.span.line >= 1);
        assert!(err.message.contains("expected expression"));
    }

    #[test]
    fn static_function_flag() {
        let tu = parse("static int helper(int a) { return a; }").unwrap();
        assert!(matches!(&tu.items[0], Item::Func(f) if f.is_static));
    }

    #[test]
    fn const_array_bounds() {
        let tu = parse("float a[4*25];").unwrap();
        match &tu.items[0] {
            Item::Global(g) => match &g.ty.ty {
                CType::Array(_, Some(100)) => {}
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn switch_statement_parses() {
        let src = r#"
int f(int x)
{
    switch (x) {
    case 1:
        return 10;
    case 2 + 1:
        x = 0;
        break;
    default:
        return -1;
    }
    return x;
}
"#;
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => match &f.body[0] {
                Stmt::Switch { body, .. } => {
                    assert!(matches!(body[0], Stmt::Case(1)));
                    assert!(body.iter().any(|s| matches!(s, Stmt::Case(3))));
                    assert!(body.iter().any(|s| matches!(s, Stmt::Default)));
                }
                other => panic!("expected switch, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn enums_resolve_to_constants() {
        let src = r#"
enum color { RED, GREEN = 5, BLUE };
int f(void)
{
    enum color c;
    c = BLUE;
    return c + RED + GREEN;
}
"#;
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => {
                // c = BLUE parsed as c = 6
                let text = format!("{:?}", f.body);
                assert!(text.contains("IntLit(6)"), "{text}");
                assert!(text.contains("IntLit(5)"), "{text}");
                assert!(text.contains("IntLit(0)"), "{text}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn enum_type_is_int() {
        let tu = parse("enum e { A }; enum e g;").unwrap();
        match &tu.items[0] {
            Item::Global(g) => assert_eq!(g.ty.ty, CType::Int),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stray_case_is_an_error() {
        let err = parse("void f(int x) { case 1: x = 0; }").unwrap_err();
        assert!(err.message.contains("case"), "{err}");
    }

    #[test]
    fn dangling_else_binds_inner() {
        let src = "void f(int a, int b) { if (a) if (b) return; else a = 1; }";
        let tu = parse(src).unwrap();
        match &tu.items[0] {
            Item::Func(f) => match &f.body[0] {
                Stmt::If { else_s, then_s, .. } => {
                    assert!(else_s.is_none());
                    assert!(matches!(**then_s, Stmt::If { ref else_s, .. } if else_s.is_some()));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }
}
