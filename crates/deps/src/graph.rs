//! The statement-level dependence graph of a DO loop and its SCC
//! condensation — the structure driving vectorization (§5), register
//! promotion, instruction scheduling and strength reduction (§6).

use crate::affine::{decompose, Affine};
use crate::test::{test_pair, Verdict};
use std::collections::HashMap;
use titanc_il::{Expr, ExprId, ExprPool, LValue, Procedure, StmtId, StmtKind, VarId};
use titanc_opt::util::register_candidate;

/// The kind of a dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepKind {
    /// Write → read (flow).
    True,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
}

/// One dependence edge between top-level body statements.
#[derive(Clone, Debug)]
pub struct DepEdge {
    /// Source statement (index into the body).
    pub from: usize,
    /// Sink statement (index into the body).
    pub to: usize,
    /// Flow/anti/output.
    pub kind: DepKind,
    /// Verdict of the subscript test (distance when known).
    pub verdict: Verdict,
    /// True when the dependence crosses iterations.
    pub carried: bool,
    /// True when the edge arises from a scalar variable rather than
    /// memory.
    pub scalar: bool,
}

/// A memory reference found in a statement.
#[derive(Clone, Debug)]
pub struct MemRef {
    /// Top-level statement index.
    pub stmt: usize,
    /// Store (true) or load.
    pub is_write: bool,
    /// Affine form, if the address was analyzable.
    pub affine: Option<Affine>,
    /// Access is volatile.
    pub volatile: bool,
}

/// The dependence graph of one loop body.
#[derive(Debug)]
pub struct DepGraph {
    /// Number of top-level statements.
    pub n: usize,
    /// All edges.
    pub edges: Vec<DepEdge>,
    /// All memory references.
    pub refs: Vec<MemRef>,
    /// Statements that can never be vectorized (calls, gotos, volatile
    /// accesses, nested control flow, non-affine memory references).
    pub pinned: Vec<bool>,
}

/// Aliasing regime for unprovable base pairs (§9: "a compiler option that
/// states that pointer parameters have Fortran semantics").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Aliasing {
    /// C semantics: distinct pointer bases may alias.
    C,
    /// Fortran parameter semantics: distinct pointer-parameter bases do
    /// not alias (and never alias named arrays).
    Fortran,
}

impl DepGraph {
    /// Builds the dependence graph for the body of a DO loop with loop
    /// variable `lv` and optional constant trip count, assuming unit
    /// positive stride (`lo = 0, step = 1` iteration space). Prefer
    /// [`DepGraph::build_for_loop`] when the loop's bounds are at hand.
    pub fn build(
        proc: &Procedure,
        body: &[StmtId],
        lv: VarId,
        trips: Option<i64>,
        aliasing: Aliasing,
    ) -> DepGraph {
        DepGraph::build_for_loop(proc, body, lv, Some(0), 1, trips, aliasing)
    }

    /// Builds the dependence graph in *iteration space*: references are
    /// tested after substituting `lv = lo + k·step`, so distances are in
    /// iterations — correct for countdown loops and non-unit strides.
    /// `lo_const` is the constant lower bound if known.
    pub fn build_for_loop(
        proc: &Procedure,
        body: &[StmtId],
        lv: VarId,
        lo_const: Option<i64>,
        step: i64,
        trips: Option<i64>,
        aliasing: Aliasing,
    ) -> DepGraph {
        let n = body.len();
        let mut refs = Vec::new();
        let mut pinned = vec![false; n];

        for (i, &s) in body.iter().enumerate() {
            match &proc.stmts[s] {
                StmtKind::Assign { lhs, rhs } => {
                    match lhs {
                        LValue::Var(_) => {}
                        LValue::Deref { addr, volatile, .. } => {
                            let affine = decompose(proc, body, lv, *addr);
                            if affine.is_none() || *volatile {
                                pinned[i] = true;
                            }
                            refs.push(MemRef {
                                stmt: i,
                                is_write: true,
                                affine,
                                volatile: *volatile,
                            });
                        }
                        LValue::Section { .. } => {
                            // an already-vectorized statement: its writes
                            // are unanalyzable here but must still
                            // constrain statement ordering
                            pinned[i] = true;
                            refs.push(MemRef {
                                stmt: i,
                                is_write: true,
                                affine: None,
                                volatile: false,
                            });
                        }
                    }
                    collect_loads(proc, body, lv, *rhs, i, &mut refs, &mut pinned);
                    for ae in lhs.address_exprs() {
                        for c in proc.exprs[ae].child_ids() {
                            collect_loads(proc, body, lv, c, i, &mut refs, &mut pinned);
                        }
                    }
                }
                _ => {
                    // calls, control flow, returns: pinned; still collect
                    // every memory reference in the whole statement tree
                    // (stores inside an If body constrain distribution!)
                    pinned[i] = true;
                    collect_refs_deep(proc, body, lv, s, i, &mut refs, &mut pinned);
                }
            }
        }

        let mut edges = Vec::new();
        // memory dependences
        for (ri, r1) in refs.iter().enumerate() {
            for r2 in refs.iter().skip(ri) {
                if !r1.is_write && !r2.is_write {
                    continue;
                }
                if r1.stmt == r2.stmt && std::ptr::eq(r1, r2) {
                    continue;
                }
                let verdict = classify_pair(&proc.exprs, r1, r2, lo_const, step, trips, aliasing);
                if verdict.may_depend() {
                    push_mem_edges(&mut edges, r1, r2, verdict);
                }
            }
        }
        // scalar dependences between top-level statements
        scalar_edges(proc, body, lv, &mut edges);

        DepGraph {
            n,
            edges,
            refs,
            pinned,
        }
    }

    /// Strongly connected components of the statement graph, returned in a
    /// topological order of the condensation (sources first). Statements
    /// with no edges form singleton components.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for e in &self.edges {
            if e.from != e.to {
                succ[e.from].push(e.to);
            }
        }
        let comps = tarjan(self.n, &succ);
        stable_topo(comps, &succ)
    }

    /// True when statement `i` has a carried true or output self-dependence
    /// (which forbids vectorizing it even as a singleton component;
    /// carried *anti* self-dependences are fine because vector statements
    /// gather all loads before scattering stores).
    pub fn has_carried_self_cycle(&self, i: usize) -> bool {
        self.edges.iter().any(|e| {
            e.from == i
                && e.to == i
                && e.carried
                && matches!(e.kind, DepKind::True | DepKind::Output)
        })
    }

    /// True when no edge of the graph is loop-carried — the loop's
    /// iterations are independent and may be spread across processors.
    pub fn iterations_independent(&self) -> bool {
        self.edges.iter().all(|e| !e.carried)
    }

    /// The carried **true** memory dependences with a known distance —
    /// the §6 register-promotion candidates.
    pub fn carried_true_distances(&self) -> Vec<(&DepEdge, i64)> {
        self.edges
            .iter()
            .filter_map(|e| match (e.kind, e.scalar, e.verdict) {
                (DepKind::True, false, Verdict::Distance(d)) if d != 0 => Some((e, d)),
                _ => None,
            })
            .collect()
    }
}

/// Collects every load and store in a statement tree (used for pinned
/// statements whose nested blocks still constrain statement ordering).
fn collect_refs_deep(
    proc: &Procedure,
    body: &[StmtId],
    lv: VarId,
    s: StmtId,
    stmt: usize,
    refs: &mut Vec<MemRef>,
    pinned: &mut [bool],
) {
    if let StmtKind::Assign { lhs, .. } = &proc.stmts[s] {
        match lhs {
            LValue::Deref { addr, volatile, .. } => {
                refs.push(MemRef {
                    stmt,
                    is_write: true,
                    affine: decompose(proc, body, lv, *addr),
                    volatile: *volatile,
                });
            }
            LValue::Section { .. } => {
                refs.push(MemRef {
                    stmt,
                    is_write: true,
                    affine: None,
                    volatile: false,
                });
            }
            LValue::Var(_) => {}
        }
    }
    if matches!(proc.stmts[s], StmtKind::Call { .. }) {
        // worst case: the callee may read or write anything
        refs.push(MemRef {
            stmt,
            is_write: true,
            affine: None,
            volatile: false,
        });
    }
    for e in proc.stmts[s].exprs() {
        collect_loads(proc, body, lv, e, stmt, refs, pinned);
    }
    for b in proc.stmts[s].blocks() {
        for &inner in b {
            collect_refs_deep(proc, body, lv, inner, stmt, refs, pinned);
        }
    }
}

fn collect_loads(
    proc: &Procedure,
    body: &[StmtId],
    lv: VarId,
    e: ExprId,
    stmt: usize,
    refs: &mut Vec<MemRef>,
    pinned: &mut [bool],
) {
    match proc.exprs[e] {
        Expr::Load { addr, volatile, .. } => {
            let affine = decompose(proc, body, lv, addr);
            if affine.is_none() || volatile {
                pinned[stmt] = true;
            }
            refs.push(MemRef {
                stmt,
                is_write: false,
                affine,
                volatile,
            });
        }
        Expr::Section { .. } => {
            // vector reads: unanalyzable, but they order against writes
            pinned[stmt] = true;
            refs.push(MemRef {
                stmt,
                is_write: false,
                affine: None,
                volatile: false,
            });
        }
        _ => {}
    }
    for c in proc.exprs[e].child_ids() {
        collect_loads(proc, body, lv, c, stmt, refs, pinned);
    }
}

fn classify_pair(
    exprs: &ExprPool,
    r1: &MemRef,
    r2: &MemRef,
    lo_const: Option<i64>,
    step: i64,
    trips: Option<i64>,
    aliasing: Aliasing,
) -> Verdict {
    match (&r1.affine, &r2.affine) {
        (Some(a1), Some(a2)) => {
            if a1.same_base(a2) {
                test_in_iteration_space(a1, a2, lo_const, step, trips)
            } else {
                bases_may_alias(exprs, a1, a2, aliasing)
            }
        }
        _ => Verdict::Unknown,
    }
}

/// Substitutes `lv = lo + k·step` so [`test_pair`] operates on the
/// iteration number `k`: `base + coeff·lv + off` becomes
/// `base + (coeff·step)·k + (off + coeff·lo)`.
fn test_in_iteration_space(
    a1: &crate::affine::Affine,
    a2: &crate::affine::Affine,
    lo_const: Option<i64>,
    step: i64,
    trips: Option<i64>,
) -> Verdict {
    if let Some(l0) = lo_const {
        let norm = |a: &crate::affine::Affine| crate::affine::Affine {
            terms: a.terms.clone(),
            coeff: a.coeff * step,
            offset: a.offset + a.coeff * l0,
        };
        return test_pair(&norm(a1), &norm(a2), trips);
    }
    // symbolic lower bound: the lo-dependent offsets cancel only when the
    // coefficients agree (strong SIV); otherwise stay conservative
    if a1.coeff == a2.coeff {
        let norm = |a: &crate::affine::Affine| crate::affine::Affine {
            terms: a.terms.clone(),
            coeff: a.coeff * step,
            offset: a.offset,
        };
        // equal coeff·lo terms cancel inside test_pair's delta
        if a1.coeff * step != 0 {
            let delta = norm(a1).offset - norm(a2).offset;
            let a = a1.coeff * step;
            if delta % a != 0 {
                return Verdict::Independent;
            }
            let d = delta / a;
            if let Some(n) = trips {
                if d.abs() >= n.max(0) {
                    return Verdict::Independent;
                }
            }
            return Verdict::Distance(d);
        }
        return test_pair(&norm(a1), &norm(a2), trips);
    }
    Verdict::Unknown
}

/// Distinct symbolic bases: named arrays never alias each other; under
/// Fortran parameter semantics distinct pointer bases don't either.
fn bases_may_alias(exprs: &ExprPool, a1: &Affine, a2: &Affine, aliasing: Aliasing) -> Verdict {
    // addresses rooted in different named arrays can never collide, even
    // when outer-loop terms ride along in the symbolic part
    if let (Some(x), Some(y)) = (a1.array_root(exprs), a2.array_root(exprs)) {
        if x != y {
            return Verdict::Independent;
        }
    }
    if aliasing == Aliasing::Fortran {
        // distinct bases (array vs pointer, pointer vs pointer) are
        // declared independent by the option
        return Verdict::Independent;
    }
    Verdict::Unknown
}

fn push_mem_edges(edges: &mut Vec<DepEdge>, r1: &MemRef, r2: &MemRef, verdict: Verdict) {
    let kind = match (r1.is_write, r2.is_write) {
        (true, false) => DepKind::True,
        (false, true) => DepKind::Anti,
        (true, true) => DepKind::Output,
        (false, false) => return,
    };
    // Edge direction: dependences flow with iteration/statement order.
    // For a known distance d: d > 0 means r1's iteration precedes r2's.
    match verdict {
        Verdict::Independent => {}
        Verdict::Distance(0) => {
            // loop-independent: direction follows statement order
            let (from, to, kind) = if r1.stmt <= r2.stmt {
                (r1.stmt, r2.stmt, kind)
            } else {
                (r2.stmt, r1.stmt, reverse(kind))
            };
            edges.push(DepEdge {
                from,
                to,
                kind,
                verdict,
                carried: false,
                scalar: false,
            });
        }
        Verdict::Distance(d) if d > 0 => {
            edges.push(DepEdge {
                from: r1.stmt,
                to: r2.stmt,
                kind,
                verdict,
                carried: true,
                scalar: false,
            });
        }
        Verdict::Distance(d) => {
            // negative distance: the dependence actually runs r2 → r1
            edges.push(DepEdge {
                from: r2.stmt,
                to: r1.stmt,
                kind: reverse(kind),
                verdict: Verdict::Distance(-d),
                carried: true,
                scalar: false,
            });
        }
        Verdict::Unknown => {
            // unknown: both directions, carried (worst case)
            edges.push(DepEdge {
                from: r1.stmt,
                to: r2.stmt,
                kind,
                verdict,
                carried: true,
                scalar: false,
            });
            if r1.stmt != r2.stmt {
                edges.push(DepEdge {
                    from: r2.stmt,
                    to: r1.stmt,
                    kind: reverse(kind),
                    verdict,
                    carried: true,
                    scalar: false,
                });
            }
        }
    }
}

fn reverse(kind: DepKind) -> DepKind {
    match kind {
        DepKind::True => DepKind::Anti,
        DepKind::Anti => DepKind::True,
        DepKind::Output => DepKind::Output,
    }
}

/// Scalar dependences: any two statements where one writes a register
/// candidate the other touches. Conservatively carried in both directions
/// (scalar cycles make a statement group sequential — accumulations stay
/// scalar).
fn scalar_edges(proc: &Procedure, body: &[StmtId], lv: VarId, edges: &mut Vec<DepEdge>) {
    let mut writes: HashMap<VarId, Vec<usize>> = HashMap::new();
    let mut reads: HashMap<VarId, Vec<usize>> = HashMap::new();
    for (i, &s) in body.iter().enumerate() {
        if let Some(v) = proc.stmts[s].defined_var() {
            if v != lv && register_candidate(proc, v) {
                writes.entry(v).or_default().push(i);
            }
        }
        let mut rs: Vec<VarId> = Vec::new();
        fn gather(proc: &Procedure, s: StmtId, out: &mut Vec<VarId>) {
            for e in proc.stmts[s].exprs() {
                out.extend(proc.exprs.vars_read(e));
            }
            for b in proc.stmts[s].blocks() {
                for &inner in b {
                    gather(proc, inner, out);
                }
            }
        }
        gather(proc, s, &mut rs);
        for v in rs {
            if v != lv && register_candidate(proc, v) {
                reads.entry(v).or_default().push(i);
            }
        }
    }
    for (v, ws) in &writes {
        let empty = Vec::new();
        let rs = reads.get(v).unwrap_or(&empty);
        for &w in ws {
            for &r in rs {
                push_scalar(edges, w, r, DepKind::True, w >= r);
                push_scalar(edges, r, w, DepKind::Anti, r >= w);
            }
            for &w2 in ws {
                if w != w2 {
                    push_scalar(edges, w, w2, DepKind::Output, w >= w2);
                }
            }
        }
    }
}

fn push_scalar(edges: &mut Vec<DepEdge>, from: usize, to: usize, kind: DepKind, carried: bool) {
    edges.push(DepEdge {
        from,
        to,
        kind,
        verdict: Verdict::Unknown,
        carried,
        scalar: true,
    });
}

/// Stable topological sort of Tarjan's condensation: sources first,
/// original statement order as the tie-break (so edgeless graphs keep
/// their textual order).
fn stable_topo(mut comps: Vec<Vec<usize>>, succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    // map node -> component index
    let mut comp_of = std::collections::HashMap::new();
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of.insert(v, ci);
        }
    }
    let k = comps.len();
    let mut preds_left = vec![0usize; k];
    let mut csucc: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (v, outs) in succ.iter().enumerate() {
        for &w in outs {
            let (a, b) = (comp_of[&v], comp_of[&w]);
            if a != b && !csucc[a].contains(&b) {
                csucc[a].push(b);
                preds_left[b] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..k).filter(|&c| preds_left[c] == 0).collect();
    let mut out = Vec::with_capacity(k);
    while !ready.is_empty() {
        // pick the ready component whose first statement is earliest
        ready.sort_by_key(|&c| comps[c].first().copied().unwrap_or(usize::MAX));
        let c = ready.remove(0);
        out.push(std::mem::take(&mut comps[c]));
        for &d in &csucc[c] {
            preds_left[d] -= 1;
            if preds_left[d] == 0 {
                ready.push(d);
            }
        }
    }
    out
}

/// Tarjan's SCC algorithm; components come out in reverse topological
/// order, so we reverse before returning (sources first).
fn tarjan(n: usize, succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        succ: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(v: usize, st: &mut State<'_>) {
        st.index[v] = Some(st.next);
        st.low[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in st.succ[v].iter() {
            if st.index[w].is_none() {
                strongconnect(w, st);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on_stack[w] {
                st.low[v] = st.low[v].min(st.index[w].unwrap());
            }
        }
        if st.low[v] == st.index[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let mut st = State {
        succ,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strongconnect(v, &mut st);
        }
    }
    st.out.reverse();
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::{Block, StmtKind};
    use titanc_lower::compile_to_il;
    use titanc_opt::{
        convert_while_loops, eliminate_dead_code, forward_substitute, induction_substitution,
    };

    /// Compile, convert, substitute, clean — then find the first DO loop.
    fn prep(src: &str) -> (Procedure, VarId, Block, Option<i64>) {
        let prog = compile_to_il(src).unwrap();
        let mut proc = prog.procs[0].clone();
        convert_while_loops(&mut proc);
        induction_substitution(&mut proc);
        forward_substitute(&mut proc);
        eliminate_dead_code(&mut proc);
        let mut found = None;
        proc.for_each_stmt(&mut |_, k| {
            if found.is_none() {
                if let StmtKind::DoLoop {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    ..
                } = k
                {
                    let trips = match (
                        proc.exprs.as_int(*lo),
                        proc.exprs.as_int(*hi),
                        proc.exprs.as_int(*step),
                    ) {
                        (Some(l), Some(h), Some(st)) if st != 0 => Some(((h - l + st) / st).max(0)),
                        _ => None,
                    };
                    found = Some((*var, body.clone(), trips));
                }
            }
        });
        let (lv, body, trips) = found.expect("DO loop");
        (proc, lv, body, trips)
    }

    #[test]
    fn independent_arrays_have_no_memory_edges() {
        let src = r#"
float a[100], b[100];
void f(void) { int i; for (i = 0; i < 100; i++) a[i] = b[i] + 1.0f; }
"#;
        let (proc, lv, body, trips) = prep(src);
        let g = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        assert!(
            g.edges
                .iter()
                .all(|e| e.scalar || !e.verdict.may_depend() || !e.carried),
            "{:?}",
            g.edges
        );
        assert!(g.iterations_independent(), "{:?}", g.edges);
    }

    #[test]
    fn backsolve_has_distance_one_flow_dep() {
        // §6: p[i] = z[i] * (y[i] - q[i]) with p = &x[1], q = &x[0]
        let src = r#"
float x[100], y[100], z[100];
void f(int n)
{
    float *p, *q;
    int i;
    p = &x[1];
    q = &x[0];
    for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
}
"#;
        let (proc, lv, body, trips) = prep(src);
        let g = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        let dists = g.carried_true_distances();
        assert_eq!(dists.len(), 1, "edges: {:#?}", g.edges);
        assert_eq!(
            dists[0].1, 1,
            "x[i+1] stored, x[i] read one iteration later"
        );
        assert!(!g.iterations_independent());
    }

    #[test]
    fn pointer_params_alias_under_c_not_under_fortran() {
        let src = r#"
void f(float *a, float *b, int n)
{
    int i;
    for (i = 0; i < n; i++)
        a[i] = b[i] + 1.0f;
}
"#;
        let (proc, lv, body, trips) = prep(src);
        let g_c = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        assert!(!g_c.iterations_independent(), "C pointers may alias");
        let g_f = DepGraph::build(&proc, &body, lv, trips, Aliasing::Fortran);
        assert!(g_f.iterations_independent(), "{:#?}", g_f.edges);
    }

    #[test]
    fn self_true_cycle_detected() {
        // x[i+1] = x[i] * 2: recurrence, not vectorizable
        let src = r#"
float x[100];
void f(int n) { int i; for (i = 0; i < n; i++) x[i + 1] = x[i] * 2.0f; }
"#;
        let (proc, lv, body, trips) = prep(src);
        let g = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        let store_stmt = body
            .iter()
            .position(|&s| proc.stmts[s].writes_memory())
            .unwrap();
        assert!(g.has_carried_self_cycle(store_stmt), "{:#?}", g.edges);
    }

    #[test]
    fn anti_self_dep_is_not_a_blocking_cycle() {
        // x[i] = x[i+1]: reads ahead, writes behind — vectorizable
        let src = r#"
float x[100];
void f(int n) { int i; for (i = 0; i < n; i++) x[i] = x[i + 1]; }
"#;
        let (proc, lv, body, trips) = prep(src);
        let g = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        let store_stmt = body
            .iter()
            .position(|&s| proc.stmts[s].writes_memory())
            .unwrap();
        assert!(
            !g.has_carried_self_cycle(store_stmt),
            "anti deps do not block: {:#?}",
            g.edges
        );
    }

    #[test]
    fn volatile_reference_pins_statement() {
        let src = r#"
volatile int port;
float x[100];
void f(int n) { int i; for (i = 0; i < n; i++) x[i] = port; }
"#;
        let (proc, lv, body, trips) = prep(src);
        let g = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        assert!(g.pinned.iter().any(|&p| p), "volatile access pins");
    }

    #[test]
    fn call_pins_statement() {
        let src = r#"
float g(float v);
float x[100];
void f(int n) { int i; for (i = 0; i < n; i++) x[i] = g(1.0f); }
"#;
        let (proc, lv, body, trips) = prep(src);
        let g = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        assert!(g.pinned.iter().any(|&p| p));
    }

    #[test]
    fn scc_topological_order() {
        // s0: t[i] = a[i]; s1: b[i] = t2[i] (independent arrays) — all
        // singleton SCCs in an order consistent with loop-independent deps
        let src = r#"
float a[100], b[100], t[100];
void f(void)
{
    int i;
    for (i = 0; i < 100; i++) {
        t[i] = a[i] + 1.0f;
        b[i] = t[i] * 2.0f;
    }
}
"#;
        let (proc, lv, body, trips) = prep(src);
        let g = DepGraph::build(&proc, &body, lv, trips, Aliasing::C);
        let sccs = g.sccs();
        // find positions of the two stores
        let pos_t = sccs.iter().position(|c| c.contains(&0)).unwrap();
        let pos_b = sccs
            .iter()
            .position(|c| c.contains(&(body.len() - 1)))
            .unwrap();
        assert!(pos_t < pos_b, "producer before consumer: {sccs:?}");
    }

    #[test]
    fn tarjan_finds_cycles() {
        // tiny direct test of the SCC engine
        let succ = vec![vec![1], vec![2], vec![0], vec![]];
        let sccs = super::tarjan(4, &succ);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
    }
}
