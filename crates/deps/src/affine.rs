//! Affine decomposition of address expressions.
//!
//! A vectorizer "lives or dies by its ability to analyze loops and
//! subscripts" (§3). After while→DO conversion, induction-variable
//! substitution and forward substitution, every analyzable address has the
//! shape *invariant-base + coefficient·loop-var + constant*; this module
//! recovers that shape, including through the `*(p + 4*i)` star
//! expressions C produces instead of explicit subscripts (§9's "implicit
//! representation of subscripts as star operations … required some special
//! tuning").

use titanc_il::{BinOp, Expr, Procedure, Stmt, UnOp, VarId};
use titanc_opt::util::invariant_in;

/// An address decomposed as `Σ mult·term + coeff·lv + offset` where every
/// `term` is loop-invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct Affine {
    /// Invariant symbolic terms with integer multipliers, canonically
    /// keyed by their printed form.
    pub terms: Vec<(String, Expr, i64)>,
    /// Bytes per unit of the loop variable.
    pub coeff: i64,
    /// Constant byte offset.
    pub offset: i64,
}

impl Affine {
    fn constant(offset: i64) -> Affine {
        Affine {
            terms: Vec::new(),
            coeff: 0,
            offset,
        }
    }

    fn var_term(e: &Expr) -> Affine {
        Affine {
            terms: vec![(format!("{e}"), e.clone(), 1)],
            coeff: 0,
            offset: 0,
        }
    }

    fn add(mut self, other: Affine) -> Affine {
        self.coeff += other.coeff;
        self.offset += other.offset;
        for (k, e, m) in other.terms {
            match self.terms.iter_mut().find(|(k2, _, _)| *k2 == k) {
                Some((_, _, m2)) => *m2 += m,
                None => self.terms.push((k, e, m)),
            }
        }
        self.terms.retain(|(_, _, m)| *m != 0);
        self
    }

    fn scale(mut self, c: i64) -> Affine {
        self.coeff *= c;
        self.offset *= c;
        for t in &mut self.terms {
            t.2 *= c;
        }
        self.terms.retain(|(_, _, m)| *m != 0);
        self
    }

    fn neg(self) -> Affine {
        self.scale(-1)
    }

    /// Sorted canonical keys of the symbolic part — two references have
    /// comparable subscripts only when these agree.
    pub fn base_key(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> =
            self.terms.iter().map(|(k, _, m)| (k.clone(), *m)).collect();
        v.sort();
        v
    }

    /// True when the symbolic bases coincide, making the ZIV/SIV tests
    /// applicable.
    pub fn same_base(&self, other: &Affine) -> bool {
        self.base_key() == other.base_key()
    }

    /// Rebuilds the address expression with the loop variable fixed to
    /// `lv_value` (used by vector code generation for the strip origin).
    pub fn materialize(&self, lv_value: &Expr) -> Expr {
        let mut acc: Option<Expr> = None;
        fn push(acc: &mut Option<Expr>, e: Expr) {
            *acc = Some(match acc.take() {
                None => e,
                Some(a) => Expr::binary(BinOp::Add, titanc_il::ScalarType::Ptr, a, e),
            });
        }
        for (_, e, m) in &self.terms {
            let scaled = if *m == 1 {
                e.clone()
            } else {
                Expr::ibinary(BinOp::Mul, e.clone(), Expr::int(*m))
            };
            push(&mut acc, scaled);
        }
        if self.coeff != 0 {
            push(
                &mut acc,
                Expr::ibinary(BinOp::Mul, lv_value.clone(), Expr::int(self.coeff)),
            );
        }
        if self.offset != 0 || acc.is_none() {
            push(&mut acc, Expr::int(self.offset));
        }
        let mut e = acc.expect("materialize produced a term");
        titanc_il::fold_expr(&mut e);
        e
    }

    /// The single `AddrOf` array this address is based on, if its symbolic
    /// part is exactly one `&array` term with multiplier 1.
    pub fn array_base(&self) -> Option<VarId> {
        match self.terms.as_slice() {
            [(_, Expr::AddrOf(v), 1)] => Some(*v),
            _ => None,
        }
    }

    /// The unique `&array` root among the symbolic terms, if exactly one
    /// term is an `AddrOf` with multiplier 1 (other terms may be loop
    /// bounds or outer-loop offsets). Addresses rooted in *different*
    /// named arrays can never collide.
    pub fn array_root(&self) -> Option<VarId> {
        let mut roots = self.terms.iter().filter_map(|(_, e, m)| match e {
            Expr::AddrOf(v) if *m == 1 => Some(*v),
            Expr::AddrOf(_) => None,
            _ => None,
        });
        let first = roots.next()?;
        if roots.next().is_some() {
            return None;
        }
        // no non-unit AddrOf terms allowed either
        let weird = self
            .terms
            .iter()
            .any(|(_, e, m)| matches!(e, Expr::AddrOf(_)) && *m != 1);
        (!weird).then_some(first)
    }

    /// The single pointer variable this address is based on, if its
    /// symbolic part is exactly one `Var(p)` term with multiplier 1.
    pub fn pointer_base(&self) -> Option<VarId> {
        match self.terms.as_slice() {
            [(_, Expr::Var(v), 1)] => Some(*v),
            _ => None,
        }
    }
}

/// Decomposes `e` as an affine function of `lv`, with everything else
/// required to be invariant in `body`. Returns `None` for non-affine
/// addresses (the reference is then unanalyzable and pessimized).
pub fn decompose(proc: &Procedure, body: &[Stmt], lv: VarId, e: &Expr) -> Option<Affine> {
    match e {
        Expr::IntConst(v) => Some(Affine::constant(*v)),
        Expr::Var(v) if *v == lv => Some(Affine {
            terms: Vec::new(),
            coeff: 1,
            offset: 0,
        }),
        Expr::Binary { op, lhs, rhs, .. } => match op {
            BinOp::Add => {
                let a = decompose(proc, body, lv, lhs)?;
                let b = decompose(proc, body, lv, rhs)?;
                Some(a.add(b))
            }
            BinOp::Sub => {
                let a = decompose(proc, body, lv, lhs)?;
                let b = decompose(proc, body, lv, rhs)?;
                Some(a.add(b.neg()))
            }
            BinOp::Mul => {
                let a = decompose(proc, body, lv, lhs)?;
                let b = decompose(proc, body, lv, rhs)?;
                // one side must be a pure constant
                if a.terms.is_empty() && a.coeff == 0 {
                    Some(b.scale(a.offset))
                } else if b.terms.is_empty() && b.coeff == 0 {
                    Some(a.scale(b.offset))
                } else {
                    None
                }
            }
            _ => invariant_term(proc, body, lv, e),
        },
        Expr::Unary {
            op: UnOp::Neg, arg, ..
        } => Some(decompose(proc, body, lv, arg)?.neg()),
        Expr::Cast { arg, .. } => decompose(proc, body, lv, arg),
        _ => invariant_term(proc, body, lv, e),
    }
}

fn invariant_term(proc: &Procedure, body: &[Stmt], lv: VarId, e: &Expr) -> Option<Affine> {
    if e.reads_var(lv) {
        return None;
    }
    if invariant_in(proc, body, e) {
        Some(Affine::var_term(e))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::{ProcBuilder, ScalarType, Type};

    fn setup() -> (Procedure, VarId, VarId, VarId) {
        let mut b = ProcBuilder::new("t", Type::Void);
        let lv = b.local("i", Type::Int);
        let arr = b.local("x", Type::array_of(Type::Float, 100));
        let p = b.param("p", Type::ptr_to(Type::Float));
        (b.finish(), lv, arr, p)
    }

    #[test]
    fn decomposes_subscript_form() {
        let (proc, lv, arr, _p) = setup();
        // &x + (i * 4) + 8
        let e = Expr::binary(
            BinOp::Add,
            ScalarType::Ptr,
            Expr::binary(
                BinOp::Add,
                ScalarType::Ptr,
                Expr::addr_of(arr),
                Expr::ibinary(BinOp::Mul, Expr::var(lv), Expr::int(4)),
            ),
            Expr::int(8),
        );
        let a = decompose(&proc, &[], lv, &e).unwrap();
        assert_eq!(a.coeff, 4);
        assert_eq!(a.offset, 8);
        assert_eq!(a.array_base(), Some(arr));
    }

    #[test]
    fn decomposes_reversed_induction() {
        let (proc, lv, _arr, p) = setup();
        // p + (n0 - i) * 4  where n0 is invariant (here: a param-free const stand-in)
        let e = Expr::binary(
            BinOp::Add,
            ScalarType::Ptr,
            Expr::var(p),
            Expr::ibinary(
                BinOp::Mul,
                Expr::ibinary(BinOp::Sub, Expr::int(50), Expr::var(lv)),
                Expr::int(4),
            ),
        );
        let a = decompose(&proc, &[], lv, &e).unwrap();
        assert_eq!(a.coeff, -4);
        assert_eq!(a.offset, 200);
        assert_eq!(a.pointer_base(), Some(p));
    }

    #[test]
    fn symbolic_invariant_terms_scale() {
        let (proc, lv, _arr, p) = setup();
        // p*?? — use (p + i*8) - p ... instead test term multiplication:
        // 2*(p) via p + p
        let e = Expr::binary(
            BinOp::Add,
            ScalarType::Ptr,
            Expr::var(p),
            Expr::binary(BinOp::Add, ScalarType::Ptr, Expr::var(p), Expr::var(lv)),
        );
        let a = decompose(&proc, &[], lv, &e).unwrap();
        assert_eq!(a.coeff, 1);
        assert_eq!(a.terms.len(), 1);
        assert_eq!(a.terms[0].2, 2);
    }

    #[test]
    fn same_base_comparison() {
        let (proc, lv, arr, p) = setup();
        let mk = |base: Expr, off: i64| {
            decompose(
                &proc,
                &[],
                lv,
                &Expr::binary(
                    BinOp::Add,
                    ScalarType::Ptr,
                    base,
                    Expr::ibinary(
                        BinOp::Add,
                        Expr::ibinary(BinOp::Mul, Expr::var(lv), Expr::int(4)),
                        Expr::int(off),
                    ),
                ),
            )
            .unwrap()
        };
        let a1 = mk(Expr::addr_of(arr), 0);
        let a2 = mk(Expr::addr_of(arr), 4);
        let a3 = mk(Expr::var(p), 0);
        assert!(a1.same_base(&a2));
        assert!(!a1.same_base(&a3));
    }

    #[test]
    fn non_affine_rejected() {
        let (proc, lv, _arr, p) = setup();
        // p + i*i is not affine
        let e = Expr::binary(
            BinOp::Add,
            ScalarType::Ptr,
            Expr::var(p),
            Expr::ibinary(BinOp::Mul, Expr::var(lv), Expr::var(lv)),
        );
        assert!(decompose(&proc, &[], lv, &e).is_none());
        // loads are not invariant
        let e2 = Expr::load(Expr::var(p), ScalarType::Ptr);
        assert!(decompose(&proc, &[], lv, &e2).is_none());
    }

    #[test]
    fn materialize_round_trips() {
        let (proc, lv, arr, _p) = setup();
        let e = Expr::binary(
            BinOp::Add,
            ScalarType::Ptr,
            Expr::addr_of(arr),
            Expr::ibinary(BinOp::Mul, Expr::var(lv), Expr::int(4)),
        );
        let a = decompose(&proc, &[], lv, &e).unwrap();
        let at_zero = a.materialize(&Expr::int(0));
        assert_eq!(format!("{at_zero}"), format!("{}", Expr::addr_of(arr)));
        let at_five = a.materialize(&Expr::int(5));
        let aff2 = decompose(&proc, &[], lv, &at_five).unwrap();
        assert_eq!(aff2.offset, 20);
    }

    #[test]
    fn varying_term_rejected() {
        // an address built from a variable defined in the body is not
        // invariant
        let mut b = ProcBuilder::new("t", Type::Void);
        let lv = b.local("i", Type::Int);
        let q = b.local("q", Type::ptr_to(Type::Float));
        b.assign_var(q, Expr::int(0)); // q defined in body
        let proc = b.finish();
        let body = proc.body.clone();
        let e = Expr::binary(BinOp::Add, ScalarType::Ptr, Expr::var(q), Expr::var(lv));
        assert!(decompose(&proc, &body, lv, &e).is_none());
    }
}
