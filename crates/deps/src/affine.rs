//! Affine decomposition of address expressions.
//!
//! A vectorizer "lives or dies by its ability to analyze loops and
//! subscripts" (§3). After while→DO conversion, induction-variable
//! substitution and forward substitution, every analyzable address has the
//! shape *invariant-base + coefficient·loop-var + constant*; this module
//! recovers that shape, including through the `*(p + 4*i)` star
//! expressions C produces instead of explicit subscripts (§9's "implicit
//! representation of subscripts as star operations … required some special
//! tuning").
//!
//! Symbolic terms hold [`ExprId`]s into the procedure's arena (shared
//! reads); [`Affine::materialize`] deep-copies them into fresh slots.

use titanc_il::{pretty_expr_in, BinOp, Expr, ExprId, ExprPool, Procedure, StmtId, UnOp, VarId};
use titanc_opt::util::invariant_in;

/// An address decomposed as `Σ mult·term + coeff·lv + offset` where every
/// `term` is loop-invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct Affine {
    /// Invariant symbolic terms with integer multipliers, canonically
    /// keyed by their printed form.
    pub terms: Vec<(String, ExprId, i64)>,
    /// Bytes per unit of the loop variable.
    pub coeff: i64,
    /// Constant byte offset.
    pub offset: i64,
}

impl Affine {
    fn constant(offset: i64) -> Affine {
        Affine {
            terms: Vec::new(),
            coeff: 0,
            offset,
        }
    }

    fn var_term(exprs: &ExprPool, e: ExprId) -> Affine {
        Affine {
            terms: vec![(pretty_expr_in(exprs, e), e, 1)],
            coeff: 0,
            offset: 0,
        }
    }

    fn add(mut self, other: Affine) -> Affine {
        self.coeff += other.coeff;
        self.offset += other.offset;
        for (k, e, m) in other.terms {
            match self.terms.iter_mut().find(|(k2, _, _)| *k2 == k) {
                Some((_, _, m2)) => *m2 += m,
                None => self.terms.push((k, e, m)),
            }
        }
        self.terms.retain(|(_, _, m)| *m != 0);
        self
    }

    fn scale(mut self, c: i64) -> Affine {
        self.coeff *= c;
        self.offset *= c;
        for t in &mut self.terms {
            t.2 *= c;
        }
        self.terms.retain(|(_, _, m)| *m != 0);
        self
    }

    fn neg(self) -> Affine {
        self.scale(-1)
    }

    /// Sorted canonical keys of the symbolic part — two references have
    /// comparable subscripts only when these agree.
    pub fn base_key(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> =
            self.terms.iter().map(|(k, _, m)| (k.clone(), *m)).collect();
        v.sort();
        v
    }

    /// True when the symbolic bases coincide, making the ZIV/SIV tests
    /// applicable.
    pub fn same_base(&self, other: &Affine) -> bool {
        self.base_key() == other.base_key()
    }

    /// Rebuilds the address expression with the loop variable fixed to
    /// `lv_value` (used by vector code generation for the strip origin).
    /// Every symbolic term is deep-copied into fresh slots; `lv_value` is
    /// consumed (referenced at most once).
    pub fn materialize(&self, exprs: &mut ExprPool, lv_value: ExprId) -> ExprId {
        let mut acc: Option<ExprId> = None;
        fn push(exprs: &mut ExprPool, acc: &mut Option<ExprId>, e: ExprId) {
            *acc = Some(match acc.take() {
                None => e,
                Some(a) => exprs.binary(BinOp::Add, titanc_il::ScalarType::Ptr, a, e),
            });
        }
        for (_, e, m) in &self.terms {
            let copied = exprs.copy(*e);
            let scaled = if *m == 1 {
                copied
            } else {
                let mult = exprs.int(*m);
                exprs.ibinary(BinOp::Mul, copied, mult)
            };
            push(exprs, &mut acc, scaled);
        }
        if self.coeff != 0 {
            let c = exprs.int(self.coeff);
            let scaled = exprs.ibinary(BinOp::Mul, lv_value, c);
            push(exprs, &mut acc, scaled);
        }
        if self.offset != 0 || acc.is_none() {
            let off = exprs.int(self.offset);
            push(exprs, &mut acc, off);
        }
        let e = acc.expect("materialize produced a term");
        titanc_il::fold_expr(exprs, e);
        e
    }

    /// The single `AddrOf` array this address is based on, if its symbolic
    /// part is exactly one `&array` term with multiplier 1.
    pub fn array_base(&self, exprs: &ExprPool) -> Option<VarId> {
        match self.terms.as_slice() {
            [(_, e, 1)] => match exprs[*e] {
                Expr::AddrOf(v) => Some(v),
                _ => None,
            },
            _ => None,
        }
    }

    /// The unique `&array` root among the symbolic terms, if exactly one
    /// term is an `AddrOf` with multiplier 1 (other terms may be loop
    /// bounds or outer-loop offsets). Addresses rooted in *different*
    /// named arrays can never collide.
    pub fn array_root(&self, exprs: &ExprPool) -> Option<VarId> {
        let mut roots = self.terms.iter().filter_map(|(_, e, m)| match exprs[*e] {
            Expr::AddrOf(v) if *m == 1 => Some(v),
            _ => None,
        });
        let first = roots.next()?;
        if roots.next().is_some() {
            return None;
        }
        // no non-unit AddrOf terms allowed either
        let weird = self
            .terms
            .iter()
            .any(|(_, e, m)| matches!(exprs[*e], Expr::AddrOf(_)) && *m != 1);
        (!weird).then_some(first)
    }

    /// The single pointer variable this address is based on, if its
    /// symbolic part is exactly one `Var(p)` term with multiplier 1.
    pub fn pointer_base(&self, exprs: &ExprPool) -> Option<VarId> {
        match self.terms.as_slice() {
            [(_, e, 1)] => match exprs[*e] {
                Expr::Var(v) => Some(v),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Decomposes `e` as an affine function of `lv`, with everything else
/// required to be invariant in `body`. Returns `None` for non-affine
/// addresses (the reference is then unanalyzable and pessimized).
pub fn decompose(proc: &Procedure, body: &[StmtId], lv: VarId, e: ExprId) -> Option<Affine> {
    match proc.exprs[e] {
        Expr::IntConst(v) => Some(Affine::constant(v)),
        Expr::Var(v) if v == lv => Some(Affine {
            terms: Vec::new(),
            coeff: 1,
            offset: 0,
        }),
        Expr::Binary { op, lhs, rhs, .. } => match op {
            BinOp::Add => {
                let a = decompose(proc, body, lv, lhs)?;
                let b = decompose(proc, body, lv, rhs)?;
                Some(a.add(b))
            }
            BinOp::Sub => {
                let a = decompose(proc, body, lv, lhs)?;
                let b = decompose(proc, body, lv, rhs)?;
                Some(a.add(b.neg()))
            }
            BinOp::Mul => {
                let a = decompose(proc, body, lv, lhs)?;
                let b = decompose(proc, body, lv, rhs)?;
                // one side must be a pure constant
                if a.terms.is_empty() && a.coeff == 0 {
                    Some(b.scale(a.offset))
                } else if b.terms.is_empty() && b.coeff == 0 {
                    Some(a.scale(b.offset))
                } else {
                    None
                }
            }
            _ => invariant_term(proc, body, lv, e),
        },
        Expr::Unary {
            op: UnOp::Neg, arg, ..
        } => Some(decompose(proc, body, lv, arg)?.neg()),
        Expr::Cast { arg, .. } => decompose(proc, body, lv, arg),
        _ => invariant_term(proc, body, lv, e),
    }
}

fn invariant_term(proc: &Procedure, body: &[StmtId], lv: VarId, e: ExprId) -> Option<Affine> {
    if proc.exprs.reads_var(e, lv) {
        return None;
    }
    if invariant_in(proc, body, e) {
        Some(Affine::var_term(&proc.exprs, e))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titanc_il::{ProcBuilder, ScalarType, Type};

    fn setup() -> (Procedure, VarId, VarId, VarId) {
        let mut b = ProcBuilder::new("t", Type::Void);
        let lv = b.local("i", Type::Int);
        let arr = b.local("x", Type::array_of(Type::Float, 100));
        let p = b.param("p", Type::ptr_to(Type::Float));
        (b.finish(), lv, arr, p)
    }

    #[test]
    fn decomposes_subscript_form() {
        let (mut proc, lv, arr, _p) = setup();
        // &x + (i * 4) + 8
        let x = proc.exprs.addr_of(arr);
        let i = proc.exprs.var(lv);
        let four = proc.exprs.int(4);
        let mul = proc.exprs.ibinary(BinOp::Mul, i, four);
        let sum = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, x, mul);
        let eight = proc.exprs.int(8);
        let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, sum, eight);
        let a = decompose(&proc, &[], lv, e).unwrap();
        assert_eq!(a.coeff, 4);
        assert_eq!(a.offset, 8);
        assert_eq!(a.array_base(&proc.exprs), Some(arr));
    }

    #[test]
    fn decomposes_reversed_induction() {
        let (mut proc, lv, _arr, p) = setup();
        // p + (50 - i) * 4
        let pv = proc.exprs.var(p);
        let fifty = proc.exprs.int(50);
        let i = proc.exprs.var(lv);
        let sub = proc.exprs.ibinary(BinOp::Sub, fifty, i);
        let four = proc.exprs.int(4);
        let mul = proc.exprs.ibinary(BinOp::Mul, sub, four);
        let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, pv, mul);
        let a = decompose(&proc, &[], lv, e).unwrap();
        assert_eq!(a.coeff, -4);
        assert_eq!(a.offset, 200);
        assert_eq!(a.pointer_base(&proc.exprs), Some(p));
    }

    #[test]
    fn symbolic_invariant_terms_scale() {
        let (mut proc, lv, _arr, p) = setup();
        // p + (p + i): the symbolic term p appears twice
        let p1 = proc.exprs.var(p);
        let p2 = proc.exprs.var(p);
        let i = proc.exprs.var(lv);
        let inner = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, p2, i);
        let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, p1, inner);
        let a = decompose(&proc, &[], lv, e).unwrap();
        assert_eq!(a.coeff, 1);
        assert_eq!(a.terms.len(), 1);
        assert_eq!(a.terms[0].2, 2);
    }

    #[test]
    fn same_base_comparison() {
        let (mut proc, lv, arr, p) = setup();
        let mk = |proc: &mut Procedure, base: ExprId, off: i64| {
            let i = proc.exprs.var(lv);
            let four = proc.exprs.int(4);
            let mul = proc.exprs.ibinary(BinOp::Mul, i, four);
            let o = proc.exprs.int(off);
            let sum = proc.exprs.ibinary(BinOp::Add, mul, o);
            let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, base, sum);
            decompose(proc, &[], lv, e).unwrap()
        };
        let b1 = proc.exprs.addr_of(arr);
        let a1 = mk(&mut proc, b1, 0);
        let b2 = proc.exprs.addr_of(arr);
        let a2 = mk(&mut proc, b2, 4);
        let b3 = proc.exprs.var(p);
        let a3 = mk(&mut proc, b3, 0);
        assert!(a1.same_base(&a2));
        assert!(!a1.same_base(&a3));
    }

    #[test]
    fn non_affine_rejected() {
        let (mut proc, lv, _arr, p) = setup();
        // p + i*i is not affine
        let pv = proc.exprs.var(p);
        let i1 = proc.exprs.var(lv);
        let i2 = proc.exprs.var(lv);
        let sq = proc.exprs.ibinary(BinOp::Mul, i1, i2);
        let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, pv, sq);
        assert!(decompose(&proc, &[], lv, e).is_none());
        // loads are not invariant
        let pv2 = proc.exprs.var(p);
        let e2 = proc.exprs.load(pv2, ScalarType::Ptr);
        assert!(decompose(&proc, &[], lv, e2).is_none());
    }

    #[test]
    fn materialize_round_trips() {
        let (mut proc, lv, arr, _p) = setup();
        let base = proc.exprs.addr_of(arr);
        let i = proc.exprs.var(lv);
        let four = proc.exprs.int(4);
        let mul = proc.exprs.ibinary(BinOp::Mul, i, four);
        let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, base, mul);
        let a = decompose(&proc, &[], lv, e).unwrap();
        let zero = proc.exprs.int(0);
        let at_zero = a.materialize(&mut proc.exprs, zero);
        let plain = proc.exprs.addr_of(arr);
        assert_eq!(
            pretty_expr_in(&proc.exprs, at_zero),
            pretty_expr_in(&proc.exprs, plain)
        );
        let five = proc.exprs.int(5);
        let at_five = a.materialize(&mut proc.exprs, five);
        let aff2 = decompose(&proc, &[], lv, at_five).unwrap();
        assert_eq!(aff2.offset, 20);
    }

    #[test]
    fn varying_term_rejected() {
        // an address built from a variable defined in the body is not
        // invariant
        let mut b = ProcBuilder::new("t", Type::Void);
        let lv = b.local("i", Type::Int);
        let q = b.local("q", Type::ptr_to(Type::Float));
        let zero = b.int(0);
        b.assign_var(q, zero); // q defined in body
        let mut proc = b.finish();
        let body = proc.body.clone();
        let qv = proc.exprs.var(q);
        let i = proc.exprs.var(lv);
        let e = proc.exprs.binary(BinOp::Add, ScalarType::Ptr, qv, i);
        assert!(decompose(&proc, &body, lv, e).is_none());
    }
}
