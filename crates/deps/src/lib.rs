//! # titanc-deps — data-dependence analysis
//!
//! Affine subscript extraction (through C's star-expression addressing),
//! the ZIV/SIV/GCD/Banerjee dependence tests, and the statement dependence
//! graph with SCC condensation used by the vectorizer (§5) and by the
//! dependence-driven scalar optimizations (§6).
//!
//! ## Example
//!
//! ```
//! use titanc_deps::{Aliasing, DepGraph};
//! use titanc_il::StmtKind;
//!
//! let prog = titanc_lower::compile_to_il(
//!     "float a[64], b[64];\nvoid f(void) { int i; for (i = 0; i < 64; i++) a[i] = b[i]; }",
//! ).unwrap();
//! let mut proc = prog.procs[0].clone();
//! titanc_opt::convert_while_loops(&mut proc);
//! titanc_opt::induction_substitution(&mut proc);
//! titanc_opt::forward_substitute(&mut proc);
//! titanc_opt::eliminate_dead_code(&mut proc);
//! let mut found = None;
//! proc.for_each_stmt(&mut |_, kind| {
//!     if let StmtKind::DoLoop { var, body, .. } = kind {
//!         if found.is_none() {
//!             found = Some((*var, body.clone()));
//!         }
//!     }
//! });
//! let (lv, body) = found.unwrap();
//! let g = DepGraph::build(&proc, &body, lv, Some(64), Aliasing::C);
//! assert!(g.iterations_independent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod graph;
pub mod test;

pub use affine::{decompose, Affine};
pub use graph::{Aliasing, DepEdge, DepGraph, DepKind, MemRef};
pub use test::{test_pair, Verdict};

/// The constant trip count of a DO loop, when its bounds fold.
pub fn const_trip_count(
    exprs: &titanc_il::ExprPool,
    lo: titanc_il::ExprId,
    hi: titanc_il::ExprId,
    step: titanc_il::ExprId,
) -> Option<i64> {
    match (exprs.as_int(lo), exprs.as_int(hi), exprs.as_int(step)) {
        (Some(l), Some(h), Some(s)) if s != 0 => Some(((h - l + s) / s).max(0)),
        _ => None,
    }
}
