//! The dependence tests: ZIV, strong SIV, GCD, and Banerjee bounds.
//!
//! These decide whether two references to the same symbolic base can touch
//! the same byte on different (or the same) iterations of a single loop
//! [Bane 76, Alle 83, Wolf 82 in the paper's bibliography].

use crate::affine::Affine;

/// The verdict of a dependence test between two affine references.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Proven independent.
    Independent,
    /// Dependent with a known constant iteration distance
    /// (`sink_iteration - source_iteration`).
    Distance(i64),
    /// Possibly dependent, distance unknown.
    Unknown,
}

impl Verdict {
    /// True when a dependence may exist.
    pub fn may_depend(self) -> bool {
        !matches!(self, Verdict::Independent)
    }

    /// True when the (possible) dependence is carried by the loop (crosses
    /// iterations).
    pub fn carried(self) -> bool {
        match self {
            Verdict::Independent => false,
            Verdict::Distance(d) => d != 0,
            Verdict::Unknown => true,
        }
    }
}

/// Tests whether reference `a` (earlier in some iteration) and reference
/// `b` can access a common address, with iterations ranging over
/// `0..trips` when the trip count is known.
///
/// Addresses are `base + coeff·k + offset` with `k` the 0-based iteration
/// number. The references must share a symbolic base (check
/// [`Affine::same_base`] first); different-base pairs are the caller's
/// aliasing problem.
pub fn test_pair(a: &Affine, b: &Affine, trips: Option<i64>) -> Verdict {
    debug_assert!(a.same_base(b), "test_pair requires a common base");
    let (a1, c1) = (a.coeff, a.offset);
    let (a2, c2) = (b.coeff, b.offset);
    let delta = c1 - c2; // a1*k1 + c1 = a2*k2 + c2  =>  a2*k2 - a1*k1 = delta... see below

    // ZIV: neither varies.
    if a1 == 0 && a2 == 0 {
        return if delta == 0 {
            Verdict::Distance(0)
        } else {
            Verdict::Independent
        };
    }

    // Strong SIV: equal coefficients. a1*k1 + c1 = a1*k2 + c2
    // => k2 - k1 = (c1 - c2) / a1.
    if a1 == a2 {
        if delta % a1 != 0 {
            return Verdict::Independent;
        }
        let d = delta / a1;
        if let Some(n) = trips {
            if d.abs() >= n.max(0) {
                return Verdict::Independent;
            }
        }
        return Verdict::Distance(d);
    }

    // General SIV/MIV collapsed to one variable: solutions to
    // a1*k1 - a2*k2 = c2 - c1 with k1, k2 in [0, trips).
    let rhs = c2 - c1;
    let g = gcd(a1.unsigned_abs() as i64, a2.unsigned_abs() as i64);
    if g != 0 && rhs % g != 0 {
        return Verdict::Independent;
    }
    // Banerjee bounds when the trip count is known.
    if let Some(n) = trips {
        if n <= 0 {
            return Verdict::Independent;
        }
        let u = n - 1;
        let (lo1, hi1) = span(a1, u);
        let (lo2, hi2) = span(-a2, u);
        let lo = lo1 + lo2;
        let hi = hi1 + hi2;
        if rhs < lo || rhs > hi {
            return Verdict::Independent;
        }
    }
    Verdict::Unknown
}

fn span(a: i64, u: i64) -> (i64, i64) {
    if a >= 0 {
        (0, a * u)
    } else {
        (a * u, 0)
    }
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    fn aff(coeff: i64, offset: i64) -> Affine {
        // the term id is only used as an opaque token here: the tests
        // compare bases by their string key
        let mut pool = titanc_il::ExprPool::new();
        let e = pool.int(0);
        Affine {
            terms: vec![("&x".into(), e, 1)],
            coeff,
            offset,
        }
    }

    #[test]
    fn ziv() {
        assert_eq!(
            test_pair(&aff(0, 4), &aff(0, 4), None),
            Verdict::Distance(0)
        );
        assert_eq!(
            test_pair(&aff(0, 4), &aff(0, 8), None),
            Verdict::Independent
        );
    }

    #[test]
    fn strong_siv_distance() {
        // x[i+1] written, x[i] read: coeff 4, offsets 4 vs 0 → distance 1
        let w = aff(4, 4);
        let r = aff(4, 0);
        assert_eq!(test_pair(&w, &r, Some(100)), Verdict::Distance(1));
        // reversed: distance -1
        assert_eq!(test_pair(&r, &w, Some(100)), Verdict::Distance(-1));
    }

    #[test]
    fn strong_siv_same_element() {
        assert_eq!(
            test_pair(&aff(4, 0), &aff(4, 0), None),
            Verdict::Distance(0)
        );
    }

    #[test]
    fn strong_siv_misaligned_independent() {
        // byte offsets 2 apart with stride 4: never collide
        assert_eq!(
            test_pair(&aff(4, 0), &aff(4, 2), Some(100)),
            Verdict::Independent
        );
    }

    #[test]
    fn strong_siv_distance_beyond_trip_count() {
        // distance 50 in a 10-trip loop: no dependence
        assert_eq!(
            test_pair(&aff(4, 200), &aff(4, 0), Some(10)),
            Verdict::Independent
        );
        assert_eq!(
            test_pair(&aff(4, 200), &aff(4, 0), Some(51)),
            Verdict::Distance(50)
        );
    }

    #[test]
    fn gcd_test_rejects() {
        // 4*k1 vs 4*k2 + 2 (different strides 8 and 4): gcd 4 does not
        // divide 2
        assert_eq!(
            test_pair(&aff(8, 0), &aff(4, 2), None),
            Verdict::Independent
        );
    }

    #[test]
    fn gcd_test_admits() {
        // 8*k1 = 4*k2 + 4 has solutions
        assert_eq!(test_pair(&aff(8, 0), &aff(4, 4), None), Verdict::Unknown);
    }

    #[test]
    fn banerjee_bounds_reject() {
        // 4*k1 = 4*k2 + 400 within 10 iterations: max reach 36 < 400
        // (different coeff signs force the general path)
        assert_eq!(
            test_pair(&aff(4, 0), &aff(-4, 400), Some(10)),
            Verdict::Independent
        );
    }

    #[test]
    fn banerjee_bounds_admit() {
        // 4*k1 + 0 = -4*k2 + 20 reachable within 10 iterations
        assert_eq!(
            test_pair(&aff(4, 0), &aff(-4, 20), Some(10)),
            Verdict::Unknown
        );
    }

    #[test]
    fn negative_strides() {
        // countdown loops: coeff -4 each, offsets differ by -4 → distance 1
        let w = aff(-4, -4);
        let r = aff(-4, 0);
        assert_eq!(test_pair(&w, &r, Some(100)), Verdict::Distance(1));
    }

    #[test]
    fn zero_trip_loop_is_independent() {
        assert_eq!(
            test_pair(&aff(4, 0), &aff(8, 0), Some(0)),
            Verdict::Independent
        );
    }

    #[test]
    fn verdict_queries() {
        assert!(Verdict::Unknown.may_depend());
        assert!(Verdict::Unknown.carried());
        assert!(Verdict::Distance(1).carried());
        assert!(!Verdict::Distance(0).carried());
        assert!(!Verdict::Independent.may_depend());
    }

    /// Deterministic xorshift64* generator (no external crates).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform value in `[lo, hi]`.
        fn range(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next() % (hi - lo + 1) as u64) as i64
        }
    }

    /// Soundness: brute-force check on random affine pairs — the test may
    /// report a false dependence but must never report independence when a
    /// concrete collision exists.
    #[test]
    fn soundness_vs_brute_force() {
        let mut rng = Rng(0xA11E);
        for _ in 0..2000 {
            let a1 = rng.range(-6, 6);
            let a2 = rng.range(-6, 6);
            let c1 = rng.range(-24, 24);
            let c2 = rng.range(-24, 24);
            let n = rng.range(0, 12);
            let verdict = test_pair(&aff(a1, c1), &aff(a2, c2), Some(n));
            let mut collision = None;
            for k1 in 0..n {
                for k2 in 0..n {
                    if a1 * k1 + c1 == a2 * k2 + c2 {
                        collision.get_or_insert(k2 - k1);
                    }
                }
            }
            match (collision, verdict) {
                (Some(_), Verdict::Independent) => {
                    panic!("unsound: a1={a1} c1={c1} a2={a2} c2={c2} n={n}")
                }
                (Some(d), Verdict::Distance(got))
                    // a distance verdict must include the real collision
                    // distance when coefficients are equal
                    if a1 == a2 => {
                        assert_eq!(got, d, "a1={a1} c1={c1} a2={a2} c2={c2} n={n}");
                    }
                _ => {}
            }
        }
    }
}
