//! Procedures, programs, symbol tables.

use crate::expr::Expr;
use crate::ids::{LabelId, ProcId, StmtId, StructId, VarId};
use crate::stmt::{Stmt, StmtKind};
use crate::types::{ScalarType, Type};

/// Where a variable lives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Storage {
    /// Stack local.
    Auto,
    /// Formal parameter.
    Param,
    /// Compiler-generated temporary. The paper's global register allocator
    /// makes temporaries nearly free (§4); the simulator charges them as
    /// registers.
    Temp,
    /// Function-scoped `static`. Inlining externalizes these (§7).
    Static,
    /// A reference to the program-level global of the same name.
    Global,
}

/// A symbol-table entry for one variable.
#[derive(Clone, PartialEq, Debug)]
pub struct VarInfo {
    /// Source-level (or generated) name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Storage class.
    pub storage: Storage,
    /// `volatile`-qualified (§1 item 6): reads/writes are pinned.
    pub volatile: bool,
    /// True when `&v` is taken somewhere or the variable is an
    /// array/struct; such variables are memory-resident and stores through
    /// pointers may alias them.
    pub addressed: bool,
    /// Constant initializer (globals/statics only; locals lower their
    /// initializers to assignments).
    pub init: Option<ConstInit>,
}

/// A constant initializer for a global or static variable.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConstInit {
    /// Integral initializer.
    Int(i64),
    /// Floating initializer.
    Float(f64),
}

impl VarInfo {
    /// The scalar register kind, if the variable is scalar.
    pub fn scalar(&self) -> Option<ScalarType> {
        self.ty.scalar()
    }
}

/// One field of a struct definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset from the struct base.
    pub offset: i64,
}

/// A struct layout, offsets already computed by the front end.
#[derive(Clone, PartialEq, Debug)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Total size in bytes (including trailing padding).
    pub size: i64,
}

impl StructDef {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// One procedure: signature, symbol table, label table, statement tree.
#[derive(Clone, Debug)]
pub struct Procedure {
    /// Procedure name (global linkage).
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameter variables, in order (indexes into `vars`).
    pub params: Vec<VarId>,
    /// The variable table.
    pub vars: Vec<VarInfo>,
    /// Number of labels allocated.
    pub num_labels: u32,
    /// The body.
    pub body: Vec<Stmt>,
    pub(crate) next_stmt: u32,
    pub(crate) next_temp: u32,
    /// IL generation counter: bumped whenever the procedure is mutated, so
    /// analyses memoized against an older generation are known stale. Not
    /// serialized and excluded from equality — it tracks identity over
    /// time, not content.
    pub(crate) generation: u64,
}

impl PartialEq for Procedure {
    fn eq(&self, other: &Procedure) -> bool {
        // `generation` is deliberately excluded: two procedures with the
        // same content are equal regardless of their mutation history
        // (catalog encode/decode round-trips rely on this).
        self.name == other.name
            && self.ret == other.ret
            && self.params == other.params
            && self.vars == other.vars
            && self.num_labels == other.num_labels
            && self.body == other.body
            && self.next_stmt == other.next_stmt
            && self.next_temp == other.next_temp
    }
}

impl Procedure {
    /// Creates an empty procedure.
    pub fn new(name: impl Into<String>, ret: Type) -> Procedure {
        Procedure {
            name: name.into(),
            ret,
            params: Vec::new(),
            vars: Vec::new(),
            num_labels: 0,
            body: Vec::new(),
            next_stmt: 0,
            next_temp: 0,
            generation: 0,
        }
    }

    /// The IL generation counter. Analyses keyed to an older generation
    /// are stale; analyses keyed to the current one are still valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Marks the procedure as mutated. Every transformation that changes
    /// the body, the symbol table, or the label table must call this (or
    /// [`Procedure::restamp`], which bumps implicitly) so generation-keyed
    /// analysis caches are never served stale.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// The symbol-table entry for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this procedure.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Mutable access to the symbol-table entry for `v`.
    pub fn var_mut(&mut self, v: VarId) -> &mut VarInfo {
        &mut self.vars[v.index()]
    }

    /// The scalar kind of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not scalar (arrays and structs have no register
    /// kind).
    pub fn var_scalar(&self, v: VarId) -> ScalarType {
        self.var(v)
            .scalar()
            .unwrap_or_else(|| panic!("variable {} is not scalar", self.var(v).name))
    }

    /// Adds a variable and returns its id.
    pub fn add_var(&mut self, info: VarInfo) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(info);
        id
    }

    /// Adds a fresh compiler temporary of scalar type `ty`.
    pub fn fresh_temp(&mut self, ty: Type) -> VarId {
        let n = self.next_temp;
        self.next_temp += 1;
        self.add_var(VarInfo {
            name: format!("temp_{n}"),
            ty,
            storage: Storage::Temp,
            volatile: false,
            addressed: false,
            init: None,
        })
    }

    /// Allocates a fresh label.
    pub fn fresh_label(&mut self) -> LabelId {
        let id = LabelId(self.num_labels);
        self.num_labels += 1;
        id
    }

    /// Allocates a fresh statement stamp.
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    /// Builds a statement with a fresh stamp.
    pub fn stamp(&mut self, kind: StmtKind) -> Stmt {
        Stmt::new(self.fresh_stmt_id(), kind)
    }

    /// Builds a statement with a fresh stamp anchored to a source
    /// position (passes replacing a statement carry its span over).
    pub fn stamp_at(&mut self, kind: StmtKind, span: crate::span::SrcSpan) -> Stmt {
        Stmt::new_at(self.fresh_stmt_id(), kind, span)
    }

    /// Finds a variable by name (first match).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(VarId::from_index)
    }

    /// Total statement count of the body tree.
    pub fn len(&self) -> usize {
        crate::stmt::block_len(&self.body)
    }

    /// True when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Iterates over every statement in the tree (preorder), calling `f`.
    pub fn for_each_stmt(&self, f: &mut dyn FnMut(&Stmt)) {
        fn walk(block: &[Stmt], f: &mut dyn FnMut(&Stmt)) {
            for s in block {
                f(s);
                for b in s.blocks() {
                    walk(b, f);
                }
            }
        }
        walk(&self.body, f);
    }

    /// Finds a statement by stamp (preorder search).
    pub fn find_stmt(&self, id: StmtId) -> Option<&Stmt> {
        fn walk(block: &[Stmt], id: StmtId) -> Option<&Stmt> {
            for s in block {
                if s.id == id {
                    return Some(s);
                }
                for b in s.blocks() {
                    if let Some(found) = walk(b, id) {
                        return Some(found);
                    }
                }
            }
            None
        }
        walk(&self.body, id)
    }

    /// Re-stamps every statement with fresh consecutive ids (used after an
    /// inlined body is spliced in, whose stamps would otherwise collide).
    pub fn restamp(&mut self) {
        let mut next = 0u32;
        fn walk(block: &mut [Stmt], next: &mut u32) {
            for s in block {
                s.id = StmtId(*next);
                *next += 1;
                for b in s.blocks_mut() {
                    walk(b, next);
                }
            }
        }
        walk(&mut self.body, &mut next);
        self.next_stmt = next;
        // every StmtId-keyed analysis is invalidated by a restamp
        self.bump_generation();
    }

    /// True if any statement satisfies the predicate.
    pub fn any_stmt(&self, mut pred: impl FnMut(&Stmt) -> bool) -> bool {
        let mut found = false;
        self.for_each_stmt(&mut |s| {
            if pred(s) {
                found = true;
            }
        });
        found
    }

    /// Convenience: append a statement to the body with a fresh stamp.
    pub fn push(&mut self, kind: StmtKind) {
        let s = self.stamp(kind);
        self.body.push(s);
    }

    /// All `DoLoop`/`DoParallel`/`While` statement stamps, preorder.
    pub fn loop_ids(&self) -> Vec<StmtId> {
        let mut out = Vec::new();
        self.for_each_stmt(&mut |s| {
            if s.is_loop() {
                out.push(s.id);
            }
        });
        out
    }

    /// Iterates over every statement in the tree (preorder), mutably.
    pub fn for_each_stmt_mut(&mut self, f: &mut dyn FnMut(&mut Stmt)) {
        fn walk(block: &mut [Stmt], f: &mut dyn FnMut(&mut Stmt)) {
            for s in block {
                f(s);
                for b in s.blocks_mut() {
                    walk(b, f);
                }
            }
        }
        walk(&mut self.body, f);
    }

    /// Remaps the origin file tag of every known span through `map`
    /// (`map[old_tag] = new_tag`). Used when a procedure crosses from a
    /// catalog or another session TU into a program whose file table
    /// numbers origins differently. Tags beyond `map` are left alone.
    pub fn retag_spans(&mut self, map: &[u32]) {
        self.for_each_stmt_mut(&mut |s| {
            if s.span.is_known() {
                if let Some(&new) = map.get(s.span.file as usize) {
                    s.span.file = new;
                }
            }
        });
    }
}

/// A whole program: procedures, globals, struct layouts.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// All procedures.
    pub procs: Vec<Procedure>,
    /// Program-level globals (referenced from procedures by name via
    /// [`Storage::Global`] entries).
    pub globals: Vec<VarInfo>,
    /// Struct layouts.
    pub structs: Vec<StructDef>,
    /// Origin file table for span file tags: a span with `file == f > 0`
    /// originated in `files[f - 1]`; `file == 0` is the current TU.
    pub files: Vec<String>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a procedure, returning its id.
    pub fn add_proc(&mut self, p: Procedure) -> ProcId {
        let id = ProcId::from_index(self.procs.len());
        self.procs.push(p);
        id
    }

    /// Looks up a procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<&Procedure> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Mutable lookup by name.
    pub fn proc_by_name_mut(&mut self, name: &str) -> Option<&mut Procedure> {
        self.procs.iter_mut().find(|p| p.name == name)
    }

    /// Adds (or finds) a global by name.
    pub fn ensure_global(&mut self, info: VarInfo) -> usize {
        if let Some(i) = self.globals.iter().position(|g| g.name == info.name) {
            i
        } else {
            self.globals.push(info);
            self.globals.len() - 1
        }
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<&VarInfo> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Interns an origin file name, returning its span file tag (`> 0`).
    pub fn intern_file(&mut self, name: &str) -> u32 {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            (i + 1) as u32
        } else {
            self.files.push(name.to_string());
            self.files.len() as u32
        }
    }

    /// Resolves a span file tag to its origin file name (`None` for the
    /// current TU or an out-of-range tag).
    pub fn file_name(&self, tag: u32) -> Option<&str> {
        if tag == 0 {
            None
        } else {
            self.files.get(tag as usize - 1).map(String::as_str)
        }
    }

    /// The size of struct `sid` in bytes.
    pub fn struct_size(&self, sid: StructId) -> i64 {
        self.structs[sid.index()].size
    }

    /// The byte size of a type in this program.
    pub fn type_size(&self, ty: &Type) -> i64 {
        ty.size_with(&|sid| self.struct_size(sid))
    }

    /// Total statement count across all procedures.
    pub fn len(&self) -> usize {
        self.procs.iter().map(Procedure::len).sum()
    }

    /// True when there are no procedures.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

/// Helper: an `Expr` that evaluates a variable's current value, or its
/// address if the variable is an array (C decay).
pub fn var_value_or_decay(proc: &Procedure, v: VarId) -> Expr {
    match proc.var(v).ty {
        Type::Array(..) => Expr::addr_of(v),
        _ => Expr::var(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LValue;

    #[test]
    fn fresh_temps_are_distinct() {
        let mut p = Procedure::new("f", Type::Void);
        let a = p.fresh_temp(Type::Int);
        let b = p.fresh_temp(Type::Float);
        assert_ne!(a, b);
        assert_eq!(p.var(a).name, "temp_0");
        assert_eq!(p.var(b).name, "temp_1");
        assert_eq!(p.var(b).storage, Storage::Temp);
    }

    #[test]
    fn stamps_are_unique_and_restamp_renumbers() {
        let mut p = Procedure::new("f", Type::Void);
        p.push(StmtKind::Nop);
        p.push(StmtKind::Nop);
        assert_ne!(p.body[0].id, p.body[1].id);
        p.restamp();
        assert_eq!(p.body[0].id, StmtId(0));
        assert_eq!(p.body[1].id, StmtId(1));
    }

    #[test]
    fn generation_tracks_mutation_and_is_excluded_from_eq() {
        let mut p = Procedure::new("f", Type::Void);
        assert_eq!(p.generation(), 0);
        p.bump_generation();
        assert_eq!(p.generation(), 1);
        let before = p.generation();
        p.restamp();
        assert!(p.generation() > before, "restamp bumps the generation");
        let mut q = p.clone();
        q.bump_generation();
        assert_eq!(p, q, "equality ignores the generation counter");
    }

    #[test]
    fn find_stmt_searches_nested_blocks() {
        let mut p = Procedure::new("f", Type::Void);
        let inner = p.stamp(StmtKind::Nop);
        let inner_id = inner.id;
        let w = p.stamp(StmtKind::While {
            cond: Expr::int(1),
            body: vec![inner],
            safe: false,
        });
        p.body.push(w);
        assert!(p.find_stmt(inner_id).is_some());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn program_lookup() {
        let mut prog = Program::new();
        prog.add_proc(Procedure::new("main", Type::Int));
        prog.add_proc(Procedure::new("daxpy", Type::Void));
        assert!(prog.proc_by_name("daxpy").is_some());
        assert!(prog.proc_by_name("missing").is_none());
        assert_eq!(prog.procs.len(), 2);
    }

    #[test]
    fn ensure_global_dedups_by_name() {
        let mut prog = Program::new();
        let g = VarInfo {
            name: "keyboard_status".into(),
            ty: Type::Int,
            storage: Storage::Global,
            volatile: true,
            addressed: true,
            init: None,
        };
        let i1 = prog.ensure_global(g.clone());
        let i2 = prog.ensure_global(g);
        assert_eq!(i1, i2);
        assert_eq!(prog.globals.len(), 1);
        assert!(prog.global_by_name("keyboard_status").unwrap().volatile);
    }

    #[test]
    fn var_by_name_finds_params() {
        let mut p = Procedure::new("f", Type::Void);
        let x = p.add_var(VarInfo {
            name: "x".into(),
            ty: Type::ptr_to(Type::Float),
            storage: Storage::Param,
            volatile: false,
            addressed: false,
            init: None,
        });
        p.params.push(x);
        assert_eq!(p.var_by_name("x"), Some(x));
        assert_eq!(p.var_by_name("y"), None);
    }

    #[test]
    fn array_var_decays_to_address() {
        let mut p = Procedure::new("f", Type::Void);
        let a = p.add_var(VarInfo {
            name: "a".into(),
            ty: Type::array_of(Type::Float, 100),
            storage: Storage::Auto,
            volatile: false,
            addressed: true,
            init: None,
        });
        let i = p.fresh_temp(Type::Int);
        assert_eq!(var_value_or_decay(&p, a), Expr::addr_of(a));
        assert_eq!(var_value_or_decay(&p, i), Expr::var(i));
    }

    #[test]
    fn defined_var_via_assign() {
        let mut p = Procedure::new("f", Type::Void);
        let t = p.fresh_temp(Type::Int);
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs: Expr::int(0),
        });
        assert_eq!(p.body[0].defined_var(), Some(t));
    }

    #[test]
    fn intern_file_dedups_and_resolves() {
        let mut prog = Program::new();
        let a = prog.intern_file("a.c");
        let b = prog.intern_file("b.c");
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(prog.intern_file("a.c"), a);
        assert_eq!(prog.file_name(a), Some("a.c"));
        assert_eq!(prog.file_name(0), None);
        assert_eq!(prog.file_name(99), None);
    }

    #[test]
    fn retag_spans_remaps_known_spans_only() {
        let mut p = Procedure::new("f", Type::Void);
        let s = p.stamp_at(StmtKind::Nop, crate::span::SrcSpan::new(3, 1));
        p.body.push(s);
        p.push(StmtKind::Nop); // synthesized, span unknown
        p.retag_spans(&[2]);
        assert_eq!(p.body[0].span.file, 2);
        assert_eq!(p.body[1].span.file, 0, "unknown spans keep tag 0");
    }

    #[test]
    fn struct_field_lookup() {
        let s = StructDef {
            name: "pt".into(),
            fields: vec![
                Field {
                    name: "x".into(),
                    ty: Type::Float,
                    offset: 0,
                },
                Field {
                    name: "y".into(),
                    ty: Type::Float,
                    offset: 4,
                },
            ],
            size: 8,
        };
        assert_eq!(s.field("y").unwrap().offset, 4);
        assert!(s.field("z").is_none());
    }
}
