//! Procedures, programs, symbol tables.
//!
//! A [`Procedure`] owns two flat arenas — an [`ExprPool`] and a
//! [`StmtPool`] — plus a [`Block`] of root statement ids. The pools are
//! public fields precisely so passes can split-borrow them
//! (`&proc.stmts[s]` while holding `&mut proc.exprs`), which is what makes
//! the id-rebinding rewrite idiom ergonomic without interior mutability.

use crate::expr::ExprPool;
use crate::ids::{ExprId, LabelId, ProcId, StmtId, StructId, VarId};
use crate::stmt::{Block, StmtKind, StmtPool};
use crate::types::{ScalarType, Type};

/// Where a variable lives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Storage {
    /// Stack local.
    Auto,
    /// Formal parameter.
    Param,
    /// Compiler-generated temporary. The paper's global register allocator
    /// makes temporaries nearly free (§4); the simulator charges them as
    /// registers.
    Temp,
    /// Function-scoped `static`. Inlining externalizes these (§7).
    Static,
    /// A reference to the program-level global of the same name.
    Global,
}

/// A symbol-table entry for one variable.
#[derive(Clone, PartialEq, Debug)]
pub struct VarInfo {
    /// Source-level (or generated) name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Storage class.
    pub storage: Storage,
    /// `volatile`-qualified (§1 item 6): reads/writes are pinned.
    pub volatile: bool,
    /// True when `&v` is taken somewhere or the variable is an
    /// array/struct; such variables are memory-resident and stores through
    /// pointers may alias them.
    pub addressed: bool,
    /// Constant initializer (globals/statics only; locals lower their
    /// initializers to assignments).
    pub init: Option<ConstInit>,
}

/// A constant initializer for a global or static variable.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConstInit {
    /// Integral initializer.
    Int(i64),
    /// Floating initializer.
    Float(f64),
}

impl VarInfo {
    /// The scalar register kind, if the variable is scalar.
    pub fn scalar(&self) -> Option<ScalarType> {
        self.ty.scalar()
    }
}

/// One field of a struct definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset from the struct base.
    pub offset: i64,
}

/// A struct layout, offsets already computed by the front end.
#[derive(Clone, PartialEq, Debug)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Total size in bytes (including trailing padding).
    pub size: i64,
}

impl StructDef {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// One procedure: signature, symbol table, label table, and the two flat
/// arenas holding its statement/expression storage.
#[derive(Clone, Debug)]
pub struct Procedure {
    /// Procedure name (global linkage).
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameter variables, in order (indexes into `vars`).
    pub params: Vec<VarId>,
    /// The variable table.
    pub vars: Vec<VarInfo>,
    /// Number of labels allocated.
    pub num_labels: u32,
    /// Root statement ids, in execution order.
    pub body: Block,
    /// The expression arena. Public so passes can split-borrow it against
    /// `stmts`.
    pub exprs: ExprPool,
    /// The statement arena (kind + span columns). `stmts.len()` is the
    /// procedure's statement-stamp watermark (the serialized `next_stmt`).
    pub stmts: StmtPool,
    pub(crate) next_temp: u32,
    /// IL generation counter: bumped whenever the procedure is mutated, so
    /// analyses memoized against an older generation are known stale. Not
    /// serialized and excluded from equality — it tracks identity over
    /// time, not content.
    pub(crate) generation: u64,
}

impl PartialEq for Procedure {
    fn eq(&self, other: &Procedure) -> bool {
        // `generation` is deliberately excluded: two procedures with the
        // same content are equal regardless of their mutation history
        // (catalog encode/decode round-trips rely on this). Arena *layout*
        // is also excluded — the body is compared structurally, so a
        // procedure equals its compacted self as long as statement stamps
        // and spans match.
        self.name == other.name
            && self.ret == other.ret
            && self.params == other.params
            && self.vars == other.vars
            && self.num_labels == other.num_labels
            && self.next_temp == other.next_temp
            && self.stmts.len() == other.stmts.len()
            && self.block_eq(&self.body, other, &other.body)
    }
}

impl Procedure {
    /// Creates an empty procedure.
    pub fn new(name: impl Into<String>, ret: Type) -> Procedure {
        Procedure {
            name: name.into(),
            ret,
            params: Vec::new(),
            vars: Vec::new(),
            num_labels: 0,
            body: Vec::new(),
            exprs: ExprPool::new(),
            stmts: StmtPool::new(),
            next_temp: 0,
            generation: 0,
        }
    }

    /// The IL generation counter. Analyses keyed to an older generation
    /// are stale; analyses keyed to the current one are still valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Marks the procedure as mutated. Every transformation that changes
    /// the body, the symbol table, or the label table must call this (or
    /// [`Procedure::restamp`], which bumps implicitly) so generation-keyed
    /// analysis caches are never served stale.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// The statement-stamp watermark: one past the highest stamp ever
    /// issued (serialized so stamps survive catalog round-trips).
    pub fn next_stmt(&self) -> u32 {
        self.stmts.len() as u32
    }

    /// The symbol-table entry for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this procedure.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Mutable access to the symbol-table entry for `v`.
    pub fn var_mut(&mut self, v: VarId) -> &mut VarInfo {
        &mut self.vars[v.index()]
    }

    /// The scalar kind of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not scalar (arrays and structs have no register
    /// kind).
    pub fn var_scalar(&self, v: VarId) -> ScalarType {
        self.var(v)
            .scalar()
            .unwrap_or_else(|| panic!("variable {} is not scalar", self.var(v).name))
    }

    /// Adds a variable and returns its id.
    pub fn add_var(&mut self, info: VarInfo) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(info);
        id
    }

    /// Adds a fresh compiler temporary of scalar type `ty`.
    pub fn fresh_temp(&mut self, ty: Type) -> VarId {
        let n = self.next_temp;
        self.next_temp += 1;
        self.add_var(VarInfo {
            name: format!("temp_{n}"),
            ty,
            storage: Storage::Temp,
            volatile: false,
            addressed: false,
            init: None,
        })
    }

    /// Allocates a fresh label.
    pub fn fresh_label(&mut self) -> LabelId {
        let id = LabelId(self.num_labels);
        self.num_labels += 1;
        id
    }

    /// Allocates a statement with a fresh stamp and no source position,
    /// returning its id. The statement is *not* linked into any block —
    /// the caller places the id.
    pub fn stamp(&mut self, kind: StmtKind) -> StmtId {
        self.stmts.alloc(kind, crate::span::SrcSpan::NONE)
    }

    /// Allocates a statement anchored to a source position (passes
    /// replacing a statement carry its span over).
    pub fn stamp_at(&mut self, kind: StmtKind, span: crate::span::SrcSpan) -> StmtId {
        self.stmts.alloc(kind, span)
    }

    /// Finds a variable by name (first match).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(VarId::from_index)
    }

    /// Total statement count of the body tree.
    pub fn len(&self) -> usize {
        crate::stmt::block_len(&self.stmts, &self.body)
    }

    /// True when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Iterates over every reachable statement in the tree (preorder).
    pub fn for_each_stmt(&self, f: &mut dyn FnMut(StmtId, &StmtKind)) {
        fn walk(pool: &StmtPool, block: &[StmtId], f: &mut dyn FnMut(StmtId, &StmtKind)) {
            for &s in block {
                f(s, &pool[s]);
                for b in pool[s].blocks() {
                    walk(pool, b, f);
                }
            }
        }
        walk(&self.stmts, &self.body, f);
    }

    /// The reachable statement ids in preorder. Useful for passes that
    /// need to mutate statements while walking: collect ids first, then
    /// index the pool.
    pub fn preorder_ids(&self) -> Vec<StmtId> {
        let mut out = Vec::with_capacity(self.stmts.len());
        self.for_each_stmt(&mut |s, _| out.push(s));
        out
    }

    /// Finds a *reachable* statement by stamp (preorder search). An
    /// orphaned arena slot — its id no longer linked from any block — is
    /// not found, even though indexing the pool directly would still
    /// resolve it.
    pub fn find_stmt(&self, id: StmtId) -> Option<&StmtKind> {
        let mut found = false;
        self.for_each_stmt(&mut |s, _| {
            if s == id {
                found = true;
            }
        });
        if found {
            Some(&self.stmts[id])
        } else {
            None
        }
    }

    /// Compacts both arenas: rebuilds the statement pool with fresh
    /// consecutive preorder stamps and the expression pool with only the
    /// reachable nodes in canonical (postorder) layout. Used after an
    /// inlined body is spliced in (whose stamps would otherwise collide)
    /// and to garbage-collect slots orphaned by rewrites. Lifetime
    /// allocation counters carry over.
    pub fn restamp(&mut self) {
        let old_stmts = std::mem::take(&mut self.stmts);
        let old_exprs = std::mem::take(&mut self.exprs);
        let old_body = std::mem::take(&mut self.body);

        fn walk(
            block: &[StmtId],
            old_stmts: &StmtPool,
            old_exprs: &ExprPool,
            new_stmts: &mut StmtPool,
            new_exprs: &mut ExprPool,
        ) -> Block {
            let mut out = Block::with_capacity(block.len());
            for &s in block {
                let mut kind = old_stmts[s].clone();
                for slot in kind.expr_slots_mut() {
                    *slot = new_exprs.import(old_exprs, *slot);
                }
                // allocate before recursing so ids are preorder
                let new_id = new_stmts.alloc(StmtKind::Nop, old_stmts.span(s));
                for b in kind.blocks_mut() {
                    let old_block = std::mem::take(b);
                    *b = walk(&old_block, old_stmts, old_exprs, new_stmts, new_exprs);
                }
                new_stmts[new_id] = kind;
                out.push(new_id);
            }
            out
        }

        let mut new_stmts = StmtPool::new();
        let mut new_exprs = ExprPool::new();
        self.body = walk(
            &old_body,
            &old_stmts,
            &old_exprs,
            &mut new_stmts,
            &mut new_exprs,
        );
        new_stmts.set_total_allocated(old_stmts.total_allocated());
        new_exprs.set_total_allocated(old_exprs.total_allocated());
        self.stmts = new_stmts;
        self.exprs = new_exprs;
        // every StmtId/ExprId-keyed analysis is invalidated by a restamp
        self.bump_generation();
    }

    /// True if any reachable statement satisfies the predicate.
    pub fn any_stmt(&self, mut pred: impl FnMut(StmtId, &StmtKind) -> bool) -> bool {
        let mut found = false;
        self.for_each_stmt(&mut |s, k| {
            if pred(s, k) {
                found = true;
            }
        });
        found
    }

    /// Convenience: append a freshly stamped statement to the body.
    pub fn push(&mut self, kind: StmtKind) {
        let s = self.stamp(kind);
        self.body.push(s);
    }

    /// Deep-copies the statement subtree at `s` into fresh slots — fresh
    /// stamps for every nested statement and deep-copied expression trees,
    /// so the copy shares no slots with the original and either can be
    /// rewritten in place without aliasing the other. The copy keeps the
    /// original's spans.
    pub fn clone_stmt(&mut self, s: StmtId) -> StmtId {
        let span = self.stmts.span(s);
        let mut kind = self.stmts[s].clone();
        for b in kind.blocks_mut() {
            for id in b.iter_mut() {
                *id = self.clone_stmt(*id);
            }
        }
        for e in kind.expr_slots_mut() {
            *e = self.exprs.copy(*e);
        }
        self.stamp_at(kind, span)
    }

    /// All `DoLoop`/`DoParallel`/`While` statement stamps, preorder.
    pub fn loop_ids(&self) -> Vec<StmtId> {
        let mut out = Vec::new();
        self.for_each_stmt(&mut |s, k| {
            if k.is_loop() {
                out.push(s);
            }
        });
        out
    }

    /// Structural equality of a block of this procedure against a block of
    /// `other`: same length, and pairwise equal stamps, spans, and kinds
    /// (expressions compared structurally across the two pools).
    pub fn block_eq(&self, a: &[StmtId], other: &Procedure, b: &[StmtId]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b.iter())
                .all(|(&x, &y)| self.stmt_eq(x, other, y))
    }

    fn stmt_eq(&self, a: StmtId, other: &Procedure, b: StmtId) -> bool {
        if a != b || self.stmts.span(a) != other.stmts.span(b) {
            return false;
        }
        let (ep, eq) = (&self.exprs, &other.exprs);
        match (&self.stmts[a], &other.stmts[b]) {
            (StmtKind::Assign { lhs: la, rhs: ra }, StmtKind::Assign { lhs: lb, rhs: rb }) => {
                ep.lvalue_eq(la, eq, lb) && ep.expr_eq(*ra, eq, *rb)
            }
            (
                StmtKind::If {
                    cond: ca,
                    then_blk: ta,
                    else_blk: ea,
                },
                StmtKind::If {
                    cond: cb,
                    then_blk: tb,
                    else_blk: eb,
                },
            ) => {
                ep.expr_eq(*ca, eq, *cb)
                    && self.block_eq(ta, other, tb)
                    && self.block_eq(ea, other, eb)
            }
            (
                StmtKind::While {
                    cond: ca,
                    body: ba,
                    safe: sa,
                },
                StmtKind::While {
                    cond: cb,
                    body: bb,
                    safe: sb,
                },
            ) => sa == sb && ep.expr_eq(*ca, eq, *cb) && self.block_eq(ba, other, bb),
            (
                StmtKind::DoLoop {
                    var: va,
                    lo: la,
                    hi: ha,
                    step: pa,
                    body: ba,
                    safe: sa,
                },
                StmtKind::DoLoop {
                    var: vb,
                    lo: lb,
                    hi: hb,
                    step: pb,
                    body: bb,
                    safe: sb,
                },
            ) => {
                va == vb
                    && sa == sb
                    && ep.expr_eq(*la, eq, *lb)
                    && ep.expr_eq(*ha, eq, *hb)
                    && ep.expr_eq(*pa, eq, *pb)
                    && self.block_eq(ba, other, bb)
            }
            (
                StmtKind::DoParallel {
                    var: va,
                    lo: la,
                    hi: ha,
                    step: pa,
                    body: ba,
                },
                StmtKind::DoParallel {
                    var: vb,
                    lo: lb,
                    hi: hb,
                    step: pb,
                    body: bb,
                },
            ) => {
                va == vb
                    && ep.expr_eq(*la, eq, *lb)
                    && ep.expr_eq(*ha, eq, *hb)
                    && ep.expr_eq(*pa, eq, *pb)
                    && self.block_eq(ba, other, bb)
            }
            (
                StmtKind::WhileSpread {
                    cond: ca,
                    parallel: pa,
                    serial: sa,
                },
                StmtKind::WhileSpread {
                    cond: cb,
                    parallel: pb,
                    serial: sb,
                },
            ) => {
                ep.expr_eq(*ca, eq, *cb)
                    && self.block_eq(pa, other, pb)
                    && self.block_eq(sa, other, sb)
            }
            (StmtKind::Label(la), StmtKind::Label(lb)) => la == lb,
            (StmtKind::Goto(la), StmtKind::Goto(lb)) => la == lb,
            (
                StmtKind::IfGoto {
                    cond: ca,
                    target: ta,
                },
                StmtKind::IfGoto {
                    cond: cb,
                    target: tb,
                },
            ) => ta == tb && ep.expr_eq(*ca, eq, *cb),
            (
                StmtKind::Call {
                    dst: da,
                    callee: na,
                    args: aa,
                },
                StmtKind::Call {
                    dst: db,
                    callee: nb,
                    args: ab,
                },
            ) => {
                na == nb
                    && match (da, db) {
                        (None, None) => true,
                        (Some(x), Some(y)) => ep.lvalue_eq(x, eq, y),
                        _ => false,
                    }
                    && aa.len() == ab.len()
                    && aa
                        .iter()
                        .zip(ab.iter())
                        .all(|(&x, &y)| ep.expr_eq(x, eq, y))
            }
            (StmtKind::Return(ra), StmtKind::Return(rb)) => match (ra, rb) {
                (None, None) => true,
                (Some(x), Some(y)) => ep.expr_eq(*x, eq, *y),
                _ => false,
            },
            (StmtKind::Nop, StmtKind::Nop) => true,
            _ => false,
        }
    }

    /// Remaps the origin file tag of every known span through `map`
    /// (`map[old_tag] = new_tag`). Used when a procedure crosses from a
    /// catalog or another session TU into a program whose file table
    /// numbers origins differently. Tags beyond `map` are left alone.
    pub fn retag_spans(&mut self, map: &[u32]) {
        for span in self.stmts.spans_mut() {
            if span.is_known() {
                if let Some(&new) = map.get(span.file as usize) {
                    span.file = new;
                }
            }
        }
    }
}

/// A whole program: procedures, globals, struct layouts.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// All procedures.
    pub procs: Vec<Procedure>,
    /// Program-level globals (referenced from procedures by name via
    /// [`Storage::Global`] entries).
    pub globals: Vec<VarInfo>,
    /// Struct layouts.
    pub structs: Vec<StructDef>,
    /// Origin file table for span file tags: a span with `file == f > 0`
    /// originated in `files[f - 1]`; `file == 0` is the current TU.
    pub files: Vec<String>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a procedure, returning its id.
    pub fn add_proc(&mut self, p: Procedure) -> ProcId {
        let id = ProcId::from_index(self.procs.len());
        self.procs.push(p);
        id
    }

    /// Looks up a procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<&Procedure> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Mutable lookup by name.
    pub fn proc_by_name_mut(&mut self, name: &str) -> Option<&mut Procedure> {
        self.procs.iter_mut().find(|p| p.name == name)
    }

    /// Adds (or finds) a global by name.
    pub fn ensure_global(&mut self, info: VarInfo) -> usize {
        if let Some(i) = self.globals.iter().position(|g| g.name == info.name) {
            i
        } else {
            self.globals.push(info);
            self.globals.len() - 1
        }
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<&VarInfo> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Interns an origin file name, returning its span file tag (`> 0`).
    pub fn intern_file(&mut self, name: &str) -> u32 {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            (i + 1) as u32
        } else {
            self.files.push(name.to_string());
            self.files.len() as u32
        }
    }

    /// Resolves a span file tag to its origin file name (`None` for the
    /// current TU or an out-of-range tag).
    pub fn file_name(&self, tag: u32) -> Option<&str> {
        if tag == 0 {
            None
        } else {
            self.files.get(tag as usize - 1).map(String::as_str)
        }
    }

    /// The size of struct `sid` in bytes.
    pub fn struct_size(&self, sid: StructId) -> i64 {
        self.structs[sid.index()].size
    }

    /// The byte size of a type in this program.
    pub fn type_size(&self, ty: &Type) -> i64 {
        ty.size_with(&|sid| self.struct_size(sid))
    }

    /// Total statement count across all procedures.
    pub fn len(&self) -> usize {
        self.procs.iter().map(Procedure::len).sum()
    }

    /// True when there are no procedures.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

/// Helper: allocates an expression that evaluates a variable's current
/// value, or its address if the variable is an array (C decay).
pub fn var_value_or_decay(proc: &mut Procedure, v: VarId) -> ExprId {
    match proc.var(v).ty {
        Type::Array(..) => proc.exprs.addr_of(v),
        _ => proc.exprs.var(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, LValue};

    #[test]
    fn fresh_temps_are_distinct() {
        let mut p = Procedure::new("f", Type::Void);
        let a = p.fresh_temp(Type::Int);
        let b = p.fresh_temp(Type::Float);
        assert_ne!(a, b);
        assert_eq!(p.var(a).name, "temp_0");
        assert_eq!(p.var(b).name, "temp_1");
        assert_eq!(p.var(b).storage, Storage::Temp);
    }

    #[test]
    fn stamps_are_unique_and_restamp_renumbers() {
        let mut p = Procedure::new("f", Type::Void);
        p.push(StmtKind::Nop);
        p.push(StmtKind::Nop);
        assert_ne!(p.body[0], p.body[1]);
        p.restamp();
        assert_eq!(p.body[0], StmtId(0));
        assert_eq!(p.body[1], StmtId(1));
    }

    #[test]
    fn restamp_compacts_both_arenas() {
        let mut p = Procedure::new("f", Type::Void);
        let t = p.fresh_temp(Type::Int);
        // orphaned garbage: an expr and a stmt never linked into the body
        let _orphan = p.exprs.int(99);
        let _dead = p.stamp(StmtKind::Nop);
        let one = p.exprs.int(1);
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs: one,
        });
        let allocated_exprs = p.exprs.total_allocated();
        let allocated_stmts = p.stmts.total_allocated();
        p.restamp();
        assert_eq!(p.stmts.len(), 1, "dead stmt slot collected");
        assert_eq!(p.exprs.len(), 1, "orphan expr collected");
        assert_eq!(p.body, vec![StmtId(0)]);
        assert_eq!(
            p.exprs.total_allocated(),
            allocated_exprs,
            "lifetime counter survives compaction"
        );
        assert_eq!(p.stmts.total_allocated(), allocated_stmts);
        match &p.stmts[StmtId(0)] {
            StmtKind::Assign { rhs, .. } => assert_eq!(p.exprs.as_int(*rhs), Some(1)),
            k => panic!("unexpected kind {k:?}"),
        }
    }

    #[test]
    fn generation_tracks_mutation_and_is_excluded_from_eq() {
        let mut p = Procedure::new("f", Type::Void);
        assert_eq!(p.generation(), 0);
        p.bump_generation();
        assert_eq!(p.generation(), 1);
        let before = p.generation();
        p.restamp();
        assert!(p.generation() > before, "restamp bumps the generation");
        let mut q = p.clone();
        q.bump_generation();
        assert_eq!(p, q, "equality ignores the generation counter");
    }

    #[test]
    fn equality_ignores_arena_layout() {
        let mut p = Procedure::new("f", Type::Void);
        let t = p.fresh_temp(Type::Int);
        let one = p.exprs.int(1);
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs: one,
        });
        let mut q = p.clone();
        // same structure, different expr layout: orphan then rebuilt rhs
        let _pad = q.exprs.int(7);
        let one2 = q.exprs.int(1);
        match &mut q.stmts[StmtId(0)] {
            StmtKind::Assign { rhs, .. } => *rhs = one2,
            _ => unreachable!(),
        }
        assert_eq!(p, q, "structural equality is layout-independent");
    }

    #[test]
    fn find_stmt_searches_nested_blocks() {
        let mut p = Procedure::new("f", Type::Void);
        let inner = p.stamp(StmtKind::Nop);
        let cond = p.exprs.int(1);
        let w = p.stamp(StmtKind::While {
            cond,
            body: vec![inner],
            safe: false,
        });
        p.body.push(w);
        assert!(p.find_stmt(inner).is_some());
        assert_eq!(p.len(), 2);
        let orphan = p.stamp(StmtKind::Nop);
        assert!(p.find_stmt(orphan).is_none(), "orphans are unreachable");
    }

    #[test]
    fn program_lookup() {
        let mut prog = Program::new();
        prog.add_proc(Procedure::new("main", Type::Int));
        prog.add_proc(Procedure::new("daxpy", Type::Void));
        assert!(prog.proc_by_name("daxpy").is_some());
        assert!(prog.proc_by_name("missing").is_none());
        assert_eq!(prog.procs.len(), 2);
    }

    #[test]
    fn ensure_global_dedups_by_name() {
        let mut prog = Program::new();
        let g = VarInfo {
            name: "keyboard_status".into(),
            ty: Type::Int,
            storage: Storage::Global,
            volatile: true,
            addressed: true,
            init: None,
        };
        let i1 = prog.ensure_global(g.clone());
        let i2 = prog.ensure_global(g);
        assert_eq!(i1, i2);
        assert_eq!(prog.globals.len(), 1);
        assert!(prog.global_by_name("keyboard_status").unwrap().volatile);
    }

    #[test]
    fn var_by_name_finds_params() {
        let mut p = Procedure::new("f", Type::Void);
        let x = p.add_var(VarInfo {
            name: "x".into(),
            ty: Type::ptr_to(Type::Float),
            storage: Storage::Param,
            volatile: false,
            addressed: false,
            init: None,
        });
        p.params.push(x);
        assert_eq!(p.var_by_name("x"), Some(x));
        assert_eq!(p.var_by_name("y"), None);
    }

    #[test]
    fn array_var_decays_to_address() {
        let mut p = Procedure::new("f", Type::Void);
        let a = p.add_var(VarInfo {
            name: "a".into(),
            ty: Type::array_of(Type::Float, 100),
            storage: Storage::Auto,
            volatile: false,
            addressed: true,
            init: None,
        });
        let i = p.fresh_temp(Type::Int);
        let ea = var_value_or_decay(&mut p, a);
        assert_eq!(p.exprs[ea], Expr::AddrOf(a));
        let ei = var_value_or_decay(&mut p, i);
        assert_eq!(p.exprs[ei], Expr::Var(i));
    }

    #[test]
    fn defined_var_via_assign() {
        let mut p = Procedure::new("f", Type::Void);
        let t = p.fresh_temp(Type::Int);
        let zero = p.exprs.int(0);
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs: zero,
        });
        assert_eq!(p.stmts[p.body[0]].defined_var(), Some(t));
    }

    #[test]
    fn intern_file_dedups_and_resolves() {
        let mut prog = Program::new();
        let a = prog.intern_file("a.c");
        let b = prog.intern_file("b.c");
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(prog.intern_file("a.c"), a);
        assert_eq!(prog.file_name(a), Some("a.c"));
        assert_eq!(prog.file_name(0), None);
        assert_eq!(prog.file_name(99), None);
    }

    #[test]
    fn retag_spans_remaps_known_spans_only() {
        let mut p = Procedure::new("f", Type::Void);
        let s = p.stamp_at(StmtKind::Nop, crate::span::SrcSpan::new(3, 1));
        p.body.push(s);
        p.push(StmtKind::Nop); // synthesized, span unknown
        p.retag_spans(&[2]);
        assert_eq!(p.stmts.span(p.body[0]).file, 2);
        assert_eq!(p.stmts.span(p.body[1]).file, 0, "unknown spans keep tag 0");
    }

    #[test]
    fn struct_field_lookup() {
        let s = StructDef {
            name: "pt".into(),
            fields: vec![
                Field {
                    name: "x".into(),
                    ty: Type::Float,
                    offset: 0,
                },
                Field {
                    name: "y".into(),
                    ty: Type::Float,
                    offset: 4,
                },
            ],
            size: 8,
        };
        assert_eq!(s.field("y").unwrap().offset, 4);
        assert!(s.field("z").is_none());
    }
}
