//! [`ToJson`]/[`FromJson`] conversions for the IL type tree.
//!
//! Only the types a [`crate::Catalog`] contains are encoded: procedures,
//! statements, expressions, types, symbol-table entries and struct
//! layouts. The encoding is externally tagged (unit variants as strings,
//! data variants as single-key objects) so catalogs stay diffable.

use crate::expr::{BinOp, Expr, LValue, UnOp};
use crate::ids::{LabelId, ProcId, StmtId, StructId, VarId};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::program::{ConstInit, Field, Procedure, Storage, StructDef, VarInfo};
use crate::span::SrcSpan;
use crate::stmt::{Stmt, StmtKind};
use crate::types::{ScalarType, Type};

fn bad(what: &str, got: &str) -> JsonError {
    JsonError {
        message: format!("unknown {what} `{got}`"),
        offset: 0,
    }
}

macro_rules! id_json {
    ($ty:ident) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(self.0))
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                Ok($ty(u32::from_json(v)?))
            }
        }
    };
}

id_json!(VarId);
id_json!(ProcId);
id_json!(LabelId);
id_json!(StmtId);
id_json!(StructId);

macro_rules! unit_enum_json {
    ($ty:ident, $what:expr, [$($variant:ident),+ $(,)?]) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                Json::Str(name.to_string())
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v.as_str()? {
                    $(stringify!($variant) => Ok($ty::$variant),)+
                    other => Err(bad($what, other)),
                }
            }
        }
    };
}

unit_enum_json!(ScalarType, "scalar type", [Char, Int, Float, Double, Ptr]);
unit_enum_json!(
    Storage,
    "storage class",
    [Auto, Param, Temp, Static, Global]
);
unit_enum_json!(
    BinOp,
    "binary operator",
    [Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge, BitAnd, BitOr, BitXor, Shl, Shr, Min, Max,]
);
unit_enum_json!(UnOp, "unary operator", [Neg, Not, BitNot]);

impl ToJson for Type {
    fn to_json(&self) -> Json {
        match self {
            Type::Void => Json::Str("Void".into()),
            Type::Char => Json::Str("Char".into()),
            Type::Int => Json::Str("Int".into()),
            Type::Float => Json::Str("Float".into()),
            Type::Double => Json::Str("Double".into()),
            Type::Ptr(inner) => Json::tagged("Ptr", inner.to_json()),
            Type::Array(elem, n) => {
                Json::tagged("Array", Json::Arr(vec![elem.to_json(), n.to_json()]))
            }
            Type::Struct(sid) => Json::tagged("Struct", sid.to_json()),
        }
    }
}

impl FromJson for Type {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        match (tag, payload) {
            ("Void", None) => Ok(Type::Void),
            ("Char", None) => Ok(Type::Char),
            ("Int", None) => Ok(Type::Int),
            ("Float", None) => Ok(Type::Float),
            ("Double", None) => Ok(Type::Double),
            ("Ptr", Some(p)) => Ok(Type::Ptr(Box::from_json(p)?)),
            ("Array", Some(p)) => {
                let [elem, n] = two(p)?;
                Ok(Type::Array(Box::from_json(elem)?, usize::from_json(n)?))
            }
            ("Struct", Some(p)) => Ok(Type::Struct(StructId::from_json(p)?)),
            _ => Err(bad("type", tag)),
        }
    }
}

fn two(v: &Json) -> Result<[&Json; 2], JsonError> {
    match v.as_arr()? {
        [a, b] => Ok([a, b]),
        _ => Err(JsonError {
            message: "expected a 2-element array".into(),
            offset: 0,
        }),
    }
}

impl ToJson for Expr {
    fn to_json(&self) -> Json {
        match self {
            Expr::IntConst(v) => Json::tagged("IntConst", v.to_json()),
            Expr::FloatConst(v, ty) => {
                Json::tagged("FloatConst", Json::Arr(vec![v.to_json(), ty.to_json()]))
            }
            Expr::Var(v) => Json::tagged("Var", v.to_json()),
            Expr::AddrOf(v) => Json::tagged("AddrOf", v.to_json()),
            Expr::Load { addr, ty, volatile } => Json::tagged(
                "Load",
                Json::obj(vec![
                    ("addr", addr.to_json()),
                    ("ty", ty.to_json()),
                    ("volatile", volatile.to_json()),
                ]),
            ),
            Expr::Unary { op, ty, arg } => Json::tagged(
                "Unary",
                Json::obj(vec![
                    ("op", op.to_json()),
                    ("ty", ty.to_json()),
                    ("arg", arg.to_json()),
                ]),
            ),
            Expr::Binary { op, ty, lhs, rhs } => Json::tagged(
                "Binary",
                Json::obj(vec![
                    ("op", op.to_json()),
                    ("ty", ty.to_json()),
                    ("lhs", lhs.to_json()),
                    ("rhs", rhs.to_json()),
                ]),
            ),
            Expr::Cast { to, from, arg } => Json::tagged(
                "Cast",
                Json::obj(vec![
                    ("to", to.to_json()),
                    ("from", from.to_json()),
                    ("arg", arg.to_json()),
                ]),
            ),
            Expr::Section {
                base,
                len,
                stride,
                ty,
            } => Json::tagged(
                "Section",
                Json::obj(vec![
                    ("base", base.to_json()),
                    ("len", len.to_json()),
                    ("stride", stride.to_json()),
                    ("ty", ty.to_json()),
                ]),
            ),
        }
    }
}

impl FromJson for Expr {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        let p = payload.ok_or_else(|| bad("expression", tag))?;
        match tag {
            "IntConst" => Ok(Expr::IntConst(i64::from_json(p)?)),
            "FloatConst" => {
                let [f, ty] = two(p)?;
                Ok(Expr::FloatConst(
                    f64::from_json(f)?,
                    ScalarType::from_json(ty)?,
                ))
            }
            "Var" => Ok(Expr::Var(VarId::from_json(p)?)),
            "AddrOf" => Ok(Expr::AddrOf(VarId::from_json(p)?)),
            "Load" => Ok(Expr::Load {
                addr: Box::from_json(p.field("addr")?)?,
                ty: ScalarType::from_json(p.field("ty")?)?,
                volatile: bool::from_json(p.field("volatile")?)?,
            }),
            "Unary" => Ok(Expr::Unary {
                op: UnOp::from_json(p.field("op")?)?,
                ty: ScalarType::from_json(p.field("ty")?)?,
                arg: Box::from_json(p.field("arg")?)?,
            }),
            "Binary" => Ok(Expr::Binary {
                op: BinOp::from_json(p.field("op")?)?,
                ty: ScalarType::from_json(p.field("ty")?)?,
                lhs: Box::from_json(p.field("lhs")?)?,
                rhs: Box::from_json(p.field("rhs")?)?,
            }),
            "Cast" => Ok(Expr::Cast {
                to: ScalarType::from_json(p.field("to")?)?,
                from: ScalarType::from_json(p.field("from")?)?,
                arg: Box::from_json(p.field("arg")?)?,
            }),
            "Section" => Ok(Expr::Section {
                base: Box::from_json(p.field("base")?)?,
                len: Box::from_json(p.field("len")?)?,
                stride: Box::from_json(p.field("stride")?)?,
                ty: ScalarType::from_json(p.field("ty")?)?,
            }),
            other => Err(bad("expression", other)),
        }
    }
}

impl ToJson for LValue {
    fn to_json(&self) -> Json {
        match self {
            LValue::Var(v) => Json::tagged("Var", v.to_json()),
            LValue::Deref { addr, ty, volatile } => Json::tagged(
                "Deref",
                Json::obj(vec![
                    ("addr", addr.to_json()),
                    ("ty", ty.to_json()),
                    ("volatile", volatile.to_json()),
                ]),
            ),
            LValue::Section {
                base,
                len,
                stride,
                ty,
            } => Json::tagged(
                "Section",
                Json::obj(vec![
                    ("base", base.to_json()),
                    ("len", len.to_json()),
                    ("stride", stride.to_json()),
                    ("ty", ty.to_json()),
                ]),
            ),
        }
    }
}

impl FromJson for LValue {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        let p = payload.ok_or_else(|| bad("lvalue", tag))?;
        match tag {
            "Var" => Ok(LValue::Var(VarId::from_json(p)?)),
            "Deref" => Ok(LValue::Deref {
                addr: Expr::from_json(p.field("addr")?)?,
                ty: ScalarType::from_json(p.field("ty")?)?,
                volatile: bool::from_json(p.field("volatile")?)?,
            }),
            "Section" => Ok(LValue::Section {
                base: Expr::from_json(p.field("base")?)?,
                len: Expr::from_json(p.field("len")?)?,
                stride: Expr::from_json(p.field("stride")?)?,
                ty: ScalarType::from_json(p.field("ty")?)?,
            }),
            other => Err(bad("lvalue", other)),
        }
    }
}

impl ToJson for SrcSpan {
    fn to_json(&self) -> Json {
        // `[line, col]` for current-TU spans, `[line, col, file]` once an
        // origin tag is attached — legacy two-element spans stay valid
        let mut arr = vec![
            Json::Int(i64::from(self.line)),
            Json::Int(i64::from(self.col)),
        ];
        if self.file != 0 {
            arr.push(Json::Int(i64::from(self.file)));
        }
        Json::Arr(arr)
    }
}

impl FromJson for SrcSpan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr()? {
            [line, col] => Ok(SrcSpan::new(u32::from_json(line)?, u32::from_json(col)?)),
            [line, col, file] => Ok(SrcSpan::new(u32::from_json(line)?, u32::from_json(col)?)
                .in_file(u32::from_json(file)?)),
            _ => Err(bad("span", "expected [line, col] or [line, col, file]")),
        }
    }
}

impl ToJson for Stmt {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("id", self.id.to_json()), ("kind", self.kind.to_json())];
        if self.span.is_known() {
            // spans are emitted only when present so catalogs of
            // synthesized procedures stay compact (and older catalogs,
            // which predate spans, decode unchanged)
            pairs.push(("span", self.span.to_json()));
        }
        Json::obj(pairs)
    }
}

impl FromJson for Stmt {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let span = match v.get("span") {
            Some(s) => SrcSpan::from_json(s)?,
            None => SrcSpan::NONE,
        };
        Ok(Stmt {
            id: StmtId::from_json(v.field("id")?)?,
            kind: StmtKind::from_json(v.field("kind")?)?,
            span,
        })
    }
}

impl ToJson for StmtKind {
    fn to_json(&self) -> Json {
        match self {
            StmtKind::Assign { lhs, rhs } => Json::tagged(
                "Assign",
                Json::obj(vec![("lhs", lhs.to_json()), ("rhs", rhs.to_json())]),
            ),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => Json::tagged(
                "If",
                Json::obj(vec![
                    ("cond", cond.to_json()),
                    ("then_blk", then_blk.to_json()),
                    ("else_blk", else_blk.to_json()),
                ]),
            ),
            StmtKind::While { cond, body, safe } => Json::tagged(
                "While",
                Json::obj(vec![
                    ("cond", cond.to_json()),
                    ("body", body.to_json()),
                    ("safe", safe.to_json()),
                ]),
            ),
            StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                safe,
            } => Json::tagged(
                "DoLoop",
                Json::obj(vec![
                    ("var", var.to_json()),
                    ("lo", lo.to_json()),
                    ("hi", hi.to_json()),
                    ("step", step.to_json()),
                    ("body", body.to_json()),
                    ("safe", safe.to_json()),
                ]),
            ),
            StmtKind::DoParallel {
                var,
                lo,
                hi,
                step,
                body,
            } => Json::tagged(
                "DoParallel",
                Json::obj(vec![
                    ("var", var.to_json()),
                    ("lo", lo.to_json()),
                    ("hi", hi.to_json()),
                    ("step", step.to_json()),
                    ("body", body.to_json()),
                ]),
            ),
            StmtKind::WhileSpread {
                cond,
                parallel,
                serial,
            } => Json::tagged(
                "WhileSpread",
                Json::obj(vec![
                    ("cond", cond.to_json()),
                    ("parallel", parallel.to_json()),
                    ("serial", serial.to_json()),
                ]),
            ),
            StmtKind::Label(l) => Json::tagged("Label", l.to_json()),
            StmtKind::Goto(l) => Json::tagged("Goto", l.to_json()),
            StmtKind::IfGoto { cond, target } => Json::tagged(
                "IfGoto",
                Json::obj(vec![("cond", cond.to_json()), ("target", target.to_json())]),
            ),
            StmtKind::Call { dst, callee, args } => Json::tagged(
                "Call",
                Json::obj(vec![
                    ("dst", dst.to_json()),
                    ("callee", callee.to_json()),
                    ("args", args.to_json()),
                ]),
            ),
            StmtKind::Return(e) => Json::tagged("Return", e.to_json()),
            StmtKind::Nop => Json::Str("Nop".into()),
        }
    }
}

impl FromJson for StmtKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        if tag == "Nop" {
            return Ok(StmtKind::Nop);
        }
        let p = payload.ok_or_else(|| bad("statement", tag))?;
        match tag {
            "Assign" => Ok(StmtKind::Assign {
                lhs: LValue::from_json(p.field("lhs")?)?,
                rhs: Expr::from_json(p.field("rhs")?)?,
            }),
            "If" => Ok(StmtKind::If {
                cond: Expr::from_json(p.field("cond")?)?,
                then_blk: Vec::from_json(p.field("then_blk")?)?,
                else_blk: Vec::from_json(p.field("else_blk")?)?,
            }),
            "While" => Ok(StmtKind::While {
                cond: Expr::from_json(p.field("cond")?)?,
                body: Vec::from_json(p.field("body")?)?,
                safe: bool::from_json(p.field("safe")?)?,
            }),
            "DoLoop" => Ok(StmtKind::DoLoop {
                var: VarId::from_json(p.field("var")?)?,
                lo: Expr::from_json(p.field("lo")?)?,
                hi: Expr::from_json(p.field("hi")?)?,
                step: Expr::from_json(p.field("step")?)?,
                body: Vec::from_json(p.field("body")?)?,
                safe: bool::from_json(p.field("safe")?)?,
            }),
            "DoParallel" => Ok(StmtKind::DoParallel {
                var: VarId::from_json(p.field("var")?)?,
                lo: Expr::from_json(p.field("lo")?)?,
                hi: Expr::from_json(p.field("hi")?)?,
                step: Expr::from_json(p.field("step")?)?,
                body: Vec::from_json(p.field("body")?)?,
            }),
            "WhileSpread" => Ok(StmtKind::WhileSpread {
                cond: Expr::from_json(p.field("cond")?)?,
                parallel: Vec::from_json(p.field("parallel")?)?,
                serial: Vec::from_json(p.field("serial")?)?,
            }),
            "Label" => Ok(StmtKind::Label(LabelId::from_json(p)?)),
            "Goto" => Ok(StmtKind::Goto(LabelId::from_json(p)?)),
            "IfGoto" => Ok(StmtKind::IfGoto {
                cond: Expr::from_json(p.field("cond")?)?,
                target: LabelId::from_json(p.field("target")?)?,
            }),
            "Call" => Ok(StmtKind::Call {
                dst: Option::from_json(p.field("dst")?)?,
                callee: String::from_json(p.field("callee")?)?,
                args: Vec::from_json(p.field("args")?)?,
            }),
            "Return" => Ok(StmtKind::Return(Option::from_json(p)?)),
            other => Err(bad("statement", other)),
        }
    }
}

impl ToJson for ConstInit {
    fn to_json(&self) -> Json {
        match self {
            ConstInit::Int(v) => Json::tagged("Int", v.to_json()),
            ConstInit::Float(v) => Json::tagged("Float", v.to_json()),
        }
    }
}

impl FromJson for ConstInit {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        let p = payload.ok_or_else(|| bad("initializer", tag))?;
        match tag {
            "Int" => Ok(ConstInit::Int(i64::from_json(p)?)),
            "Float" => Ok(ConstInit::Float(f64::from_json(p)?)),
            other => Err(bad("initializer", other)),
        }
    }
}

impl ToJson for VarInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("ty", self.ty.to_json()),
            ("storage", self.storage.to_json()),
            ("volatile", self.volatile.to_json()),
            ("addressed", self.addressed.to_json()),
            ("init", self.init.to_json()),
        ])
    }
}

impl FromJson for VarInfo {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(VarInfo {
            name: String::from_json(v.field("name")?)?,
            ty: Type::from_json(v.field("ty")?)?,
            storage: Storage::from_json(v.field("storage")?)?,
            volatile: bool::from_json(v.field("volatile")?)?,
            addressed: bool::from_json(v.field("addressed")?)?,
            init: Option::from_json(v.field("init")?)?,
        })
    }
}

impl ToJson for Field {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("ty", self.ty.to_json()),
            ("offset", self.offset.to_json()),
        ])
    }
}

impl FromJson for Field {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Field {
            name: String::from_json(v.field("name")?)?,
            ty: Type::from_json(v.field("ty")?)?,
            offset: i64::from_json(v.field("offset")?)?,
        })
    }
}

impl ToJson for StructDef {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("fields", self.fields.to_json()),
            ("size", self.size.to_json()),
        ])
    }
}

impl FromJson for StructDef {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(StructDef {
            name: String::from_json(v.field("name")?)?,
            fields: Vec::from_json(v.field("fields")?)?,
            size: i64::from_json(v.field("size")?)?,
        })
    }
}

impl ToJson for Procedure {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("ret", self.ret.to_json()),
            ("params", self.params.to_json()),
            ("vars", self.vars.to_json()),
            ("num_labels", self.num_labels.to_json()),
            ("body", self.body.to_json()),
            ("next_stmt", self.next_stmt.to_json()),
            ("next_temp", self.next_temp.to_json()),
        ])
    }
}

impl FromJson for Procedure {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut p = Procedure::new(
            String::from_json(v.field("name")?)?,
            Type::from_json(v.field("ret")?)?,
        );
        p.params = Vec::from_json(v.field("params")?)?;
        p.vars = Vec::from_json(v.field("vars")?)?;
        p.num_labels = u32::from_json(v.field("num_labels")?)?;
        p.body = Vec::from_json(v.field("body")?)?;
        p.next_stmt = u32::from_json(v.field("next_stmt")?)?;
        p.next_temp = u32::from_json(v.field("next_temp")?)?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;

    #[test]
    fn expr_roundtrip() {
        let e = Expr::binary(
            BinOp::Mul,
            ScalarType::Double,
            Expr::double(2.5),
            Expr::load(Expr::addr_of(VarId(9)), ScalarType::Double),
        );
        let text = e.to_json().to_string_compact();
        let back = Expr::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn procedure_roundtrip_preserves_counters() {
        let mut b = ProcBuilder::new("f", Type::Int);
        let n = b.param("n", Type::Int);
        let s = b.local("s", Type::Int);
        let i = b.local("i", Type::Int);
        b.assign_var(s, Expr::int(0));
        let body = {
            let mut lb = b.block();
            lb.assign_var(s, Expr::ibinary(BinOp::Add, Expr::var(s), Expr::var(i)));
            lb.stmts()
        };
        b.do_loop(i, Expr::int(1), Expr::var(n), Expr::int(1), body);
        b.ret(Some(Expr::var(s)));
        let mut p = b.finish();
        // exercise the private counters so the roundtrip must carry them
        p.fresh_temp(Type::Float);
        let text = p.to_json().to_string_compact();
        let back = Procedure::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.next_stmt, back.next_stmt);
        assert_eq!(p.next_temp, back.next_temp);
    }

    #[test]
    fn all_statement_kinds_roundtrip() {
        let kinds = vec![
            StmtKind::Nop,
            StmtKind::Label(LabelId(2)),
            StmtKind::Goto(LabelId(2)),
            StmtKind::Return(None),
            StmtKind::Return(Some(Expr::int(1))),
            StmtKind::IfGoto {
                cond: Expr::int(1),
                target: LabelId(0),
            },
            StmtKind::Call {
                dst: Some(LValue::Var(VarId(0))),
                callee: "f".into(),
                args: vec![Expr::int(1), Expr::float(2.0)],
            },
            StmtKind::WhileSpread {
                cond: Expr::var(VarId(0)),
                parallel: vec![Stmt::new(StmtId(1), StmtKind::Nop)],
                serial: vec![],
            },
            StmtKind::DoParallel {
                var: VarId(1),
                lo: Expr::int(0),
                hi: Expr::int(9),
                step: Expr::int(1),
                body: vec![],
            },
        ];
        for kind in kinds {
            let s = Stmt::new(StmtId(7), kind);
            let text = s.to_json().to_string_compact();
            let back = Stmt::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(s, back);
        }
    }

    #[test]
    fn span_file_tag_roundtrips_and_legacy_spans_decode() {
        // tagged span: three-element form
        let s = Stmt::new_at(StmtId(1), StmtKind::Nop, SrcSpan::new(4, 9).in_file(2));
        let text = s.to_json().to_string_compact();
        assert!(text.contains("[4,9,2]"), "{text}");
        let back = Stmt::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(s, back);
        // current-TU span: unchanged two-element form
        let s = Stmt::new_at(StmtId(1), StmtKind::Nop, SrcSpan::new(4, 9));
        let text = s.to_json().to_string_compact();
        assert!(text.contains("[4,9]"), "{text}");
        // legacy span-free statements still decode
        let doc = crate::json::parse("{\"id\":3,\"kind\":\"Nop\"}").unwrap();
        let back = Stmt::from_json(&doc).unwrap();
        assert_eq!(back.span, SrcSpan::NONE);
    }

    #[test]
    fn decode_rejects_unknown_variant() {
        let doc = crate::json::parse("{\"Bogus\":1}").unwrap();
        assert!(Expr::from_json(&doc).is_err());
        assert!(Type::from_json(&doc).is_err());
    }
}
