//! JSON conversions for the IL type tree.
//!
//! Only the types a [`crate::Catalog`] contains are encoded: procedures,
//! statements, expressions, types, symbol-table entries and struct
//! layouts. The encoding is externally tagged (unit variants as strings,
//! data variants as single-key objects) so catalogs stay diffable.
//!
//! The *wire format is the structural tree*, not the arena: expressions
//! serialize as nested objects and statements as `{"id", "kind", "span"?}`
//! objects with their blocks inline, exactly as when the IL was boxed.
//! Arena layout is a memory detail that never leaks into catalogs, so
//! pre-refactor catalogs decode unchanged and encoded output is
//! byte-identical. Types that need pool context to resolve ids
//! ([`crate::Expr`], [`crate::LValue`], statements) convert through the
//! free functions here; self-contained types keep [`ToJson`]/[`FromJson`]
//! impls.

use crate::expr::{BinOp, Expr, ExprPool, LValue, UnOp};
use crate::ids::{ExprId, LabelId, ProcId, StmtId, StructId, VarId};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::program::{ConstInit, Field, Procedure, Storage, StructDef, VarInfo};
use crate::span::SrcSpan;
use crate::stmt::{Block, StmtKind};
use crate::types::{ScalarType, Type};

fn bad(what: &str, got: &str) -> JsonError {
    JsonError {
        message: format!("unknown {what} `{got}`"),
        offset: 0,
    }
}

macro_rules! id_json {
    ($ty:ident) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(self.0))
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                Ok($ty(u32::from_json(v)?))
            }
        }
    };
}

id_json!(VarId);
id_json!(ProcId);
id_json!(LabelId);
id_json!(StmtId);
id_json!(StructId);

macro_rules! unit_enum_json {
    ($ty:ident, $what:expr, [$($variant:ident),+ $(,)?]) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                Json::Str(name.to_string())
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v.as_str()? {
                    $(stringify!($variant) => Ok($ty::$variant),)+
                    other => Err(bad($what, other)),
                }
            }
        }
    };
}

unit_enum_json!(ScalarType, "scalar type", [Char, Int, Float, Double, Ptr]);
unit_enum_json!(
    Storage,
    "storage class",
    [Auto, Param, Temp, Static, Global]
);
unit_enum_json!(
    BinOp,
    "binary operator",
    [Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge, BitAnd, BitOr, BitXor, Shl, Shr, Min, Max,]
);
unit_enum_json!(UnOp, "unary operator", [Neg, Not, BitNot]);

impl ToJson for Type {
    fn to_json(&self) -> Json {
        match self {
            Type::Void => Json::Str("Void".into()),
            Type::Char => Json::Str("Char".into()),
            Type::Int => Json::Str("Int".into()),
            Type::Float => Json::Str("Float".into()),
            Type::Double => Json::Str("Double".into()),
            Type::Ptr(inner) => Json::tagged("Ptr", inner.to_json()),
            Type::Array(elem, n) => {
                Json::tagged("Array", Json::Arr(vec![elem.to_json(), n.to_json()]))
            }
            Type::Struct(sid) => Json::tagged("Struct", sid.to_json()),
        }
    }
}

impl FromJson for Type {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        match (tag, payload) {
            ("Void", None) => Ok(Type::Void),
            ("Char", None) => Ok(Type::Char),
            ("Int", None) => Ok(Type::Int),
            ("Float", None) => Ok(Type::Float),
            ("Double", None) => Ok(Type::Double),
            ("Ptr", Some(p)) => Ok(Type::Ptr(Box::from_json(p)?)),
            ("Array", Some(p)) => {
                let [elem, n] = two(p)?;
                Ok(Type::Array(Box::from_json(elem)?, usize::from_json(n)?))
            }
            ("Struct", Some(p)) => Ok(Type::Struct(StructId::from_json(p)?)),
            _ => Err(bad("type", tag)),
        }
    }
}

fn two(v: &Json) -> Result<[&Json; 2], JsonError> {
    match v.as_arr()? {
        [a, b] => Ok([a, b]),
        _ => Err(JsonError {
            message: "expected a 2-element array".into(),
            offset: 0,
        }),
    }
}

/// Encodes the expression subtree at `id` as a nested tagged tree.
pub fn expr_to_json(pool: &ExprPool, id: ExprId) -> Json {
    match pool[id] {
        Expr::IntConst(v) => Json::tagged("IntConst", v.to_json()),
        Expr::FloatConst(v, ty) => {
            Json::tagged("FloatConst", Json::Arr(vec![v.to_json(), ty.to_json()]))
        }
        Expr::Var(v) => Json::tagged("Var", v.to_json()),
        Expr::AddrOf(v) => Json::tagged("AddrOf", v.to_json()),
        Expr::Load { addr, ty, volatile } => Json::tagged(
            "Load",
            Json::obj(vec![
                ("addr", expr_to_json(pool, addr)),
                ("ty", ty.to_json()),
                ("volatile", volatile.to_json()),
            ]),
        ),
        Expr::Unary { op, ty, arg } => Json::tagged(
            "Unary",
            Json::obj(vec![
                ("op", op.to_json()),
                ("ty", ty.to_json()),
                ("arg", expr_to_json(pool, arg)),
            ]),
        ),
        Expr::Binary { op, ty, lhs, rhs } => Json::tagged(
            "Binary",
            Json::obj(vec![
                ("op", op.to_json()),
                ("ty", ty.to_json()),
                ("lhs", expr_to_json(pool, lhs)),
                ("rhs", expr_to_json(pool, rhs)),
            ]),
        ),
        Expr::Cast { to, from, arg } => Json::tagged(
            "Cast",
            Json::obj(vec![
                ("to", to.to_json()),
                ("from", from.to_json()),
                ("arg", expr_to_json(pool, arg)),
            ]),
        ),
        Expr::Section {
            base,
            len,
            stride,
            ty,
        } => Json::tagged(
            "Section",
            Json::obj(vec![
                ("base", expr_to_json(pool, base)),
                ("len", expr_to_json(pool, len)),
                ("stride", expr_to_json(pool, stride)),
                ("ty", ty.to_json()),
            ]),
        ),
    }
}

/// Decodes a nested expression tree into the pool, returning the root id
/// (children are allocated before parents, giving canonical postorder
/// layout).
pub fn expr_from_json(pool: &mut ExprPool, v: &Json) -> Result<ExprId, JsonError> {
    let (tag, payload) = v.variant()?;
    let p = payload.ok_or_else(|| bad("expression", tag))?;
    let node = match tag {
        "IntConst" => Expr::IntConst(i64::from_json(p)?),
        "FloatConst" => {
            let [f, ty] = two(p)?;
            Expr::FloatConst(f64::from_json(f)?, ScalarType::from_json(ty)?)
        }
        "Var" => Expr::Var(VarId::from_json(p)?),
        "AddrOf" => Expr::AddrOf(VarId::from_json(p)?),
        "Load" => Expr::Load {
            addr: expr_from_json(pool, p.field("addr")?)?,
            ty: ScalarType::from_json(p.field("ty")?)?,
            volatile: bool::from_json(p.field("volatile")?)?,
        },
        "Unary" => Expr::Unary {
            op: UnOp::from_json(p.field("op")?)?,
            ty: ScalarType::from_json(p.field("ty")?)?,
            arg: expr_from_json(pool, p.field("arg")?)?,
        },
        "Binary" => Expr::Binary {
            op: BinOp::from_json(p.field("op")?)?,
            ty: ScalarType::from_json(p.field("ty")?)?,
            lhs: expr_from_json(pool, p.field("lhs")?)?,
            rhs: expr_from_json(pool, p.field("rhs")?)?,
        },
        "Cast" => Expr::Cast {
            to: ScalarType::from_json(p.field("to")?)?,
            from: ScalarType::from_json(p.field("from")?)?,
            arg: expr_from_json(pool, p.field("arg")?)?,
        },
        "Section" => Expr::Section {
            base: expr_from_json(pool, p.field("base")?)?,
            len: expr_from_json(pool, p.field("len")?)?,
            stride: expr_from_json(pool, p.field("stride")?)?,
            ty: ScalarType::from_json(p.field("ty")?)?,
        },
        other => return Err(bad("expression", other)),
    };
    Ok(pool.alloc(node))
}

/// Encodes an lvalue (address expressions inline as nested trees).
pub fn lvalue_to_json(pool: &ExprPool, lv: &LValue) -> Json {
    match *lv {
        LValue::Var(v) => Json::tagged("Var", v.to_json()),
        LValue::Deref { addr, ty, volatile } => Json::tagged(
            "Deref",
            Json::obj(vec![
                ("addr", expr_to_json(pool, addr)),
                ("ty", ty.to_json()),
                ("volatile", volatile.to_json()),
            ]),
        ),
        LValue::Section {
            base,
            len,
            stride,
            ty,
        } => Json::tagged(
            "Section",
            Json::obj(vec![
                ("base", expr_to_json(pool, base)),
                ("len", expr_to_json(pool, len)),
                ("stride", expr_to_json(pool, stride)),
                ("ty", ty.to_json()),
            ]),
        ),
    }
}

/// Decodes an lvalue, allocating its address expressions in the pool.
pub fn lvalue_from_json(pool: &mut ExprPool, v: &Json) -> Result<LValue, JsonError> {
    let (tag, payload) = v.variant()?;
    let p = payload.ok_or_else(|| bad("lvalue", tag))?;
    match tag {
        "Var" => Ok(LValue::Var(VarId::from_json(p)?)),
        "Deref" => Ok(LValue::Deref {
            addr: expr_from_json(pool, p.field("addr")?)?,
            ty: ScalarType::from_json(p.field("ty")?)?,
            volatile: bool::from_json(p.field("volatile")?)?,
        }),
        "Section" => Ok(LValue::Section {
            base: expr_from_json(pool, p.field("base")?)?,
            len: expr_from_json(pool, p.field("len")?)?,
            stride: expr_from_json(pool, p.field("stride")?)?,
            ty: ScalarType::from_json(p.field("ty")?)?,
        }),
        other => Err(bad("lvalue", other)),
    }
}

impl ToJson for SrcSpan {
    fn to_json(&self) -> Json {
        // `[line, col]` for current-TU spans, `[line, col, file]` once an
        // origin tag is attached — legacy two-element spans stay valid
        let mut arr = vec![
            Json::Int(i64::from(self.line)),
            Json::Int(i64::from(self.col)),
        ];
        if self.file != 0 {
            arr.push(Json::Int(i64::from(self.file)));
        }
        Json::Arr(arr)
    }
}

impl FromJson for SrcSpan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr()? {
            [line, col] => Ok(SrcSpan::new(u32::from_json(line)?, u32::from_json(col)?)),
            [line, col, file] => Ok(SrcSpan::new(u32::from_json(line)?, u32::from_json(col)?)
                .in_file(u32::from_json(file)?)),
            _ => Err(bad("span", "expected [line, col] or [line, col, file]")),
        }
    }
}

/// Encodes one statement as `{"id": …, "kind": …, "span"?: …}` with nested
/// blocks inline.
pub fn stmt_to_json(proc: &Procedure, s: StmtId) -> Json {
    let span = proc.stmts.span(s);
    let mut pairs = vec![
        ("id", s.to_json()),
        ("kind", stmt_kind_to_json(proc, &proc.stmts[s])),
    ];
    if span.is_known() {
        // spans are emitted only when present so catalogs of
        // synthesized procedures stay compact (and older catalogs,
        // which predate spans, decode unchanged)
        pairs.push(("span", span.to_json()));
    }
    Json::obj(pairs)
}

/// Encodes a block as an array of statement objects.
pub fn block_to_json(proc: &Procedure, block: &[StmtId]) -> Json {
    Json::Arr(block.iter().map(|&s| stmt_to_json(proc, s)).collect())
}

fn stmt_kind_to_json(proc: &Procedure, kind: &StmtKind) -> Json {
    let pool = &proc.exprs;
    match kind {
        StmtKind::Assign { lhs, rhs } => Json::tagged(
            "Assign",
            Json::obj(vec![
                ("lhs", lvalue_to_json(pool, lhs)),
                ("rhs", expr_to_json(pool, *rhs)),
            ]),
        ),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => Json::tagged(
            "If",
            Json::obj(vec![
                ("cond", expr_to_json(pool, *cond)),
                ("then_blk", block_to_json(proc, then_blk)),
                ("else_blk", block_to_json(proc, else_blk)),
            ]),
        ),
        StmtKind::While { cond, body, safe } => Json::tagged(
            "While",
            Json::obj(vec![
                ("cond", expr_to_json(pool, *cond)),
                ("body", block_to_json(proc, body)),
                ("safe", safe.to_json()),
            ]),
        ),
        StmtKind::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
            safe,
        } => Json::tagged(
            "DoLoop",
            Json::obj(vec![
                ("var", var.to_json()),
                ("lo", expr_to_json(pool, *lo)),
                ("hi", expr_to_json(pool, *hi)),
                ("step", expr_to_json(pool, *step)),
                ("body", block_to_json(proc, body)),
                ("safe", safe.to_json()),
            ]),
        ),
        StmtKind::DoParallel {
            var,
            lo,
            hi,
            step,
            body,
        } => Json::tagged(
            "DoParallel",
            Json::obj(vec![
                ("var", var.to_json()),
                ("lo", expr_to_json(pool, *lo)),
                ("hi", expr_to_json(pool, *hi)),
                ("step", expr_to_json(pool, *step)),
                ("body", block_to_json(proc, body)),
            ]),
        ),
        StmtKind::WhileSpread {
            cond,
            parallel,
            serial,
        } => Json::tagged(
            "WhileSpread",
            Json::obj(vec![
                ("cond", expr_to_json(pool, *cond)),
                ("parallel", block_to_json(proc, parallel)),
                ("serial", block_to_json(proc, serial)),
            ]),
        ),
        StmtKind::Label(l) => Json::tagged("Label", l.to_json()),
        StmtKind::Goto(l) => Json::tagged("Goto", l.to_json()),
        StmtKind::IfGoto { cond, target } => Json::tagged(
            "IfGoto",
            Json::obj(vec![
                ("cond", expr_to_json(pool, *cond)),
                ("target", target.to_json()),
            ]),
        ),
        StmtKind::Call { dst, callee, args } => Json::tagged(
            "Call",
            Json::obj(vec![
                (
                    "dst",
                    match dst {
                        Some(d) => lvalue_to_json(pool, d),
                        None => Json::Null,
                    },
                ),
                ("callee", callee.to_json()),
                (
                    "args",
                    Json::Arr(args.iter().map(|&a| expr_to_json(pool, a)).collect()),
                ),
            ]),
        ),
        StmtKind::Return(e) => Json::tagged(
            "Return",
            match e {
                Some(e) => expr_to_json(pool, *e),
                None => Json::Null,
            },
        ),
        StmtKind::Nop => Json::Str("Nop".into()),
    }
}

/// Decodes one statement object into the procedure's arenas, placing it at
/// its recorded stamp (the pool grows with `Nop` gap slots as needed) and
/// returning that id.
pub fn stmt_from_json(proc: &mut Procedure, v: &Json) -> Result<StmtId, JsonError> {
    let id = StmtId::from_json(v.field("id")?)?;
    check_stmt_gap(&proc.stmts, id.index() + 1)?;
    let span = match v.get("span") {
        Some(s) => SrcSpan::from_json(s)?,
        None => SrcSpan::NONE,
    };
    let kind = stmt_kind_from_json(proc, v.field("kind")?)?;
    proc.stmts.grow_to(id.index() + 1);
    proc.stmts[id] = kind;
    proc.stmts.set_span(id, span);
    Ok(id)
}

/// Real catalogs only have stamp gaps left by swept statements, so a
/// recorded id far beyond the decoded arena is corruption — reject it
/// instead of materializing gigabytes of gap slots.
const MAX_STMT_GAP: usize = 1 << 20;

fn check_stmt_gap(stmts: &crate::stmt::StmtPool, wanted: usize) -> Result<(), JsonError> {
    if wanted > stmts.len().saturating_add(MAX_STMT_GAP) {
        return Err(JsonError {
            message: format!(
                "statement id {} implausibly far beyond the {}-slot arena",
                wanted - 1,
                stmts.len()
            ),
            offset: 0,
        });
    }
    Ok(())
}

/// Decodes an array of statement objects into a block of ids.
pub fn block_from_json(proc: &mut Procedure, v: &Json) -> Result<Block, JsonError> {
    v.as_arr()?
        .iter()
        .map(|s| stmt_from_json(proc, s))
        .collect()
}

fn stmt_kind_from_json(proc: &mut Procedure, v: &Json) -> Result<StmtKind, JsonError> {
    let (tag, payload) = v.variant()?;
    if tag == "Nop" {
        return Ok(StmtKind::Nop);
    }
    let p = payload.ok_or_else(|| bad("statement", tag))?;
    match tag {
        "Assign" => Ok(StmtKind::Assign {
            lhs: lvalue_from_json(&mut proc.exprs, p.field("lhs")?)?,
            rhs: expr_from_json(&mut proc.exprs, p.field("rhs")?)?,
        }),
        "If" => Ok(StmtKind::If {
            cond: expr_from_json(&mut proc.exprs, p.field("cond")?)?,
            then_blk: block_from_json(proc, p.field("then_blk")?)?,
            else_blk: block_from_json(proc, p.field("else_blk")?)?,
        }),
        "While" => Ok(StmtKind::While {
            cond: expr_from_json(&mut proc.exprs, p.field("cond")?)?,
            body: block_from_json(proc, p.field("body")?)?,
            safe: bool::from_json(p.field("safe")?)?,
        }),
        "DoLoop" => Ok(StmtKind::DoLoop {
            var: VarId::from_json(p.field("var")?)?,
            lo: expr_from_json(&mut proc.exprs, p.field("lo")?)?,
            hi: expr_from_json(&mut proc.exprs, p.field("hi")?)?,
            step: expr_from_json(&mut proc.exprs, p.field("step")?)?,
            body: block_from_json(proc, p.field("body")?)?,
            safe: bool::from_json(p.field("safe")?)?,
        }),
        "DoParallel" => Ok(StmtKind::DoParallel {
            var: VarId::from_json(p.field("var")?)?,
            lo: expr_from_json(&mut proc.exprs, p.field("lo")?)?,
            hi: expr_from_json(&mut proc.exprs, p.field("hi")?)?,
            step: expr_from_json(&mut proc.exprs, p.field("step")?)?,
            body: block_from_json(proc, p.field("body")?)?,
        }),
        "WhileSpread" => Ok(StmtKind::WhileSpread {
            cond: expr_from_json(&mut proc.exprs, p.field("cond")?)?,
            parallel: block_from_json(proc, p.field("parallel")?)?,
            serial: block_from_json(proc, p.field("serial")?)?,
        }),
        "Label" => Ok(StmtKind::Label(LabelId::from_json(p)?)),
        "Goto" => Ok(StmtKind::Goto(LabelId::from_json(p)?)),
        "IfGoto" => Ok(StmtKind::IfGoto {
            cond: expr_from_json(&mut proc.exprs, p.field("cond")?)?,
            target: LabelId::from_json(p.field("target")?)?,
        }),
        "Call" => {
            let dst = match p.field("dst")? {
                Json::Null => None,
                d => Some(lvalue_from_json(&mut proc.exprs, d)?),
            };
            let args = p
                .field("args")?
                .as_arr()?
                .iter()
                .map(|a| expr_from_json(&mut proc.exprs, a))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(StmtKind::Call {
                dst,
                callee: String::from_json(p.field("callee")?)?,
                args,
            })
        }
        "Return" => Ok(StmtKind::Return(match p {
            Json::Null => None,
            e => Some(expr_from_json(&mut proc.exprs, e)?),
        })),
        other => Err(bad("statement", other)),
    }
}

impl ToJson for ConstInit {
    fn to_json(&self) -> Json {
        match self {
            ConstInit::Int(v) => Json::tagged("Int", v.to_json()),
            ConstInit::Float(v) => Json::tagged("Float", v.to_json()),
        }
    }
}

impl FromJson for ConstInit {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        let p = payload.ok_or_else(|| bad("initializer", tag))?;
        match tag {
            "Int" => Ok(ConstInit::Int(i64::from_json(p)?)),
            "Float" => Ok(ConstInit::Float(f64::from_json(p)?)),
            other => Err(bad("initializer", other)),
        }
    }
}

impl ToJson for VarInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("ty", self.ty.to_json()),
            ("storage", self.storage.to_json()),
            ("volatile", self.volatile.to_json()),
            ("addressed", self.addressed.to_json()),
            ("init", self.init.to_json()),
        ])
    }
}

impl FromJson for VarInfo {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(VarInfo {
            name: String::from_json(v.field("name")?)?,
            ty: Type::from_json(v.field("ty")?)?,
            storage: Storage::from_json(v.field("storage")?)?,
            volatile: bool::from_json(v.field("volatile")?)?,
            addressed: bool::from_json(v.field("addressed")?)?,
            init: Option::from_json(v.field("init")?)?,
        })
    }
}

impl ToJson for Field {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("ty", self.ty.to_json()),
            ("offset", self.offset.to_json()),
        ])
    }
}

impl FromJson for Field {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Field {
            name: String::from_json(v.field("name")?)?,
            ty: Type::from_json(v.field("ty")?)?,
            offset: i64::from_json(v.field("offset")?)?,
        })
    }
}

impl ToJson for StructDef {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("fields", self.fields.to_json()),
            ("size", self.size.to_json()),
        ])
    }
}

impl FromJson for StructDef {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(StructDef {
            name: String::from_json(v.field("name")?)?,
            fields: Vec::from_json(v.field("fields")?)?,
            size: i64::from_json(v.field("size")?)?,
        })
    }
}

impl ToJson for Procedure {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("ret", self.ret.to_json()),
            ("params", self.params.to_json()),
            ("vars", self.vars.to_json()),
            ("num_labels", self.num_labels.to_json()),
            ("body", block_to_json(self, &self.body)),
            ("next_stmt", self.next_stmt().to_json()),
            ("next_temp", self.next_temp.to_json()),
        ])
    }
}

impl FromJson for Procedure {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut p = Procedure::new(
            String::from_json(v.field("name")?)?,
            Type::from_json(v.field("ret")?)?,
        );
        p.params = Vec::from_json(v.field("params")?)?;
        p.vars = Vec::from_json(v.field("vars")?)?;
        p.num_labels = u32::from_json(v.field("num_labels")?)?;
        let body = block_from_json(&mut p, v.field("body")?)?;
        p.body = body;
        // honor the serialized stamp watermark: gap slots stay Nop
        let next_stmt = u32::from_json(v.field("next_stmt")?)?;
        check_stmt_gap(&p.stmts, next_stmt as usize)?;
        p.stmts.grow_to(next_stmt as usize);
        p.next_temp = u32::from_json(v.field("next_temp")?)?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;

    #[test]
    fn expr_roundtrip() {
        let mut pool = ExprPool::new();
        let addr = pool.addr_of(VarId(9));
        let ld = pool.load(addr, ScalarType::Double);
        let k = pool.double(2.5);
        let e = pool.binary(BinOp::Mul, ScalarType::Double, k, ld);
        let text = expr_to_json(&pool, e).to_string_compact();
        let mut pool2 = ExprPool::new();
        let back = expr_from_json(&mut pool2, &crate::json::parse(&text).unwrap()).unwrap();
        assert!(pool.expr_eq(e, &pool2, back));
    }

    #[test]
    fn procedure_roundtrip_preserves_counters() {
        let mut b = ProcBuilder::new("f", Type::Int);
        let n = b.param("n", Type::Int);
        let s = b.local("s", Type::Int);
        let i = b.local("i", Type::Int);
        let zero = b.int(0);
        b.assign_var(s, zero);
        let body = {
            let mut lb = b.block();
            let sv = lb.var(s);
            let iv = lb.var(i);
            let add = lb.ibinary(BinOp::Add, sv, iv);
            lb.assign_var(s, add);
            lb.stmts()
        };
        let lo = b.int(1);
        let hi = b.var(n);
        let step = b.int(1);
        b.do_loop(i, lo, hi, step, body);
        let sv = b.var(s);
        b.ret(Some(sv));
        let mut p = b.finish();
        // exercise the private counters so the roundtrip must carry them
        p.fresh_temp(Type::Float);
        let text = p.to_json().to_string_compact();
        let back = Procedure::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.next_stmt(), back.next_stmt());
        assert_eq!(p.next_temp, back.next_temp);
    }

    #[test]
    fn all_statement_kinds_roundtrip() {
        let mut p = Procedure::new("k", Type::Void);
        let one = p.exprs.int(1);
        let two = p.exprs.float(2.0);
        let c0 = p.exprs.int(1);
        let cv = p.exprs.var(VarId(0));
        let lo = p.exprs.int(0);
        let hi = p.exprs.int(9);
        let step = p.exprs.int(1);
        let r1 = p.exprs.int(1);
        let inner = p.stamp(StmtKind::Nop);
        for kind in [
            StmtKind::Nop,
            StmtKind::Label(LabelId(2)),
            StmtKind::Goto(LabelId(2)),
            StmtKind::Return(None),
            StmtKind::Return(Some(r1)),
            StmtKind::IfGoto {
                cond: c0,
                target: LabelId(0),
            },
            StmtKind::Call {
                dst: Some(LValue::Var(VarId(0))),
                callee: "f".into(),
                args: vec![one, two],
            },
            StmtKind::WhileSpread {
                cond: cv,
                parallel: vec![inner],
                serial: vec![],
            },
            StmtKind::DoParallel {
                var: VarId(1),
                lo,
                hi,
                step,
                body: vec![],
            },
        ] {
            let s = p.stamp(kind);
            p.body = vec![s];
            let text = stmt_to_json(&p, s).to_string_compact();
            let mut q = Procedure::new("k", Type::Void);
            let back = stmt_from_json(&mut q, &crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, s, "stamp preserved");
            assert!(p.block_eq(&[s], &q, &[back]), "kind mismatch for {text}");
        }
    }

    #[test]
    fn span_file_tag_roundtrips_and_legacy_spans_decode() {
        // tagged span: three-element form
        let mut p = Procedure::new("f", Type::Void);
        let s = p.stamp_at(StmtKind::Nop, SrcSpan::new(4, 9).in_file(2));
        let text = stmt_to_json(&p, s).to_string_compact();
        assert!(text.contains("[4,9,2]"), "{text}");
        let mut q = Procedure::new("f", Type::Void);
        let back = stmt_from_json(&mut q, &crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(q.stmts.span(back), SrcSpan::new(4, 9).in_file(2));
        // current-TU span: unchanged two-element form
        let s = p.stamp_at(StmtKind::Nop, SrcSpan::new(4, 9));
        let text = stmt_to_json(&p, s).to_string_compact();
        assert!(text.contains("[4,9]"), "{text}");
        // legacy span-free statements still decode
        let doc = crate::json::parse("{\"id\":3,\"kind\":\"Nop\"}").unwrap();
        let mut q = Procedure::new("f", Type::Void);
        let back = stmt_from_json(&mut q, &doc).unwrap();
        assert_eq!(back, StmtId(3));
        assert_eq!(q.stmts.span(back), SrcSpan::NONE);
        assert_eq!(q.stmts.len(), 4, "gap slots grown to cover the stamp");
    }

    #[test]
    fn decode_rejects_unknown_variant() {
        let doc = crate::json::parse("{\"Bogus\":1}").unwrap();
        let mut pool = ExprPool::new();
        assert!(expr_from_json(&mut pool, &doc).is_err());
        assert!(Type::from_json(&doc).is_err());
    }
}
