//! A dependency-free JSON layer for catalog serialization.
//!
//! The §7 catalog workflow needs procedures to round-trip through files,
//! but the build must work hermetically (no external crates). This module
//! provides a small JSON document model ([`Json`]), a writer, a
//! recursive-descent parser, and the [`ToJson`]/[`FromJson`] conversions
//! for every IL type a [`crate::Catalog`] contains.
//!
//! Conventions follow the externally-tagged enum encoding: unit variants
//! are strings (`"Add"`), data-carrying variants are single-key objects
//! (`{"Ptr": …}`, `{"Load": {…}}`).

use std::fmt;

/// A parsed JSON document.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An integer literal (no `.`/exponent in the source).
    Int(i64),
    /// A floating literal (also covers `NaN`/`inf`/`-inf`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A serialization or parse failure, with a byte offset for parse errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input (parse errors only).
    pub offset: usize,
}

impl JsonError {
    fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A single-key object `{tag: value}` (enum variant encoding).
    pub fn tagged(tag: &str, value: Json) -> Json {
        Json::Obj(vec![(tag.to_string(), value)])
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, as an error rather than an option.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The single `(tag, value)` pair of an enum-variant object, or the
    /// string itself for unit variants.
    pub fn variant(&self) -> Result<(&str, Option<&Json>), JsonError> {
        match self {
            Json::Str(s) => Ok((s.as_str(), None)),
            Json::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
            _ => Err(JsonError::new(
                "expected enum variant (string or 1-key object)",
            )),
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(v) => Ok(*v),
            _ => Err(JsonError::new("expected integer")),
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(v) => Ok(*v as f64),
            Json::Float(v) => Ok(*v),
            _ => Err(JsonError::new("expected number")),
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::new("expected bool")),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(JsonError::new("expected string")),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => Err(JsonError::new("expected array")),
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                // `{:?}` is the shortest representation that round-trips;
                // non-finite values print as NaN/inf, which the parser
                // accepts as an extension (strict JSON has no spelling).
                out.push_str(&format!("{v:?}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_word("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(Json::Null),
            Some(b'N') if self.eat_word("NaN") => Ok(Json::Float(f64::NAN)),
            Some(b'i') if self.eat_word("inf") => Ok(Json::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Json::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast-forward over the plain run
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Conversion into a [`Json`] document.
pub trait ToJson {
    /// Encodes `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] document.
pub trait FromJson: Sized {
    /// Decodes a value, reporting the first structural mismatch.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when `v` does not encode a `Self`.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Box::new(T::from_json(v)?))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_i64()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        usize::try_from(v.as_i64()?).map_err(|_| JsonError::new("negative length"))
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Int(i64::from(*self))
    }
}

impl FromJson for u32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::try_from(v.as_i64()?).map_err(|_| JsonError::new("u32 out of range"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u64::try_from(v.as_i64()?).map_err(|_| JsonError::new("u64 out of range"))
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a plain struct as an object
/// with one key per listed field, in order. Every field type must itself
/// implement both traits; the field list must be exhaustive (decode
/// constructs the struct literally). Downstream crates use this for
/// their per-pass report types so optimization results can persist in
/// the session cache.
#[macro_export]
macro_rules! struct_json {
    ($ty:ty, [$($field:ident),+ $(,)?]) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::obj(vec![
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::FromJson::from_json(v.field(stringify!($field))?)?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("blas \"1\"\n".into())),
            ("n", Json::Int(-42)),
            ("x", Json::Float(2.5)),
            (
                "items",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Int(7)]),
            ),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.0 ] , \"s\" : \"x\\ty\\u0041\" } ").unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "x\tyA");
    }

    #[test]
    fn float_precision_roundtrips() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, 1e-300, -2.5] {
            let text = Json::Float(f).to_string_compact();
            match parse(&text).unwrap() {
                Json::Float(back) => assert_eq!(f, back, "{text}"),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        for f in [f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::Float(f).to_string_compact();
            assert_eq!(parse(&text).unwrap(), Json::Float(f), "{text}");
        }
        let nan = parse(&Json::Float(f64::NAN).to_string_compact()).unwrap();
        match nan {
            Json::Float(v) => assert!(v.is_nan()),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn variant_helpers() {
        let unit = Json::Str("Add".into());
        assert_eq!(unit.variant().unwrap(), ("Add", None));
        let tagged = Json::tagged("Ptr", Json::Str("Int".into()));
        let (tag, val) = tagged.variant().unwrap();
        assert_eq!(tag, "Ptr");
        assert!(val.is_some());
    }
}
