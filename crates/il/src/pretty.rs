//! Pretty-printing of IL in a C-like surface syntax.
//!
//! Vector statements print in the paper's triplet notation
//! (`a[0:100:1] = …`, modulo byte strides), DO loops print as
//! `do fortran`/`do parallel` exactly like §9's listings, so transformed
//! programs can be eyeballed against the paper.
//!
//! All entry points resolve ids through the procedure's pools; the output
//! depends only on the structural tree, never on arena layout.

use crate::expr::{Expr, ExprPool, LValue};
use crate::ids::{ExprId, StmtId};
use crate::program::Procedure;
use crate::stmt::StmtKind;
use std::fmt::Write as _;

/// Renders an expression with the procedure's variable names.
pub fn pretty_expr(proc: &Procedure, e: ExprId) -> String {
    let mut s = String::new();
    write_expr(&mut s, &proc.exprs, e, Some(proc));
    s
}

/// Renders an expression with positional (`v0`) variable names.
pub fn pretty_expr_in(pool: &ExprPool, e: ExprId) -> String {
    let mut s = String::new();
    write_expr(&mut s, pool, e, None);
    s
}

/// Renders an lvalue with the procedure's variable names.
pub fn pretty_lvalue(proc: &Procedure, lv: &LValue) -> String {
    let mut s = String::new();
    write_lvalue(&mut s, &proc.exprs, lv, Some(proc));
    s
}

/// Renders a whole procedure.
pub fn pretty_proc(proc: &Procedure) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{} {}(...)", proc.ret, proc.name);
    let _ = writeln!(s, "{{");
    write_block(&mut s, &proc.body, proc, 1);
    let _ = writeln!(s, "}}");
    s
}

/// Renders a statement block at the given indent depth.
pub fn pretty_block(proc: &Procedure, block: &[StmtId], indent: usize) -> String {
    let mut s = String::new();
    write_block(&mut s, block, proc, indent);
    s
}

fn var_name(proc: Option<&Procedure>, v: crate::ids::VarId) -> String {
    match proc {
        Some(p) if v.index() < p.vars.len() => p.var(v).name.clone(),
        _ => format!("{v}"),
    }
}

fn write_expr(out: &mut String, pool: &ExprPool, id: ExprId, proc: Option<&Procedure>) {
    match pool[id] {
        Expr::IntConst(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::FloatConst(v, ty) => {
            let _ = write!(out, "{v:?}");
            if ty == crate::types::ScalarType::Float {
                out.push('f');
            }
        }
        Expr::Var(v) => out.push_str(&var_name(proc, v)),
        Expr::AddrOf(v) => {
            out.push('&');
            out.push_str(&var_name(proc, v));
        }
        Expr::Load { addr, ty, volatile } => {
            let _ = write!(out, "*({ty}{} *)(", if volatile { " volatile" } else { "" });
            write_expr(out, pool, addr, proc);
            out.push(')');
        }
        Expr::Unary { op, arg, .. } => {
            out.push_str(op.symbol());
            out.push('(');
            write_expr(out, pool, arg, proc);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            if matches!(op, crate::expr::BinOp::Min | crate::expr::BinOp::Max) {
                out.push_str(op.symbol());
                out.push('(');
                write_expr(out, pool, lhs, proc);
                out.push_str(", ");
                write_expr(out, pool, rhs, proc);
                out.push(')');
            } else {
                out.push('(');
                write_expr(out, pool, lhs, proc);
                let _ = write!(out, " {} ", op.symbol());
                write_expr(out, pool, rhs, proc);
                out.push(')');
            }
        }
        Expr::Cast { to, arg, .. } => {
            let _ = write!(out, "({to})(");
            write_expr(out, pool, arg, proc);
            out.push(')');
        }
        Expr::Section {
            base,
            len,
            stride,
            ty,
        } => {
            let _ = write!(out, "({ty})[");
            write_expr(out, pool, base, proc);
            out.push_str(" : ");
            write_expr(out, pool, len, proc);
            out.push_str(" : ");
            write_expr(out, pool, stride, proc);
            out.push(']');
        }
    }
}

fn write_lvalue(out: &mut String, pool: &ExprPool, lv: &LValue, proc: Option<&Procedure>) {
    match *lv {
        LValue::Var(v) => out.push_str(&var_name(proc, v)),
        LValue::Deref { addr, ty, volatile } => {
            let _ = write!(out, "*({ty}{} *)(", if volatile { " volatile" } else { "" });
            write_expr(out, pool, addr, proc);
            out.push(')');
        }
        LValue::Section {
            base,
            len,
            stride,
            ty,
        } => {
            let _ = write!(out, "({ty})[");
            write_expr(out, pool, base, proc);
            out.push_str(" : ");
            write_expr(out, pool, len, proc);
            out.push_str(" : ");
            write_expr(out, pool, stride, proc);
            out.push(']');
        }
    }
}

fn write_block(out: &mut String, block: &[StmtId], proc: &Procedure, depth: usize) {
    for &s in block {
        write_stmt(out, s, proc, depth);
    }
}

fn write_stmt(out: &mut String, s: StmtId, proc: &Procedure, depth: usize) {
    let pool = &proc.exprs;
    let pad = "    ".repeat(depth);
    match &proc.stmts[s] {
        StmtKind::Assign { lhs, rhs } => {
            out.push_str(&pad);
            write_lvalue(out, pool, lhs, Some(proc));
            out.push_str(" = ");
            write_expr(out, pool, *rhs, Some(proc));
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str(&pad);
            out.push_str("if (");
            write_expr(out, pool, *cond, Some(proc));
            out.push_str(") {\n");
            write_block(out, then_blk, proc, depth + 1);
            if else_blk.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                write_block(out, else_blk, proc, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
        StmtKind::While { cond, body, safe } => {
            out.push_str(&pad);
            if *safe {
                out.push_str("/* pragma safe */ ");
            }
            out.push_str("while (");
            write_expr(out, pool, *cond, Some(proc));
            out.push_str(") {\n");
            write_block(out, body, proc, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
            safe,
        } => {
            out.push_str(&pad);
            if *safe {
                out.push_str("/* pragma safe */ ");
            }
            let _ = write!(out, "do fortran {} = ", proc.var(*var).name);
            write_expr(out, pool, *lo, Some(proc));
            out.push_str(", ");
            write_expr(out, pool, *hi, Some(proc));
            out.push_str(", ");
            write_expr(out, pool, *step, Some(proc));
            out.push_str(" {\n");
            write_block(out, body, proc, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::DoParallel {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            out.push_str(&pad);
            let _ = write!(out, "do parallel {} = ", proc.var(*var).name);
            write_expr(out, pool, *lo, Some(proc));
            out.push_str(", ");
            write_expr(out, pool, *hi, Some(proc));
            out.push_str(", ");
            write_expr(out, pool, *step, Some(proc));
            out.push_str(" {\n");
            write_block(out, body, proc, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::WhileSpread {
            cond,
            parallel,
            serial,
        } => {
            out.push_str(&pad);
            out.push_str("while spread (");
            write_expr(out, pool, *cond, Some(proc));
            out.push_str(") {\n");
            write_block(out, parallel, proc, depth + 1);
            let _ = writeln!(out, "{pad}  next:");
            write_block(out, serial, proc, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        StmtKind::Label(l) => {
            let _ = writeln!(
                out,
                "{}lb_{}:;",
                "    ".repeat(depth.saturating_sub(1)),
                l.0
            );
        }
        StmtKind::Goto(l) => {
            let _ = writeln!(out, "{pad}goto lb_{};", l.0);
        }
        StmtKind::IfGoto { cond, target } => {
            out.push_str(&pad);
            out.push_str("if (");
            write_expr(out, pool, *cond, Some(proc));
            let _ = writeln!(out, ") goto lb_{};", target.0);
        }
        StmtKind::Call { dst, callee, args } => {
            out.push_str(&pad);
            if let Some(d) = dst {
                write_lvalue(out, pool, d, Some(proc));
                out.push_str(" = ");
            }
            let _ = write!(out, "{callee}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, pool, *a, Some(proc));
            }
            out.push_str(");\n");
        }
        StmtKind::Return(v) => {
            out.push_str(&pad);
            out.push_str("return");
            if let Some(e) = v {
                out.push(' ');
                write_expr(out, pool, *e, Some(proc));
            }
            out.push_str(";\n");
        }
        StmtKind::Nop => {
            let _ = writeln!(out, "{pad};");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::BinOp;
    use crate::ids::VarId;
    use crate::types::{ScalarType, Type};

    #[test]
    fn prints_do_fortran() {
        let mut b = ProcBuilder::new("f", Type::Void);
        let i = b.local("i", Type::Int);
        let s = b.local("s", Type::Int);
        let body = {
            let mut lb = b.block();
            let sv = lb.var(s);
            let iv = lb.var(i);
            let add = lb.ibinary(BinOp::Add, sv, iv);
            lb.assign_var(s, add);
            lb.stmts()
        };
        let lo = b.int(0);
        let hi = b.int(99);
        let step = b.int(1);
        b.do_loop(i, lo, hi, step, body);
        let p = b.finish();
        let text = pretty_proc(&p);
        assert!(text.contains("do fortran i = 0, 99, 1 {"), "{text}");
        assert!(text.contains("s = (s + i);"), "{text}");
    }

    #[test]
    fn positional_names_without_proc() {
        let mut pool = ExprPool::new();
        let x = pool.var(VarId(2));
        let four = pool.int(4);
        let e = pool.ibinary(BinOp::Mul, x, four);
        assert_eq!(pretty_expr_in(&pool, e), "(v2 * 4)");
    }

    #[test]
    fn section_prints_triplet() {
        let mut pool = ExprPool::new();
        let base = pool.addr_of(VarId(0));
        let len = pool.int(100);
        let stride = pool.int(4);
        let e = pool.section(base, len, stride, ScalarType::Float);
        assert_eq!(pretty_expr_in(&pool, e), "(float)[&v0 : 100 : 4]");
    }

    #[test]
    fn float_constants_tagged() {
        let mut pool = ExprPool::new();
        let f = pool.float(1.0);
        let d = pool.double(1.0);
        assert_eq!(pretty_expr_in(&pool, f), "1.0f");
        assert_eq!(pretty_expr_in(&pool, d), "1.0");
    }

    #[test]
    fn volatile_load_is_visible() {
        let mut pool = ExprPool::new();
        let addr = pool.addr_of(VarId(0));
        let e = pool.alloc(Expr::Load {
            addr,
            ty: ScalarType::Int,
            volatile: true,
        });
        assert!(pretty_expr_in(&pool, e).contains("volatile"));
    }
}
