//! IL statements.
//!
//! Every memory mutation in the IL is an explicit statement (§4). Control
//! flow is mostly structured ([`StmtKind::If`], [`StmtKind::While`],
//! [`StmtKind::DoLoop`]) but `goto`/labels are first-class because C
//! permits branches into loops (§1 item 3) — the while→DO conversion uses
//! the control-flow graph to reject exactly those loops (§5.2).

use crate::expr::{Expr, LValue};
use crate::ids::{LabelId, StmtId, VarId};
use crate::span::SrcSpan;

/// A statement with a stable per-procedure identity stamp.
///
/// The stamp survives tree rewrites so use–def chains and dependence edges
/// can refer to statements across transformation phases; passes that create
/// statements allocate fresh stamps from
/// [`crate::Procedure::fresh_stmt_id`].
#[derive(Clone, PartialEq, Debug)]
pub struct Stmt {
    /// The stable stamp.
    pub id: StmtId,
    /// What the statement does.
    pub kind: StmtKind,
    /// Source position this statement was lowered from
    /// ([`SrcSpan::NONE`] for compiler-synthesized statements). Passes
    /// that rewrite a statement in place, or replace one with an
    /// equivalent form (while→DO, DO→`do parallel`, vector statements),
    /// carry the span over so optimization reports stay anchored to the
    /// source.
    pub span: SrcSpan,
}

/// The payload of a [`Stmt`].
#[derive(Clone, PartialEq, Debug)]
pub enum StmtKind {
    /// `lhs = rhs` — the IL's only scalar mutation. When both sides are
    /// vector sections this is a vector statement in the paper's triplet
    /// notation.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Assigned value.
        rhs: Expr,
    },
    /// Structured two-way branch.
    If {
        /// Condition (nonzero = taken).
        cond: Expr,
        /// Statements executed when the condition is nonzero.
        then_blk: Vec<Stmt>,
        /// Statements executed when the condition is zero.
        else_blk: Vec<Stmt>,
    },
    /// Pre-tested loop. `safe` is the §9 vectorization pragma: the user
    /// asserts iterations are independent.
    While {
        /// Loop condition (nonzero = continue).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// User-asserted independence pragma.
        safe: bool,
    },
    /// Fortran-style counted loop: `var` runs `lo, lo+step, …` while
    /// `var <= hi` (for `step > 0`) or `var >= hi` (for `step < 0`). This is
    /// the §5.2 target form, written `do fortran` in the paper's examples.
    DoLoop {
        /// Induction variable.
        var: VarId,
        /// Initial value.
        lo: Expr,
        /// Inclusive bound.
        hi: Expr,
        /// Increment (must be nonzero; sign fixed at entry).
        step: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// User-asserted independence pragma.
        safe: bool,
    },
    /// A counted loop whose iterations the compiler has proven independent;
    /// the Titan spreads them across processors (§9's `do parallel`).
    DoParallel {
        /// Induction variable.
        var: VarId,
        /// Initial value.
        lo: Expr,
        /// Inclusive bound.
        hi: Expr,
        /// Increment.
        step: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A *true* while loop whose iterations are spread across processors
    /// while the pointer chase stays serialized — the §10 future-work
    /// extension ("pulling the code for moving to the next element into
    /// the serialized portion of the parallel loop"). Per iteration the
    /// `parallel` work runs on some processor; the `serial` advance runs
    /// in order. Emitted only under the explicit independent-storage
    /// assumption the paper states.
    WhileSpread {
        /// Loop condition (nonzero = continue), evaluated serially.
        cond: Expr,
        /// The distributable work of one iteration.
        parallel: Vec<Stmt>,
        /// The serialized advance (pointer chase).
        serial: Vec<Stmt>,
    },
    /// A branch target.
    Label(LabelId),
    /// An unconditional branch.
    Goto(LabelId),
    /// A conditional branch `if (cond) goto target` (used for inlined early
    /// returns and for `break`/`continue` lowering).
    IfGoto {
        /// Branch condition (nonzero = taken).
        cond: Expr,
        /// Branch target.
        target: LabelId,
    },
    /// A procedure call `dst = callee(args…)`. Calls are statements, never
    /// expressions, so argument evaluation order and side effects are
    /// explicit.
    Call {
        /// Where the return value goes, if used.
        dst: Option<LValue>,
        /// Callee name (resolved by name so catalogs can be linked in).
        callee: String,
        /// Actual arguments (pure expressions).
        args: Vec<Expr>,
    },
    /// Return from the procedure.
    Return(Option<Expr>),
    /// A no-op left behind by deleting passes; swept by cleanup.
    Nop,
}

impl Stmt {
    /// Builds a statement from a stamp and kind, with no source position.
    pub fn new(id: StmtId, kind: StmtKind) -> Stmt {
        Stmt {
            id,
            kind,
            span: SrcSpan::NONE,
        }
    }

    /// Builds a statement anchored to a source position.
    pub fn new_at(id: StmtId, kind: StmtKind, span: SrcSpan) -> Stmt {
        Stmt { id, kind, span }
    }

    /// Returns the statement re-anchored to `span` (builder style).
    pub fn at(mut self, span: SrcSpan) -> Stmt {
        self.span = span;
        self
    }

    /// The nested statement blocks, in source order.
    pub fn blocks(&self) -> Vec<&Vec<Stmt>> {
        match &self.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => vec![then_blk, else_blk],
            StmtKind::While { body, .. }
            | StmtKind::DoLoop { body, .. }
            | StmtKind::DoParallel { body, .. } => vec![body],
            StmtKind::WhileSpread {
                parallel, serial, ..
            } => vec![parallel, serial],
            _ => vec![],
        }
    }

    /// Mutable access to the nested statement blocks.
    pub fn blocks_mut(&mut self) -> Vec<&mut Vec<Stmt>> {
        match &mut self.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => vec![then_blk, else_blk],
            StmtKind::While { body, .. }
            | StmtKind::DoLoop { body, .. }
            | StmtKind::DoParallel { body, .. } => vec![body],
            StmtKind::WhileSpread {
                parallel, serial, ..
            } => vec![parallel, serial],
            _ => vec![],
        }
    }

    /// The expressions this statement evaluates directly (not those in
    /// nested blocks). For an `Assign` this includes the target's address
    /// expressions.
    pub fn exprs(&self) -> Vec<&Expr> {
        match &self.kind {
            StmtKind::Assign { lhs, rhs } => {
                let mut v = lhs.address_exprs();
                v.push(rhs);
                v
            }
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::WhileSpread { cond, .. }
            | StmtKind::IfGoto { cond, .. } => vec![cond],
            StmtKind::DoLoop { lo, hi, step, .. } | StmtKind::DoParallel { lo, hi, step, .. } => {
                vec![lo, hi, step]
            }
            StmtKind::Call { dst, args, .. } => {
                let mut v: Vec<&Expr> = dst.iter().flat_map(|d| d.address_exprs()).collect();
                v.extend(args.iter());
                v
            }
            StmtKind::Return(Some(e)) => vec![e],
            StmtKind::Label(_) | StmtKind::Goto(_) | StmtKind::Return(None) | StmtKind::Nop => {
                vec![]
            }
        }
    }

    /// Mutable version of [`Stmt::exprs`].
    pub fn exprs_mut(&mut self) -> Vec<&mut Expr> {
        match &mut self.kind {
            StmtKind::Assign { lhs, rhs } => {
                let mut v = lhs.address_exprs_mut();
                v.push(rhs);
                v
            }
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::WhileSpread { cond, .. }
            | StmtKind::IfGoto { cond, .. } => vec![cond],
            StmtKind::DoLoop { lo, hi, step, .. } | StmtKind::DoParallel { lo, hi, step, .. } => {
                vec![lo, hi, step]
            }
            StmtKind::Call { dst, args, .. } => {
                let mut v: Vec<&mut Expr> =
                    dst.iter_mut().flat_map(|d| d.address_exprs_mut()).collect();
                v.extend(args.iter_mut());
                v
            }
            StmtKind::Return(Some(e)) => vec![e],
            StmtKind::Label(_) | StmtKind::Goto(_) | StmtKind::Return(None) | StmtKind::Nop => {
                vec![]
            }
        }
    }

    /// The scalar variable this statement defines, if any. `DoLoop` and
    /// `DoParallel` define their induction variable.
    pub fn defined_var(&self) -> Option<VarId> {
        match &self.kind {
            StmtKind::Assign {
                lhs: LValue::Var(v),
                ..
            } => Some(*v),
            StmtKind::Call {
                dst: Some(LValue::Var(v)),
                ..
            } => Some(*v),
            StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// True when the statement (directly) stores through memory.
    pub fn writes_memory(&self) -> bool {
        match &self.kind {
            StmtKind::Assign { lhs, .. } => lhs.is_memory(),
            StmtKind::Call { .. } => true, // worst case: callee may write anything
            _ => false,
        }
    }

    /// True when any directly evaluated expression loads from memory.
    pub fn reads_memory(&self) -> bool {
        self.exprs().iter().any(|e| e.has_load())
    }

    /// True when this statement performs a volatile access (directly).
    pub fn has_volatile_access(&self) -> bool {
        let lhs_volatile = match &self.kind {
            StmtKind::Assign { lhs, .. } => lhs.is_volatile(),
            _ => false,
        };
        lhs_volatile || self.exprs().iter().any(|e| e.has_volatile_load())
    }

    /// Total number of statements in this tree (including nested blocks).
    pub fn tree_len(&self) -> usize {
        1 + self
            .blocks()
            .iter()
            .flat_map(|b| b.iter())
            .map(Stmt::tree_len)
            .sum::<usize>()
    }

    /// True when the statement is a structured or counted loop head.
    pub fn is_loop(&self) -> bool {
        matches!(
            self.kind,
            StmtKind::While { .. }
                | StmtKind::DoLoop { .. }
                | StmtKind::DoParallel { .. }
                | StmtKind::WhileSpread { .. }
        )
    }
}

/// Total number of statements in a block tree.
pub fn block_len(block: &[Stmt]) -> usize {
    block.iter().map(Stmt::tree_len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::types::ScalarType;

    fn st(kind: StmtKind) -> Stmt {
        Stmt::new(StmtId(0), kind)
    }

    #[test]
    fn assign_exprs_include_lhs_address() {
        let s = st(StmtKind::Assign {
            lhs: LValue::deref(Expr::var(VarId(0)), ScalarType::Float),
            rhs: Expr::float(1.0),
        });
        assert_eq!(s.exprs().len(), 2);
        assert!(s.writes_memory());
        assert!(!s.reads_memory());
        assert_eq!(s.defined_var(), None);
    }

    #[test]
    fn var_assign_defines() {
        let s = st(StmtKind::Assign {
            lhs: LValue::Var(VarId(3)),
            rhs: Expr::int(1),
        });
        assert_eq!(s.defined_var(), Some(VarId(3)));
        assert!(!s.writes_memory());
    }

    #[test]
    fn do_loop_defines_induction_var() {
        let s = st(StmtKind::DoLoop {
            var: VarId(7),
            lo: Expr::int(0),
            hi: Expr::int(9),
            step: Expr::int(1),
            body: vec![],
            safe: false,
        });
        assert_eq!(s.defined_var(), Some(VarId(7)));
        assert!(s.is_loop());
        assert_eq!(s.exprs().len(), 3);
    }

    #[test]
    fn tree_len_counts_nested() {
        let inner = st(StmtKind::Nop);
        let s = st(StmtKind::While {
            cond: Expr::int(1),
            body: vec![inner.clone(), inner],
            safe: false,
        });
        assert_eq!(s.tree_len(), 3);
        assert_eq!(block_len(&[s.clone(), st(StmtKind::Nop)]), 4);
    }

    #[test]
    fn call_is_worst_case_memory_writer() {
        let s = st(StmtKind::Call {
            dst: None,
            callee: "f".into(),
            args: vec![Expr::int(1)],
        });
        assert!(s.writes_memory());
        assert_eq!(s.exprs().len(), 1);
    }

    #[test]
    fn volatile_access_detection() {
        let s = st(StmtKind::Assign {
            lhs: LValue::Var(VarId(0)),
            rhs: Expr::Load {
                addr: Box::new(Expr::addr_of(VarId(1))),
                ty: ScalarType::Int,
                volatile: true,
            },
        });
        assert!(s.has_volatile_access());
        let pure = st(StmtKind::Assign {
            lhs: LValue::Var(VarId(0)),
            rhs: Expr::ibinary(BinOp::Add, Expr::var(VarId(1)), Expr::int(1)),
        });
        assert!(!pure.has_volatile_access());
    }

    #[test]
    fn while_spread_blocks_and_exprs() {
        let s = st(StmtKind::WhileSpread {
            cond: Expr::var(VarId(0)),
            parallel: vec![st(StmtKind::Nop)],
            serial: vec![st(StmtKind::Nop), st(StmtKind::Nop)],
        });
        assert_eq!(s.blocks().len(), 2);
        assert_eq!(s.blocks()[0].len(), 1);
        assert_eq!(s.blocks()[1].len(), 2);
        assert_eq!(s.exprs().len(), 1);
        assert!(s.is_loop());
        assert_eq!(s.tree_len(), 4);
    }

    #[test]
    fn if_blocks() {
        let s = st(StmtKind::If {
            cond: Expr::int(1),
            then_blk: vec![st(StmtKind::Nop)],
            else_blk: vec![],
        });
        assert_eq!(s.blocks().len(), 2);
        assert_eq!(s.blocks()[0].len(), 1);
    }
}
