//! IL statements, stored flat in a per-procedure arena.
//!
//! Every memory mutation in the IL is an explicit statement (§4). Control
//! flow is mostly structured ([`StmtKind::If`], [`StmtKind::While`],
//! [`StmtKind::DoLoop`]) but `goto`/labels are first-class because C
//! permits branches into loops (§1 item 3) — the while→DO conversion uses
//! the control-flow graph to reject exactly those loops (§5.2).
//!
//! A statement *is* its [`StmtId`]: the id is both the stable per-procedure
//! stamp the analyses key on (use–def chains, dependence edges) and the
//! statement's slot in the procedure's [`StmtPool`]. Blocks are plain
//! `Vec<StmtId>` ([`Block`]), and a statement's kind and source span live in
//! parallel arena columns, so procedure clones copy three flat vectors
//! instead of walking a pointer tree.

use crate::expr::{ExprPool, LValue};
use crate::ids::{ExprId, LabelId, StmtId, VarId};
use crate::span::SrcSpan;
use std::ops::{Index, IndexMut};

/// An ordered sequence of statements: ids into the owning [`StmtPool`].
pub type Block = Vec<StmtId>;

/// What one statement does. Child statements are [`Block`]s of ids and
/// operand expressions are [`ExprId`]s, both resolved through the owning
/// procedure's pools.
#[derive(Clone, PartialEq, Debug)]
pub enum StmtKind {
    /// `lhs = rhs` — the IL's only scalar mutation. When both sides are
    /// vector sections this is a vector statement in the paper's triplet
    /// notation.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Assigned value.
        rhs: ExprId,
    },
    /// Structured two-way branch.
    If {
        /// Condition (nonzero = taken).
        cond: ExprId,
        /// Statements executed when the condition is nonzero.
        then_blk: Block,
        /// Statements executed when the condition is zero.
        else_blk: Block,
    },
    /// Pre-tested loop. `safe` is the §9 vectorization pragma: the user
    /// asserts iterations are independent.
    While {
        /// Loop condition (nonzero = continue).
        cond: ExprId,
        /// Loop body.
        body: Block,
        /// User-asserted independence pragma.
        safe: bool,
    },
    /// Fortran-style counted loop: `var` runs `lo, lo+step, …` while
    /// `var <= hi` (for `step > 0`) or `var >= hi` (for `step < 0`). This is
    /// the §5.2 target form, written `do fortran` in the paper's examples.
    DoLoop {
        /// Induction variable.
        var: VarId,
        /// Initial value.
        lo: ExprId,
        /// Inclusive bound.
        hi: ExprId,
        /// Increment (must be nonzero; sign fixed at entry).
        step: ExprId,
        /// Loop body.
        body: Block,
        /// User-asserted independence pragma.
        safe: bool,
    },
    /// A counted loop whose iterations the compiler has proven independent;
    /// the Titan spreads them across processors (§9's `do parallel`).
    DoParallel {
        /// Induction variable.
        var: VarId,
        /// Initial value.
        lo: ExprId,
        /// Inclusive bound.
        hi: ExprId,
        /// Increment.
        step: ExprId,
        /// Loop body.
        body: Block,
    },
    /// A *true* while loop whose iterations are spread across processors
    /// while the pointer chase stays serialized — the §10 future-work
    /// extension ("pulling the code for moving to the next element into
    /// the serialized portion of the parallel loop"). Per iteration the
    /// `parallel` work runs on some processor; the `serial` advance runs
    /// in order. Emitted only under the explicit independent-storage
    /// assumption the paper states.
    WhileSpread {
        /// Loop condition (nonzero = continue), evaluated serially.
        cond: ExprId,
        /// The distributable work of one iteration.
        parallel: Block,
        /// The serialized advance (pointer chase).
        serial: Block,
    },
    /// A branch target.
    Label(LabelId),
    /// An unconditional branch.
    Goto(LabelId),
    /// A conditional branch `if (cond) goto target` (used for inlined early
    /// returns and for `break`/`continue` lowering).
    IfGoto {
        /// Branch condition (nonzero = taken).
        cond: ExprId,
        /// Branch target.
        target: LabelId,
    },
    /// A procedure call `dst = callee(args…)`. Calls are statements, never
    /// expressions, so argument evaluation order and side effects are
    /// explicit.
    Call {
        /// Where the return value goes, if used.
        dst: Option<LValue>,
        /// Callee name (resolved by name so catalogs can be linked in).
        callee: String,
        /// Actual arguments (pure expressions).
        args: Vec<ExprId>,
    },
    /// Return from the procedure.
    Return(Option<ExprId>),
    /// A no-op left behind by deleting passes; swept by cleanup. Also fills
    /// arena slots whose ids are no longer referenced by any block.
    Nop,
}

impl StmtKind {
    /// The nested statement blocks, in source order.
    pub fn blocks(&self) -> Vec<&Block> {
        match self {
            StmtKind::If {
                then_blk, else_blk, ..
            } => vec![then_blk, else_blk],
            StmtKind::While { body, .. }
            | StmtKind::DoLoop { body, .. }
            | StmtKind::DoParallel { body, .. } => vec![body],
            StmtKind::WhileSpread {
                parallel, serial, ..
            } => vec![parallel, serial],
            _ => vec![],
        }
    }

    /// Mutable access to the nested statement blocks.
    pub fn blocks_mut(&mut self) -> Vec<&mut Block> {
        match self {
            StmtKind::If {
                then_blk, else_blk, ..
            } => vec![then_blk, else_blk],
            StmtKind::While { body, .. }
            | StmtKind::DoLoop { body, .. }
            | StmtKind::DoParallel { body, .. } => vec![body],
            StmtKind::WhileSpread {
                parallel, serial, ..
            } => vec![parallel, serial],
            _ => vec![],
        }
    }

    /// Ids of the expressions this statement evaluates directly (not those
    /// in nested blocks). For an `Assign` this includes the target's
    /// address expressions.
    pub fn exprs(&self) -> Vec<ExprId> {
        match self {
            StmtKind::Assign { lhs, rhs } => {
                let mut v: Vec<ExprId> = lhs.address_exprs().to_vec();
                v.push(*rhs);
                v
            }
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::WhileSpread { cond, .. }
            | StmtKind::IfGoto { cond, .. } => vec![*cond],
            StmtKind::DoLoop { lo, hi, step, .. } | StmtKind::DoParallel { lo, hi, step, .. } => {
                vec![*lo, *hi, *step]
            }
            StmtKind::Call { dst, args, .. } => {
                let mut v: Vec<ExprId> = dst
                    .iter()
                    .flat_map(|d| d.address_exprs().to_vec())
                    .collect();
                v.extend(args.iter().copied());
                v
            }
            StmtKind::Return(Some(e)) => vec![*e],
            StmtKind::Label(_) | StmtKind::Goto(_) | StmtKind::Return(None) | StmtKind::Nop => {
                vec![]
            }
        }
    }

    /// Mutable slots holding this statement's operand expression ids, for
    /// id rebinding (point an operand at a freshly built subtree).
    pub fn expr_slots_mut(&mut self) -> Vec<&mut ExprId> {
        match self {
            StmtKind::Assign { lhs, rhs } => {
                let mut v = lhs.address_exprs_mut();
                v.push(rhs);
                v
            }
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::WhileSpread { cond, .. }
            | StmtKind::IfGoto { cond, .. } => vec![cond],
            StmtKind::DoLoop { lo, hi, step, .. } | StmtKind::DoParallel { lo, hi, step, .. } => {
                vec![lo, hi, step]
            }
            StmtKind::Call { dst, args, .. } => {
                let mut v: Vec<&mut ExprId> =
                    dst.iter_mut().flat_map(|d| d.address_exprs_mut()).collect();
                v.extend(args.iter_mut());
                v
            }
            StmtKind::Return(Some(e)) => vec![e],
            StmtKind::Label(_) | StmtKind::Goto(_) | StmtKind::Return(None) | StmtKind::Nop => {
                vec![]
            }
        }
    }

    /// The scalar variable this statement defines, if any. `DoLoop` and
    /// `DoParallel` define their induction variable.
    pub fn defined_var(&self) -> Option<VarId> {
        match self {
            StmtKind::Assign {
                lhs: LValue::Var(v),
                ..
            } => Some(*v),
            StmtKind::Call {
                dst: Some(LValue::Var(v)),
                ..
            } => Some(*v),
            StmtKind::DoLoop { var, .. } | StmtKind::DoParallel { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// True when the statement (directly) stores through memory.
    pub fn writes_memory(&self) -> bool {
        match self {
            StmtKind::Assign { lhs, .. } => lhs.is_memory(),
            StmtKind::Call { .. } => true, // worst case: callee may write anything
            _ => false,
        }
    }

    /// True when any directly evaluated expression loads from memory.
    pub fn reads_memory(&self, exprs: &ExprPool) -> bool {
        self.exprs().into_iter().any(|e| exprs.has_load(e))
    }

    /// True when this statement performs a volatile access (directly).
    pub fn has_volatile_access(&self, exprs: &ExprPool) -> bool {
        let lhs_volatile = match self {
            StmtKind::Assign { lhs, .. } => lhs.is_volatile(),
            _ => false,
        };
        lhs_volatile || self.exprs().into_iter().any(|e| exprs.has_volatile_load(e))
    }

    /// True when the statement is a structured or counted loop head.
    pub fn is_loop(&self) -> bool {
        matches!(
            self,
            StmtKind::While { .. }
                | StmtKind::DoLoop { .. }
                | StmtKind::DoParallel { .. }
                | StmtKind::WhileSpread { .. }
        )
    }
}

/// The flat statement arena of one procedure: parallel columns of
/// [`StmtKind`] and [`SrcSpan`] indexed by [`StmtId`].
///
/// Slot `s` exists for every stamp ever issued (`len()` ≡ the procedure's
/// `next_stmt`); slots no longer referenced by any block hold harmless
/// garbage and are reclaimed by [`crate::Procedure::restamp`]. Decoding a
/// serialized procedure may leave gap slots, which are filled with
/// [`StmtKind::Nop`].
#[derive(Clone, Debug, Default)]
pub struct StmtPool {
    kinds: Vec<StmtKind>,
    spans: Vec<SrcSpan>,
    total_allocated: u64,
}

impl Index<StmtId> for StmtPool {
    type Output = StmtKind;

    fn index(&self, id: StmtId) -> &StmtKind {
        &self.kinds[id.index()]
    }
}

impl IndexMut<StmtId> for StmtPool {
    fn index_mut(&mut self, id: StmtId) -> &mut StmtKind {
        &mut self.kinds[id.index()]
    }
}

impl StmtPool {
    /// An empty pool.
    pub fn new() -> StmtPool {
        StmtPool::default()
    }

    /// Number of stamps issued (arena slots, live and orphaned).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when no statement has been allocated.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The raw kind column.
    pub fn kinds(&self) -> &[StmtKind] {
        &self.kinds
    }

    /// The raw span column (parallel to [`StmtPool::kinds`]).
    pub fn spans(&self) -> &[SrcSpan] {
        &self.spans
    }

    /// Mutable access to the span column (bulk retagging).
    pub fn spans_mut(&mut self) -> &mut [SrcSpan] {
        &mut self.spans
    }

    /// Carries the lifetime allocation count across a compaction rebuild.
    pub(crate) fn set_total_allocated(&mut self, n: u64) {
        self.total_allocated = n;
    }

    /// Arena size in bytes (kind and span columns).
    pub fn bytes(&self) -> usize {
        self.kinds.len() * std::mem::size_of::<StmtKind>()
            + self.spans.len() * std::mem::size_of::<SrcSpan>()
    }

    /// Cumulative statement allocations over the pool's lifetime (survives
    /// compaction; feeds the `il.stmts_allocated` counter).
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Checked slot lookup (used by the verifier to reject dangling ids).
    pub fn get_checked(&self, id: StmtId) -> Option<&StmtKind> {
        self.kinds.get(id.index())
    }

    /// Allocates a statement with a fresh stamp.
    pub fn alloc(&mut self, kind: StmtKind, span: SrcSpan) -> StmtId {
        let id = StmtId::from_index(self.kinds.len());
        self.kinds.push(kind);
        self.spans.push(span);
        self.total_allocated += 1;
        id
    }

    /// Grows the arena with `Nop` slots until `len() == n` (decode uses
    /// this to respect serialized stamps and their gaps).
    pub fn grow_to(&mut self, n: usize) {
        while self.kinds.len() < n {
            self.alloc(StmtKind::Nop, SrcSpan::NONE);
        }
    }

    /// The source span of statement `id`.
    pub fn span(&self, id: StmtId) -> SrcSpan {
        self.spans[id.index()]
    }

    /// Re-anchors statement `id` to `span`.
    pub fn set_span(&mut self, id: StmtId, span: SrcSpan) {
        self.spans[id.index()] = span;
    }

    /// Mutable access to the span column entry of `id`.
    pub fn span_mut(&mut self, id: StmtId) -> &mut SrcSpan {
        &mut self.spans[id.index()]
    }

    /// Total number of statements in the tree rooted at `id` (including
    /// nested blocks).
    pub fn tree_len(&self, id: StmtId) -> usize {
        1 + self[id]
            .blocks()
            .iter()
            .flat_map(|b| b.iter())
            .map(|&s| self.tree_len(s))
            .sum::<usize>()
    }
}

/// Total number of statements in a block tree.
pub fn block_len(stmts: &StmtPool, block: &[StmtId]) -> usize {
    block.iter().map(|&s| stmts.tree_len(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::expr::Expr;
    use crate::types::ScalarType;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn assign_exprs_include_lhs_address() {
        let mut e = ExprPool::new();
        let addr = e.var(v(0));
        let one = e.float(1.0);
        let s = StmtKind::Assign {
            lhs: LValue::deref(addr, ScalarType::Float),
            rhs: one,
        };
        assert_eq!(s.exprs().len(), 2);
        assert!(s.writes_memory());
        assert!(!s.reads_memory(&e));
        assert_eq!(s.defined_var(), None);
    }

    #[test]
    fn var_assign_defines() {
        let mut e = ExprPool::new();
        let one = e.int(1);
        let s = StmtKind::Assign {
            lhs: LValue::Var(v(3)),
            rhs: one,
        };
        assert_eq!(s.defined_var(), Some(v(3)));
        assert!(!s.writes_memory());
    }

    #[test]
    fn do_loop_defines_induction_var() {
        let mut e = ExprPool::new();
        let lo = e.int(0);
        let hi = e.int(9);
        let step = e.int(1);
        let s = StmtKind::DoLoop {
            var: v(7),
            lo,
            hi,
            step,
            body: vec![],
            safe: false,
        };
        assert_eq!(s.defined_var(), Some(v(7)));
        assert!(s.is_loop());
        assert_eq!(s.exprs().len(), 3);
    }

    #[test]
    fn tree_len_counts_nested() {
        let mut e = ExprPool::new();
        let mut p = StmtPool::new();
        let cond = e.int(1);
        let n1 = p.alloc(StmtKind::Nop, SrcSpan::NONE);
        let n2 = p.alloc(StmtKind::Nop, SrcSpan::NONE);
        let w = p.alloc(
            StmtKind::While {
                cond,
                body: vec![n1, n2],
                safe: false,
            },
            SrcSpan::NONE,
        );
        assert_eq!(p.tree_len(w), 3);
        let n3 = p.alloc(StmtKind::Nop, SrcSpan::NONE);
        assert_eq!(block_len(&p, &[w, n3]), 4);
        assert_eq!(p.total_allocated(), 4);
    }

    #[test]
    fn call_is_worst_case_memory_writer() {
        let mut e = ExprPool::new();
        let one = e.int(1);
        let s = StmtKind::Call {
            dst: None,
            callee: "f".into(),
            args: vec![one],
        };
        assert!(s.writes_memory());
        assert_eq!(s.exprs().len(), 1);
    }

    #[test]
    fn volatile_access_detection() {
        let mut e = ExprPool::new();
        let a = e.addr_of(v(1));
        let vl = e.alloc(Expr::Load {
            addr: a,
            ty: ScalarType::Int,
            volatile: true,
        });
        let s = StmtKind::Assign {
            lhs: LValue::Var(v(0)),
            rhs: vl,
        };
        assert!(s.has_volatile_access(&e));
        let x = e.var(v(1));
        let one = e.int(1);
        let add = e.ibinary(BinOp::Add, x, one);
        let pure = StmtKind::Assign {
            lhs: LValue::Var(v(0)),
            rhs: add,
        };
        assert!(!pure.has_volatile_access(&e));
    }

    #[test]
    fn while_spread_blocks_and_exprs() {
        let mut e = ExprPool::new();
        let mut p = StmtPool::new();
        let cond = e.var(v(0));
        let a = p.alloc(StmtKind::Nop, SrcSpan::NONE);
        let b = p.alloc(StmtKind::Nop, SrcSpan::NONE);
        let c = p.alloc(StmtKind::Nop, SrcSpan::NONE);
        let s = StmtKind::WhileSpread {
            cond,
            parallel: vec![a],
            serial: vec![b, c],
        };
        assert_eq!(s.blocks().len(), 2);
        assert_eq!(s.blocks()[0].len(), 1);
        assert_eq!(s.blocks()[1].len(), 2);
        assert_eq!(s.exprs().len(), 1);
        assert!(s.is_loop());
        let ws = p.alloc(s, SrcSpan::NONE);
        assert_eq!(p.tree_len(ws), 4);
    }

    #[test]
    fn if_blocks() {
        let mut e = ExprPool::new();
        let mut p = StmtPool::new();
        let cond = e.int(1);
        let n = p.alloc(StmtKind::Nop, SrcSpan::NONE);
        let s = StmtKind::If {
            cond,
            then_blk: vec![n],
            else_blk: vec![],
        };
        assert_eq!(s.blocks().len(), 2);
        assert_eq!(s.blocks()[0].len(), 1);
    }

    #[test]
    fn grow_to_fills_with_nops() {
        let mut p = StmtPool::new();
        p.grow_to(3);
        assert_eq!(p.len(), 3);
        assert!(matches!(p[StmtId(2)], StmtKind::Nop));
        assert_eq!(p.span(StmtId(1)), SrcSpan::NONE);
    }
}
