//! Ergonomic construction of IL procedures.
//!
//! Tests, examples and the workload generators build IL directly through
//! [`ProcBuilder`]; the C front end goes through `titanc-lower` instead.
//!
//! Because expressions live in the procedure's arena, the builder exposes
//! expression constructors (`b.int(0)`, `b.var(v)`, `b.ibinary(..)`) that
//! allocate in the pool and return [`ExprId`]s; nested expressions are
//! built innermost-first.

use crate::expr::{BinOp, LValue, UnOp};
use crate::ids::{ExprId, LabelId, VarId};
use crate::program::{Procedure, Storage, VarInfo};
use crate::stmt::{Block, StmtKind};
use crate::types::{ScalarType, Type};

/// Builds a [`Procedure`] statement by statement.
#[derive(Debug)]
pub struct ProcBuilder {
    proc: Procedure,
}

impl ProcBuilder {
    /// Starts a procedure with the given name and return type.
    pub fn new(name: impl Into<String>, ret: Type) -> ProcBuilder {
        ProcBuilder {
            proc: Procedure::new(name, ret),
        }
    }

    /// Declares a parameter.
    pub fn param(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let addressed = ty.scalar().is_none();
        let id = self.proc.add_var(VarInfo {
            name: name.into(),
            ty,
            storage: Storage::Param,
            volatile: false,
            addressed,
            init: None,
        });
        self.proc.params.push(id);
        id
    }

    /// Declares a local (auto) variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let addressed = ty.scalar().is_none();
        self.proc.add_var(VarInfo {
            name: name.into(),
            ty,
            storage: Storage::Auto,
            volatile: false,
            addressed,
            init: None,
        })
    }

    /// Declares a volatile local.
    pub fn volatile_local(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let id = self.local(name, ty);
        self.proc.var_mut(id).volatile = true;
        self.proc.var_mut(id).addressed = true;
        id
    }

    /// Declares a reference to a program global of the same name.
    pub fn global(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        self.proc.add_var(VarInfo {
            name: name.into(),
            ty,
            storage: Storage::Global,
            volatile: false,
            addressed: true,
            init: None,
        })
    }

    /// A fresh temporary.
    pub fn temp(&mut self, ty: Type) -> VarId {
        self.proc.fresh_temp(ty)
    }

    /// A fresh label.
    pub fn label_id(&mut self) -> LabelId {
        self.proc.fresh_label()
    }

    /// Opens a nested block builder (for loop and branch bodies).
    pub fn block(&mut self) -> BlockBuilder<'_> {
        BlockBuilder {
            proc: &mut self.proc,
            stmts: Vec::new(),
        }
    }

    /// Finishes and returns the procedure.
    pub fn finish(self) -> Procedure {
        self.proc
    }

    /// Access to the procedure under construction.
    pub fn proc(&self) -> &Procedure {
        &self.proc
    }
}

macro_rules! emit_methods {
    ($pusher:ident) => {
        /// Emits `lhs = rhs` for a variable target.
        pub fn assign_var(&mut self, lhs: VarId, rhs: ExprId) {
            self.$pusher(StmtKind::Assign {
                lhs: LValue::Var(lhs),
                rhs,
            });
        }

        /// Emits `lhs = rhs` for any target.
        pub fn assign(&mut self, lhs: LValue, rhs: ExprId) {
            self.$pusher(StmtKind::Assign { lhs, rhs });
        }

        /// Emits a structured `if`.
        pub fn if_(&mut self, cond: ExprId, then_blk: Block, else_blk: Block) {
            self.$pusher(StmtKind::If {
                cond,
                then_blk,
                else_blk,
            });
        }

        /// Emits a `while` loop.
        pub fn while_(&mut self, cond: ExprId, body: Block) {
            self.$pusher(StmtKind::While {
                cond,
                body,
                safe: false,
            });
        }

        /// Emits a Fortran-style DO loop.
        pub fn do_loop(&mut self, var: VarId, lo: ExprId, hi: ExprId, step: ExprId, body: Block) {
            self.$pusher(StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                safe: false,
            });
        }

        /// Emits a `return`.
        pub fn ret(&mut self, value: Option<ExprId>) {
            self.$pusher(StmtKind::Return(value));
        }

        /// Emits a call statement.
        pub fn call(&mut self, dst: Option<LValue>, callee: impl Into<String>, args: Vec<ExprId>) {
            self.$pusher(StmtKind::Call {
                dst,
                callee: callee.into(),
                args,
            });
        }

        /// Emits a label.
        pub fn label(&mut self, l: LabelId) {
            self.$pusher(StmtKind::Label(l));
        }

        /// Emits an unconditional branch.
        pub fn goto(&mut self, l: LabelId) {
            self.$pusher(StmtKind::Goto(l));
        }

        /// Emits a conditional branch.
        pub fn if_goto(&mut self, cond: ExprId, target: LabelId) {
            self.$pusher(StmtKind::IfGoto { cond, target });
        }
    };
}

macro_rules! expr_methods {
    () => {
        /// Allocates an `Int` constant in the procedure's expression pool.
        pub fn int(&mut self, v: i64) -> ExprId {
            self.proc.exprs.int(v)
        }

        /// Allocates a `Float` constant.
        pub fn float(&mut self, v: f64) -> ExprId {
            self.proc.exprs.float(v)
        }

        /// Allocates a `Double` constant.
        pub fn double(&mut self, v: f64) -> ExprId {
            self.proc.exprs.double(v)
        }

        /// Allocates a variable read.
        pub fn var(&mut self, v: VarId) -> ExprId {
            self.proc.exprs.var(v)
        }

        /// Allocates an address-of.
        pub fn addr_of(&mut self, v: VarId) -> ExprId {
            self.proc.exprs.addr_of(v)
        }

        /// Allocates a non-volatile load.
        pub fn load(&mut self, addr: ExprId, ty: ScalarType) -> ExprId {
            self.proc.exprs.load(addr, ty)
        }

        /// Allocates an `Int` binary operation.
        pub fn ibinary(&mut self, op: BinOp, lhs: ExprId, rhs: ExprId) -> ExprId {
            self.proc.exprs.ibinary(op, lhs, rhs)
        }

        /// Allocates a binary operation on operands of kind `ty`.
        pub fn binary(&mut self, op: BinOp, ty: ScalarType, lhs: ExprId, rhs: ExprId) -> ExprId {
            self.proc.exprs.binary(op, ty, lhs, rhs)
        }

        /// Allocates a unary operation.
        pub fn unary(&mut self, op: UnOp, ty: ScalarType, arg: ExprId) -> ExprId {
            self.proc.exprs.unary(op, ty, arg)
        }

        /// Allocates a cast (identity casts collapse).
        pub fn cast(&mut self, to: ScalarType, from: ScalarType, arg: ExprId) -> ExprId {
            self.proc.exprs.cast(to, from, arg)
        }

        /// Allocates a vector triplet section.
        pub fn section(
            &mut self,
            base: ExprId,
            len: ExprId,
            stride: ExprId,
            ty: ScalarType,
        ) -> ExprId {
            self.proc.exprs.section(base, len, stride, ty)
        }
    };
}

impl ProcBuilder {
    fn push_kind(&mut self, kind: StmtKind) {
        self.proc.push(kind);
    }

    emit_methods!(push_kind);
    expr_methods!();
}

/// Builds a statement block nested inside a [`ProcBuilder`] (loop or branch
/// bodies). Finish with [`BlockBuilder::stmts`].
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    proc: &'a mut Procedure,
    stmts: Block,
}

impl<'a> BlockBuilder<'a> {
    fn push_kind(&mut self, kind: StmtKind) {
        let s = self.proc.stamp(kind);
        self.stmts.push(s);
    }

    emit_methods!(push_kind);
    expr_methods!();

    /// A fresh temporary (allocated in the enclosing procedure).
    pub fn temp(&mut self, ty: Type) -> VarId {
        self.proc.fresh_temp(ty)
    }

    /// A fresh label (allocated in the enclosing procedure).
    pub fn label_id(&mut self) -> LabelId {
        self.proc.fresh_label()
    }

    /// Opens a further nested block.
    pub fn block(&mut self) -> BlockBuilder<'_> {
        BlockBuilder {
            proc: self.proc,
            stmts: Vec::new(),
        }
    }

    /// Finishes the block, returning its statement ids.
    pub fn stmts(self) -> Block {
        self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn builds_counted_sum() {
        let mut b = ProcBuilder::new("sum", Type::Int);
        let n = b.param("n", Type::Int);
        let s = b.local("s", Type::Int);
        let i = b.local("i", Type::Int);
        let zero = b.int(0);
        b.assign_var(s, zero);
        let body = {
            let mut lb = b.block();
            let sv = lb.var(s);
            let iv = lb.var(i);
            let add = lb.ibinary(BinOp::Add, sv, iv);
            lb.assign_var(s, add);
            lb.stmts()
        };
        let lo = b.int(1);
        let hi = b.var(n);
        let step = b.int(1);
        b.do_loop(i, lo, hi, step, body);
        let sv = b.var(s);
        b.ret(Some(sv));
        let p = b.finish();
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.body.len(), 3);
        assert_eq!(p.len(), 4);
        // stamps are unique
        let mut ids = Vec::new();
        p.for_each_stmt(&mut |s, _| ids.push(s));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }

    #[test]
    fn nested_blocks_share_temp_counter() {
        let mut b = ProcBuilder::new("f", Type::Void);
        let t0 = b.temp(Type::Int);
        let t1 = {
            let mut lb = b.block();
            let t = lb.temp(Type::Int);
            let _ = lb.stmts();
            t
        };
        assert_ne!(t0, t1);
    }

    #[test]
    fn volatile_local_is_marked() {
        let mut b = ProcBuilder::new("f", Type::Void);
        let ks = b.volatile_local("keyboard_status", Type::Int);
        assert!(b.proc().var(ks).volatile);
        assert!(b.proc().var(ks).addressed);
    }

    #[test]
    fn array_param_is_addressed() {
        let mut b = ProcBuilder::new("f", Type::Void);
        let a = b.local("a", Type::array_of(Type::Float, 100));
        assert!(b.proc().var(a).addressed);
        let p = b.param("x", Type::ptr_to(Type::Float));
        assert!(!b.proc().var(p).addressed);
    }
}
