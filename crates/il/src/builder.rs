//! Ergonomic construction of IL procedures.
//!
//! Tests, examples and the workload generators build IL directly through
//! [`ProcBuilder`]; the C front end goes through `titanc-lower` instead.

use crate::expr::{Expr, LValue};
use crate::ids::{LabelId, VarId};
use crate::program::{Procedure, Storage, VarInfo};
use crate::stmt::{Stmt, StmtKind};
use crate::types::Type;

/// Builds a [`Procedure`] statement by statement.
#[derive(Debug)]
pub struct ProcBuilder {
    proc: Procedure,
}

impl ProcBuilder {
    /// Starts a procedure with the given name and return type.
    pub fn new(name: impl Into<String>, ret: Type) -> ProcBuilder {
        ProcBuilder {
            proc: Procedure::new(name, ret),
        }
    }

    /// Declares a parameter.
    pub fn param(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let addressed = ty.scalar().is_none();
        let id = self.proc.add_var(VarInfo {
            name: name.into(),
            ty,
            storage: Storage::Param,
            volatile: false,
            addressed,
            init: None,
        });
        self.proc.params.push(id);
        id
    }

    /// Declares a local (auto) variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let addressed = ty.scalar().is_none();
        self.proc.add_var(VarInfo {
            name: name.into(),
            ty,
            storage: Storage::Auto,
            volatile: false,
            addressed,
            init: None,
        })
    }

    /// Declares a volatile local.
    pub fn volatile_local(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let id = self.local(name, ty);
        self.proc.var_mut(id).volatile = true;
        self.proc.var_mut(id).addressed = true;
        id
    }

    /// Declares a reference to a program global of the same name.
    pub fn global(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        self.proc.add_var(VarInfo {
            name: name.into(),
            ty,
            storage: Storage::Global,
            volatile: false,
            addressed: true,
            init: None,
        })
    }

    /// A fresh temporary.
    pub fn temp(&mut self, ty: Type) -> VarId {
        self.proc.fresh_temp(ty)
    }

    /// A fresh label.
    pub fn label_id(&mut self) -> LabelId {
        self.proc.fresh_label()
    }

    /// Opens a nested block builder (for loop and branch bodies).
    pub fn block(&mut self) -> BlockBuilder<'_> {
        BlockBuilder {
            proc: &mut self.proc,
            stmts: Vec::new(),
        }
    }

    /// Finishes and returns the procedure.
    pub fn finish(self) -> Procedure {
        self.proc
    }

    /// Access to the procedure under construction.
    pub fn proc(&self) -> &Procedure {
        &self.proc
    }
}

macro_rules! emit_methods {
    ($pusher:ident) => {
        /// Emits `lhs = rhs` for a variable target.
        pub fn assign_var(&mut self, lhs: VarId, rhs: Expr) {
            self.$pusher(StmtKind::Assign {
                lhs: LValue::Var(lhs),
                rhs,
            });
        }

        /// Emits `lhs = rhs` for any target.
        pub fn assign(&mut self, lhs: LValue, rhs: Expr) {
            self.$pusher(StmtKind::Assign { lhs, rhs });
        }

        /// Emits a structured `if`.
        pub fn if_(&mut self, cond: Expr, then_blk: Vec<Stmt>, else_blk: Vec<Stmt>) {
            self.$pusher(StmtKind::If {
                cond,
                then_blk,
                else_blk,
            });
        }

        /// Emits a `while` loop.
        pub fn while_(&mut self, cond: Expr, body: Vec<Stmt>) {
            self.$pusher(StmtKind::While {
                cond,
                body,
                safe: false,
            });
        }

        /// Emits a Fortran-style DO loop.
        pub fn do_loop(&mut self, var: VarId, lo: Expr, hi: Expr, step: Expr, body: Vec<Stmt>) {
            self.$pusher(StmtKind::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
                safe: false,
            });
        }

        /// Emits a `return`.
        pub fn ret(&mut self, value: Option<Expr>) {
            self.$pusher(StmtKind::Return(value));
        }

        /// Emits a call statement.
        pub fn call(&mut self, dst: Option<LValue>, callee: impl Into<String>, args: Vec<Expr>) {
            self.$pusher(StmtKind::Call {
                dst,
                callee: callee.into(),
                args,
            });
        }

        /// Emits a label.
        pub fn label(&mut self, l: LabelId) {
            self.$pusher(StmtKind::Label(l));
        }

        /// Emits an unconditional branch.
        pub fn goto(&mut self, l: LabelId) {
            self.$pusher(StmtKind::Goto(l));
        }

        /// Emits a conditional branch.
        pub fn if_goto(&mut self, cond: Expr, target: LabelId) {
            self.$pusher(StmtKind::IfGoto { cond, target });
        }
    };
}

impl ProcBuilder {
    fn push_kind(&mut self, kind: StmtKind) {
        self.proc.push(kind);
    }

    emit_methods!(push_kind);
}

/// Builds a statement block nested inside a [`ProcBuilder`] (loop or branch
/// bodies). Finish with [`BlockBuilder::stmts`].
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    proc: &'a mut Procedure,
    stmts: Vec<Stmt>,
}

impl<'a> BlockBuilder<'a> {
    fn push_kind(&mut self, kind: StmtKind) {
        let s = self.proc.stamp(kind);
        self.stmts.push(s);
    }

    emit_methods!(push_kind);

    /// A fresh temporary (allocated in the enclosing procedure).
    pub fn temp(&mut self, ty: Type) -> VarId {
        self.proc.fresh_temp(ty)
    }

    /// A fresh label (allocated in the enclosing procedure).
    pub fn label_id(&mut self) -> LabelId {
        self.proc.fresh_label()
    }

    /// Opens a further nested block.
    pub fn block(&mut self) -> BlockBuilder<'_> {
        BlockBuilder {
            proc: self.proc,
            stmts: Vec::new(),
        }
    }

    /// Finishes the block, returning its statements.
    pub fn stmts(self) -> Vec<Stmt> {
        self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn builds_counted_sum() {
        let mut b = ProcBuilder::new("sum", Type::Int);
        let n = b.param("n", Type::Int);
        let s = b.local("s", Type::Int);
        let i = b.local("i", Type::Int);
        b.assign_var(s, Expr::int(0));
        let body = {
            let mut lb = b.block();
            lb.assign_var(s, Expr::ibinary(BinOp::Add, Expr::var(s), Expr::var(i)));
            lb.stmts()
        };
        b.do_loop(i, Expr::int(1), Expr::var(n), Expr::int(1), body);
        b.ret(Some(Expr::var(s)));
        let p = b.finish();
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.body.len(), 3);
        assert_eq!(p.len(), 4);
        // stamps are unique
        let mut ids = Vec::new();
        p.for_each_stmt(&mut |s| ids.push(s.id));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }

    #[test]
    fn nested_blocks_share_temp_counter() {
        let mut b = ProcBuilder::new("f", Type::Void);
        let t0 = b.temp(Type::Int);
        let t1 = {
            let mut lb = b.block();
            let t = lb.temp(Type::Int);
            let _ = lb.stmts();
            t
        };
        assert_ne!(t0, t1);
    }

    #[test]
    fn volatile_local_is_marked() {
        let mut b = ProcBuilder::new("f", Type::Void);
        let ks = b.volatile_local("keyboard_status", Type::Int);
        assert!(b.proc().var(ks).volatile);
        assert!(b.proc().var(ks).addressed);
    }

    #[test]
    fn array_param_is_addressed() {
        let mut b = ProcBuilder::new("f", Type::Void);
        let a = b.local("a", Type::array_of(Type::Float, 100));
        assert!(b.proc().var(a).addressed);
        let p = b.param("x", Type::ptr_to(Type::Float));
        assert!(!b.proc().var(p).addressed);
    }
}
