//! Structured per-loop and per-call-site optimization decision events.
//!
//! The paper's whole value proposition is *which loops* got vectorized,
//! parallelized, or inlined-then-optimized — so every optimizing crate
//! records what it decided about each loop (and each call site) as a
//! typed event anchored to the loop's [`SrcSpan`]. The pass manager
//! aggregates events exactly like the numeric report counters
//! (pass-major, procedure order), which keeps the stream byte-identical
//! between `-j 1` and `-j N`; the driver's `--opt-report` correlates
//! them back into a per-source-loop report.
//!
//! The types live in `titanc-il` (the shared base crate) so that
//! `titanc-opt`, `titanc-vector` and `titanc-inline` can all produce
//! them without depending on each other.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::span::SrcSpan;
use std::fmt;

fn bad(what: &str, got: &str) -> JsonError {
    JsonError {
        message: format!("unknown {what} `{got}`"),
        offset: 0,
    }
}

/// What one pass decided about one loop.
#[derive(Clone, PartialEq, Debug)]
pub enum LoopDecision {
    /// while→DO conversion succeeded (§5.2): the loop is now a candidate
    /// for induction-variable substitution and vectorization.
    DoConverted,
    /// while→DO conversion rejected the loop; the payload names the §5.2
    /// requirement that failed (branch into the body, volatile bound, …).
    DoRejected(String),
    /// Induction-variable substitution ran on the loop.
    IvSubstituted {
        /// Auxiliary induction variables substituted away in this loop.
        substituted: usize,
    },
    /// The vectorizer replaced the loop with vector statements (§5, §9).
    Vectorized {
        /// The vector statements sit inside a strip loop (trip count
        /// exceeded the maximum vector length, or `--parallel` strips).
        stripped: bool,
        /// The strip loop is a `do parallel` (multiprocessor spreading).
        parallel: bool,
        /// Some statements stayed behind in a residual scalar loop
        /// (partial vectorization after Allen–Kennedy distribution).
        residual: bool,
    },
    /// The loop could not be vectorized but its iterations are proven
    /// independent: converted to `do parallel` unchanged (§2 item 2).
    Parallelized,
    /// §10 linked-list spreading: the while loop became a `while spread`
    /// with a serialized pointer chase.
    ListSpread,
    /// The loop stayed scalar; the payload names the defeating
    /// dependence or construct.
    Scalar(String),
}

impl LoopDecision {
    /// Short machine-readable tag (used as the JSON discriminant).
    pub fn tag(&self) -> &'static str {
        match self {
            LoopDecision::DoConverted => "do_converted",
            LoopDecision::DoRejected(_) => "do_rejected",
            LoopDecision::IvSubstituted { .. } => "ivsub",
            LoopDecision::Vectorized { .. } => "vectorized",
            LoopDecision::Parallelized => "parallelized",
            LoopDecision::ListSpread => "list_spread",
            LoopDecision::Scalar(_) => "scalar",
        }
    }
}

impl fmt::Display for LoopDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopDecision::DoConverted => f.write_str("converted to DO"),
            LoopDecision::DoRejected(why) => write!(f, "not DO-convertible: {why}"),
            LoopDecision::IvSubstituted { substituted } => {
                write!(f, "{substituted} induction variable(s) substituted")
            }
            LoopDecision::Vectorized {
                stripped,
                parallel,
                residual,
            } => {
                f.write_str("vectorized")?;
                let mut notes = Vec::new();
                if *parallel {
                    notes.push("do parallel strips");
                } else if *stripped {
                    notes.push("strip-mined");
                }
                if *residual {
                    notes.push("residual scalar loop");
                }
                if !notes.is_empty() {
                    write!(f, " ({})", notes.join(", "))?;
                }
                Ok(())
            }
            LoopDecision::Parallelized => f.write_str("parallelized (`do parallel`, unvectorized)"),
            LoopDecision::ListSpread => f.write_str("spread (serialized pointer chase, §10)"),
            LoopDecision::Scalar(why) => write!(f, "scalar: {why}"),
        }
    }
}

impl ToJson for LoopDecision {
    fn to_json(&self) -> Json {
        match self {
            LoopDecision::DoConverted => Json::Str("DoConverted".into()),
            LoopDecision::DoRejected(why) => Json::tagged("DoRejected", why.to_json()),
            LoopDecision::IvSubstituted { substituted } => {
                Json::tagged("IvSubstituted", substituted.to_json())
            }
            LoopDecision::Vectorized {
                stripped,
                parallel,
                residual,
            } => Json::tagged(
                "Vectorized",
                Json::obj(vec![
                    ("stripped", stripped.to_json()),
                    ("parallel", parallel.to_json()),
                    ("residual", residual.to_json()),
                ]),
            ),
            LoopDecision::Parallelized => Json::Str("Parallelized".into()),
            LoopDecision::ListSpread => Json::Str("ListSpread".into()),
            LoopDecision::Scalar(why) => Json::tagged("Scalar", why.to_json()),
        }
    }
}

impl FromJson for LoopDecision {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        match (tag, payload) {
            ("DoConverted", None) => Ok(LoopDecision::DoConverted),
            ("DoRejected", Some(p)) => Ok(LoopDecision::DoRejected(String::from_json(p)?)),
            ("IvSubstituted", Some(p)) => Ok(LoopDecision::IvSubstituted {
                substituted: usize::from_json(p)?,
            }),
            ("Vectorized", Some(p)) => Ok(LoopDecision::Vectorized {
                stripped: bool::from_json(p.field("stripped")?)?,
                parallel: bool::from_json(p.field("parallel")?)?,
                residual: bool::from_json(p.field("residual")?)?,
            }),
            ("Parallelized", None) => Ok(LoopDecision::Parallelized),
            ("ListSpread", None) => Ok(LoopDecision::ListSpread),
            ("Scalar", Some(p)) => Ok(LoopDecision::Scalar(String::from_json(p)?)),
            _ => Err(bad("loop decision", tag)),
        }
    }
}

/// One pass's decision about one loop, anchored to the loop's position in
/// the source.
#[derive(Clone, PartialEq, Debug)]
pub struct LoopEvent {
    /// Procedure containing the loop (after inlining this may be the
    /// caller a copy of the loop was expanded into).
    pub proc: String,
    /// The loop's controlling variable, when one exists (the induction
    /// variable of a DO loop, or the variable tested by a while).
    pub var: String,
    /// Source position of the loop head (the condition expression).
    pub span: SrcSpan,
    /// What the pass decided.
    pub decision: LoopDecision,
}

impl ToJson for LoopEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("proc", self.proc.to_json()),
            ("var", self.var.to_json()),
            ("span", self.span.to_json()),
            ("decision", self.decision.to_json()),
        ])
    }
}

impl FromJson for LoopEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(LoopEvent {
            proc: String::from_json(v.field("proc")?)?,
            var: String::from_json(v.field("var")?)?,
            span: SrcSpan::from_json(v.field("span")?)?,
            decision: LoopDecision::from_json(v.field("decision")?)?,
        })
    }
}

/// What the inliner decided about one call site.
#[derive(Clone, PartialEq, Debug)]
pub enum InlineOutcome {
    /// The call was expanded in place.
    Expanded,
    /// Skipped: the callee is (mutually) recursive.
    SkippedRecursive,
    /// Skipped: the callee exceeds the single-callee size budget.
    SkippedSize {
        /// Callee body size (statements).
        callee_len: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// Skipped: expanding would exceed the caller's growth budget.
    SkippedGrowth {
        /// The caller's size (statements) at the moment of the decision.
        caller_len: usize,
        /// The caller's growth budget in effect.
        budget: usize,
    },
}

impl InlineOutcome {
    /// Short machine-readable tag (used as the JSON discriminant).
    pub fn tag(&self) -> &'static str {
        match self {
            InlineOutcome::Expanded => "expanded",
            InlineOutcome::SkippedRecursive => "skipped_recursive",
            InlineOutcome::SkippedSize { .. } => "skipped_size",
            InlineOutcome::SkippedGrowth { .. } => "skipped_growth",
        }
    }
}

impl fmt::Display for InlineOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineOutcome::Expanded => f.write_str("expanded"),
            InlineOutcome::SkippedRecursive => f.write_str("skipped (recursive)"),
            InlineOutcome::SkippedSize { callee_len, cap } => {
                write!(f, "skipped (callee {callee_len} stmts > cap {cap})")
            }
            InlineOutcome::SkippedGrowth { caller_len, budget } => write!(
                f,
                "skipped (caller {caller_len} stmts, growth budget {budget})"
            ),
        }
    }
}

impl ToJson for InlineOutcome {
    fn to_json(&self) -> Json {
        match self {
            InlineOutcome::Expanded => Json::Str("Expanded".into()),
            InlineOutcome::SkippedRecursive => Json::Str("SkippedRecursive".into()),
            InlineOutcome::SkippedSize { callee_len, cap } => Json::tagged(
                "SkippedSize",
                Json::obj(vec![
                    ("callee_len", callee_len.to_json()),
                    ("cap", cap.to_json()),
                ]),
            ),
            InlineOutcome::SkippedGrowth { caller_len, budget } => Json::tagged(
                "SkippedGrowth",
                Json::obj(vec![
                    ("caller_len", caller_len.to_json()),
                    ("budget", budget.to_json()),
                ]),
            ),
        }
    }
}

impl FromJson for InlineOutcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = v.variant()?;
        match (tag, payload) {
            ("Expanded", None) => Ok(InlineOutcome::Expanded),
            ("SkippedRecursive", None) => Ok(InlineOutcome::SkippedRecursive),
            ("SkippedSize", Some(p)) => Ok(InlineOutcome::SkippedSize {
                callee_len: usize::from_json(p.field("callee_len")?)?,
                cap: usize::from_json(p.field("cap")?)?,
            }),
            ("SkippedGrowth", Some(p)) => Ok(InlineOutcome::SkippedGrowth {
                caller_len: usize::from_json(p.field("caller_len")?)?,
                budget: usize::from_json(p.field("budget")?)?,
            }),
            _ => Err(bad("inline outcome", tag)),
        }
    }
}

/// One inlining decision at one call site.
#[derive(Clone, PartialEq, Debug)]
pub struct InlineEvent {
    /// The procedure containing the call site.
    pub caller: String,
    /// The called procedure.
    pub callee: String,
    /// Source position of the call.
    pub span: SrcSpan,
    /// Stable per-caller site ordinal: distinguishes distinct call sites
    /// that share a source span (two calls in one expression statement),
    /// and stays fixed when the round loop revisits a site — consumers
    /// dedupe on `(caller, callee, span, site)`.
    pub site: u32,
    /// What the inliner decided.
    pub outcome: InlineOutcome,
}

impl ToJson for InlineEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("caller", self.caller.to_json()),
            ("callee", self.callee.to_json()),
            ("span", self.span.to_json()),
            ("site", self.site.to_json()),
            ("outcome", self.outcome.to_json()),
        ])
    }
}

impl FromJson for InlineEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(InlineEvent {
            caller: String::from_json(v.field("caller")?)?,
            callee: String::from_json(v.field("callee")?)?,
            span: SrcSpan::from_json(v.field("span")?)?,
            site: u32::from_json(v.field("site")?)?,
            outcome: InlineOutcome::from_json(v.field("outcome")?)?,
        })
    }
}

impl fmt::Display for InlineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "call {}→{} at {}: {}",
            self.caller, self.callee, self.span, self.outcome
        )
    }
}

impl fmt::Display for LoopEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.var.is_empty() {
            write!(f, "{}: loop at {}: {}", self.proc, self.span, self.decision)
        } else {
            write!(
                f,
                "{}: loop on `{}` at {}: {}",
                self.proc, self.var, self.span, self.decision
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_event_renders() {
        let e = LoopEvent {
            proc: "main".into(),
            var: "i".into(),
            span: SrcSpan::new(7, 5),
            decision: LoopDecision::Vectorized {
                stripped: true,
                parallel: true,
                residual: false,
            },
        };
        assert_eq!(
            e.to_string(),
            "main: loop on `i` at 7:5: vectorized (do parallel strips)"
        );
        assert_eq!(e.decision.tag(), "vectorized");
    }

    #[test]
    fn scalar_decision_names_the_defeat() {
        let d = LoopDecision::Scalar("loop-carried flow dependence".into());
        assert_eq!(d.to_string(), "scalar: loop-carried flow dependence");
        assert_eq!(d.tag(), "scalar");
    }

    #[test]
    fn events_roundtrip_through_json() {
        let loops = vec![
            LoopDecision::DoConverted,
            LoopDecision::DoRejected("branch into body".into()),
            LoopDecision::IvSubstituted { substituted: 2 },
            LoopDecision::Vectorized {
                stripped: true,
                parallel: false,
                residual: true,
            },
            LoopDecision::Parallelized,
            LoopDecision::ListSpread,
            LoopDecision::Scalar("volatile access".into()),
        ];
        for decision in loops {
            let e = LoopEvent {
                proc: "main".into(),
                var: "i".into(),
                span: SrcSpan::new(7, 5).in_file(1),
                decision,
            };
            let text = e.to_json().to_string_compact();
            let back = LoopEvent::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(e, back);
        }
        let outcomes = vec![
            InlineOutcome::Expanded,
            InlineOutcome::SkippedRecursive,
            InlineOutcome::SkippedSize {
                callee_len: 500,
                cap: 400,
            },
            InlineOutcome::SkippedGrowth {
                caller_len: 900,
                budget: 800,
            },
        ];
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let e = InlineEvent {
                caller: "main".into(),
                callee: "daxpy".into(),
                span: SrcSpan::new(12, 3),
                site: i as u32,
                outcome,
            };
            let text = e.to_json().to_string_compact();
            let back = InlineEvent::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn inline_event_renders_budget_state() {
        let e = InlineEvent {
            caller: "main".into(),
            callee: "daxpy".into(),
            span: SrcSpan::new(12, 3),
            site: 0,
            outcome: InlineOutcome::SkippedGrowth {
                caller_len: 900,
                budget: 800,
            },
        };
        assert_eq!(
            e.to_string(),
            "call main→daxpy at 12:3: skipped (caller 900 stmts, growth budget 800)"
        );
    }
}
