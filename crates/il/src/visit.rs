//! Generic statement/expression walkers and rewriters over the arenas.
//!
//! Optimization passes share these helpers instead of each hand-rolling
//! recursion. The rewrite idiom is *in-place slot mutation*: an expression's
//! root slot id is stable, so a pass can fold or rebuild a subtree through
//! `&mut ExprPool` without writing any id back into the statement that
//! references it. Walkers borrow the statement pool immutably while
//! rewriters take the expression pool mutably — the two are separate
//! [`crate::Procedure`] fields, so both borrows coexist.

use crate::expr::{Expr, ExprPool};
use crate::ids::{ExprId, StmtId};
use crate::program::Procedure;
use crate::stmt::{Block, StmtKind, StmtPool};

/// Preorder walk over every statement in a block tree.
pub fn walk_block(stmts: &StmtPool, block: &[StmtId], f: &mut dyn FnMut(StmtId, &StmtKind)) {
    for &s in block {
        f(s, &stmts[s]);
        for b in stmts[s].blocks() {
            walk_block(stmts, b, f);
        }
    }
}

/// Preorder walk over an expression subtree.
pub fn walk_expr(exprs: &ExprPool, id: ExprId, f: &mut dyn FnMut(ExprId, &Expr)) {
    f(id, &exprs[id]);
    for c in exprs[id].child_ids() {
        walk_expr(exprs, c, f);
    }
}

/// Visits every expression evaluated anywhere in the block tree
/// (including nested subexpressions, visited preorder).
pub fn for_each_expr(
    stmts: &StmtPool,
    exprs: &ExprPool,
    block: &[StmtId],
    f: &mut dyn FnMut(ExprId, &Expr),
) {
    walk_block(stmts, block, &mut |_, kind| {
        for e in kind.exprs() {
            walk_expr(exprs, e, f);
        }
    });
}

/// Bottom-up (postorder) rewrite of an expression subtree, in place.
///
/// The callback receives the pool and the id of the node being visited;
/// children have already been rewritten. Replacing a node is writing a new
/// [`Expr`] into `exprs[id]` — the slot id stays valid, so statements
/// referencing the root never need updating.
pub fn rewrite_expr(exprs: &mut ExprPool, id: ExprId, f: &mut dyn FnMut(&mut ExprPool, ExprId)) {
    for c in exprs[id].child_ids() {
        rewrite_expr(exprs, c, f);
    }
    f(exprs, id);
}

/// Applies a bottom-up expression rewrite to every expression in the block
/// tree. Borrows the statement pool immutably (split borrow against
/// `&mut exprs`).
pub fn rewrite_exprs_in_block(
    stmts: &StmtPool,
    exprs: &mut ExprPool,
    block: &[StmtId],
    f: &mut dyn FnMut(&mut ExprPool, ExprId),
) {
    let mut roots = Vec::new();
    walk_block(stmts, block, &mut |_, kind| roots.extend(kind.exprs()));
    for r in roots {
        rewrite_expr(exprs, r, f);
    }
}

/// Applies a bottom-up expression rewrite to every expression in the
/// procedure body.
pub fn rewrite_exprs_in_proc(proc: &mut Procedure, f: &mut dyn FnMut(&mut ExprPool, ExprId)) {
    rewrite_exprs_in_block(&proc.stmts, &mut proc.exprs, &proc.body, f);
}

/// Removes every `Nop` statement id from the body and from every block in
/// the arena (a `Nop` never has children, so one flat sweep over the kind
/// column is fully recursive).
pub fn sweep_nops(stmts: &mut StmtPool, body: &mut Block) {
    let is_nop: Vec<bool> = stmts
        .kinds()
        .iter()
        .map(|k| matches!(k, StmtKind::Nop))
        .collect();
    body.retain(|s| !is_nop[s.index()]);
    for i in 0..stmts.len() {
        let id = StmtId::from_index(i);
        for b in stmts[id].blocks_mut() {
            b.retain(|s| !is_nop[s.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, LValue};
    use crate::ids::VarId;
    use crate::program::Procedure;
    use crate::types::Type;

    fn assign(p: &mut Procedure, v: u32, rhs: ExprId) -> StmtId {
        p.stamp(StmtKind::Assign {
            lhs: LValue::Var(VarId(v)),
            rhs,
        })
    }

    #[test]
    fn walk_visits_nested() {
        let mut p = Procedure::new("f", Type::Void);
        let one = p.exprs.int(1);
        let inner = assign(&mut p, 0, one);
        let cond = p.exprs.var(VarId(9));
        let outer = p.stamp(StmtKind::While {
            cond,
            body: vec![inner],
            safe: false,
        });
        let mut count = 0;
        walk_block(&p.stmts, &[outer], &mut |_, _| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn for_each_expr_reaches_subexpressions() {
        let mut p = Procedure::new("f", Type::Void);
        let x = p.exprs.var(VarId(1));
        let two = p.exprs.int(2);
        let add = p.exprs.ibinary(BinOp::Add, x, two);
        let s = assign(&mut p, 0, add);
        let mut seen = 0;
        for_each_expr(&p.stmts, &p.exprs, &[s], &mut |_, _| seen += 1);
        assert_eq!(seen, 3); // Binary, Var, IntConst
    }

    #[test]
    fn rewrite_is_bottom_up_and_in_place() {
        // Fold (1+2)+4 by rewriting: the parent sees already-rewritten
        // children, and the root slot id never changes.
        let mut pool = ExprPool::new();
        let one = pool.int(1);
        let two = pool.int(2);
        let inner = pool.ibinary(BinOp::Add, one, two);
        let four = pool.int(4);
        let root = pool.ibinary(BinOp::Add, inner, four);
        rewrite_expr(&mut pool, root, &mut |p, id| {
            if let Expr::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
                ..
            } = p[id]
            {
                if let (Some(a), Some(b)) = (p.as_int(lhs), p.as_int(rhs)) {
                    p[id] = Expr::IntConst(a + b);
                }
            }
        });
        assert_eq!(pool.as_int(root), Some(7));
    }

    #[test]
    fn sweep_removes_nested_nops() {
        let mut p = Procedure::new("f", Type::Void);
        let n0 = p.stamp(StmtKind::Nop);
        let n1 = p.stamp(StmtKind::Nop);
        let one = p.exprs.int(1);
        let live = assign(&mut p, 0, one);
        let cond = p.exprs.int(1);
        let w = p.stamp(StmtKind::While {
            cond,
            body: vec![n1, live],
            safe: false,
        });
        p.body = vec![n0, w];
        sweep_nops(&mut p.stmts, &mut p.body);
        assert_eq!(p.body, vec![w]);
        assert_eq!(p.stmts[w].blocks()[0], &vec![live]);
    }
}
