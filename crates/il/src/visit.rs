//! Generic statement/expression walkers and rewriters.
//!
//! Optimization passes share these helpers instead of each hand-rolling
//! recursion over the statement tree.

use crate::expr::Expr;
use crate::stmt::Stmt;

/// Preorder walk over every statement in a block tree.
pub fn walk_block(block: &[Stmt], f: &mut dyn FnMut(&Stmt)) {
    for s in block {
        f(s);
        for b in s.blocks() {
            walk_block(b, f);
        }
    }
}

/// Preorder walk with mutable access to every statement.
///
/// The callback runs before nested blocks are visited; it may rewrite the
/// statement's expressions but should not change its block structure
/// mid-walk.
pub fn walk_block_mut(block: &mut [Stmt], f: &mut dyn FnMut(&mut Stmt)) {
    for s in block {
        f(s);
        for b in s.blocks_mut() {
            walk_block_mut(b, f);
        }
    }
}

/// Visits every expression evaluated anywhere in the block tree
/// (including nested subexpressions, visited preorder).
pub fn for_each_expr(block: &[Stmt], f: &mut dyn FnMut(&Expr)) {
    walk_block(block, &mut |s| {
        for e in s.exprs() {
            walk_expr(e, f);
        }
    });
}

/// Preorder walk over an expression tree.
pub fn walk_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    for c in e.children() {
        walk_expr(c, f);
    }
}

/// Bottom-up (postorder) rewrite of an expression tree in place.
pub fn rewrite_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    for c in e.children_mut() {
        rewrite_expr(c, f);
    }
    f(e);
}

/// Applies a bottom-up expression rewrite to every expression in the block
/// tree.
pub fn rewrite_exprs_in_block(block: &mut [Stmt], f: &mut dyn FnMut(&mut Expr)) {
    walk_block_mut(block, &mut |s| {
        for e in s.exprs_mut() {
            rewrite_expr(e, f);
        }
    });
}

/// Removes every `Nop` statement from a block tree, recursively.
pub fn sweep_nops(block: &mut Vec<Stmt>) {
    block.retain(|s| !matches!(s.kind, crate::stmt::StmtKind::Nop));
    for s in block {
        for b in s.blocks_mut() {
            sweep_nops(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, LValue};
    use crate::ids::{StmtId, VarId};
    use crate::stmt::StmtKind;

    fn assign(id: u32, v: u32, rhs: Expr) -> Stmt {
        Stmt::new(
            StmtId(id),
            StmtKind::Assign {
                lhs: LValue::Var(VarId(v)),
                rhs,
            },
        )
    }

    #[test]
    fn walk_visits_nested() {
        let inner = assign(1, 0, Expr::int(1));
        let outer = Stmt::new(
            StmtId(0),
            StmtKind::While {
                cond: Expr::var(VarId(9)),
                body: vec![inner],
                safe: false,
            },
        );
        let mut count = 0;
        walk_block(&[outer], &mut |_| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn for_each_expr_reaches_subexpressions() {
        let s = assign(
            0,
            0,
            Expr::ibinary(BinOp::Add, Expr::var(VarId(1)), Expr::int(2)),
        );
        let mut seen = 0;
        for_each_expr(&[s], &mut |_| seen += 1);
        assert_eq!(seen, 3); // Binary, Var, IntConst
    }

    #[test]
    fn rewrite_is_bottom_up() {
        // Fold 1+2 by rewriting: the parent sees already-rewritten children.
        let mut e = Expr::ibinary(
            BinOp::Add,
            Expr::ibinary(BinOp::Add, Expr::int(1), Expr::int(2)),
            Expr::int(4),
        );
        rewrite_expr(&mut e, &mut |node| {
            if let Expr::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
                ..
            } = node
            {
                if let (Some(a), Some(b)) = (lhs.as_int(), rhs.as_int()) {
                    *node = Expr::int(a + b);
                }
            }
        });
        assert_eq!(e, Expr::int(7));
    }

    #[test]
    fn sweep_removes_nested_nops() {
        let mut block = vec![
            Stmt::new(StmtId(0), StmtKind::Nop),
            Stmt::new(
                StmtId(1),
                StmtKind::While {
                    cond: Expr::int(1),
                    body: vec![
                        Stmt::new(StmtId(2), StmtKind::Nop),
                        assign(3, 0, Expr::int(1)),
                    ],
                    safe: false,
                },
            ),
        ];
        sweep_nops(&mut block);
        assert_eq!(block.len(), 1);
        assert_eq!(block[0].blocks()[0].len(), 1);
    }
}
