//! An inter-pass IL sanity checker.
//!
//! Every transformation keeps the IL's structural invariants — ids stay in
//! bounds, branches land on labels that exist, counted loops step by a
//! nonzero amount, volatile accesses never migrate into vector statements,
//! and assignments stay kind-consistent. This module rechecks those
//! invariants between passes so a buggy pass is caught at the pass boundary
//! where it fired, not three phases later in the simulator.
//!
//! With arena storage the checker is also the backstop for id discipline:
//! every [`ExprId`]/[`StmtId`] reachable from the body must index its
//! procedure's own pools (an id leaked from another procedure — the classic
//! inlining bug — shows up as an out-of-bounds or type-inconsistent slot),
//! the expression graph must be acyclic (slot rewriting could otherwise tie
//! a node to itself), no statement slot may appear twice in the tree, and
//! the span column must stay in lock-step with the kind column.
//!
//! The pass manager (`titanc-core`) runs [`verify_program`] after every pass
//! in debug builds, and in release builds when `Options::verify` is set.

use crate::expr::{Expr, LValue};
use crate::ids::{ExprId, LabelId, StmtId, VarId};
use crate::program::{Procedure, Program, Storage};
use crate::stmt::StmtKind;
use crate::types::{ScalarType, Type};
use std::collections::HashSet;
use std::fmt;

/// One invariant violation found by the verifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Name of the offending procedure.
    pub proc: String,
    /// Stamp of the offending statement, when the violation is tied to one.
    pub stmt: Option<StmtId>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stmt {
            Some(id) => write!(f, "{}: {}: {}", self.proc, id, self.message),
            None => write!(f, "{}: {}", self.proc, self.message),
        }
    }
}

/// Checks one procedure's structural invariants.
///
/// Verified properties:
///
/// * every [`StmtId`] reachable from the body indexes the statement arena
///   (a stamp at or beyond the allocation watermark is a leaked or corrupt
///   id), and no slot appears twice in the statement tree;
/// * every [`ExprId`] reachable from a statement indexes the expression
///   arena, and the expression graph is acyclic (sharing is legal — folds
///   hoist child nodes — but a slot may never reach itself);
/// * the span column has exactly one entry per statement slot, and the
///   lifetime allocation counters are at least the live arena lengths;
/// * every [`VarId`] (params, reads, stores, induction variables) indexes
///   the procedure's variable table, and value reads name *scalar*
///   variables;
/// * every [`LabelId`] is in bounds, no label is defined twice, and every
///   `goto` targets a label that is defined somewhere in the body;
/// * `DoLoop`/`DoParallel` steps are not the constant zero (and not
///   floating constants);
/// * no volatile access appears inside a vector (section) assignment;
/// * assignment value kinds agree with the stored kind (exactly for floats,
///   up to integer promotion for `Char`/`Int`/`Ptr`).
///
/// # Errors
///
/// Returns every violation found (the check does not stop at the first).
pub fn verify_proc(proc: &Procedure) -> Result<(), Vec<VerifyError>> {
    let mut ck = Checker::new(proc, None);
    ck.run();
    ck.finish()
}

/// Checks every procedure of a program (see [`verify_proc`]), plus the
/// program-level invariants: struct ids in variable and field types index
/// the struct table, and every [`Storage::Global`] variable resolves to a
/// program global of the same name.
///
/// # Errors
///
/// Returns every violation found across all procedures.
pub fn verify_program(prog: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for sd in &prog.structs {
        for field in &sd.fields {
            check_struct_ids(prog, &field.ty, &mut errors, || {
                format!("struct {} field {}", sd.name, field.name)
            });
        }
    }
    for g in &prog.globals {
        check_struct_ids(prog, &g.ty, &mut errors, || format!("global {}", g.name));
    }
    for proc in &prog.procs {
        let mut ck = Checker::new(proc, Some(prog));
        ck.run();
        if let Err(e) = ck.finish() {
            errors.extend(e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_struct_ids(
    prog: &Program,
    ty: &Type,
    errors: &mut Vec<VerifyError>,
    what: impl Fn() -> String,
) {
    match ty {
        Type::Struct(sid) if sid.index() >= prog.structs.len() => errors.push(VerifyError {
            proc: "<program>".into(),
            stmt: None,
            message: format!("{}: struct id {} out of bounds", what(), sid),
        }),
        Type::Ptr(inner) => check_struct_ids(prog, inner, errors, what),
        Type::Array(elem, _) => check_struct_ids(prog, elem, errors, what),
        _ => {}
    }
}

struct Checker<'a> {
    proc: &'a Procedure,
    prog: Option<&'a Program>,
    errors: Vec<VerifyError>,
    stamps: HashSet<StmtId>,
    defined_labels: HashSet<LabelId>,
    referenced_labels: Vec<(StmtId, LabelId)>,
    /// Expression ids on the current DFS path (cycle detection).
    expr_path: HashSet<ExprId>,
}

impl<'a> Checker<'a> {
    fn new(proc: &'a Procedure, prog: Option<&'a Program>) -> Checker<'a> {
        Checker {
            proc,
            prog,
            errors: Vec::new(),
            stamps: HashSet::new(),
            defined_labels: HashSet::new(),
            referenced_labels: Vec::new(),
            expr_path: HashSet::new(),
        }
    }

    fn error(&mut self, stmt: Option<StmtId>, message: String) {
        self.errors.push(VerifyError {
            proc: self.proc.name.clone(),
            stmt,
            message,
        });
    }

    fn run(&mut self) {
        if self.proc.stmts.spans().len() != self.proc.stmts.len() {
            self.error(None, "span column out of sync with statement arena".into());
        }
        if self.proc.stmts.total_allocated() < self.proc.stmts.len() as u64 {
            self.error(None, "statement arena lifetime counter below length".into());
        }
        if self.proc.exprs.total_allocated() < self.proc.exprs.len() as u64 {
            self.error(
                None,
                "expression arena lifetime counter below length".into(),
            );
        }
        for (i, &p) in self.proc.params.iter().enumerate() {
            if p.index() >= self.proc.vars.len() {
                self.error(None, format!("param {i} ({p}) out of bounds"));
            } else if self.proc.var(p).storage != Storage::Param {
                self.error(None, format!("param {i} ({p}) has non-param storage"));
            }
        }
        for (i, info) in self.proc.vars.iter().enumerate() {
            if info.storage == Storage::Global {
                if let Some(prog) = self.prog {
                    if prog.global_by_name(&info.name).is_none() {
                        self.error(
                            None,
                            format!("v{i} ({}) names no program global", info.name),
                        );
                    }
                }
            }
        }
        self.check_block(&self.proc.body.clone());
        for (stmt, label) in std::mem::take(&mut self.referenced_labels) {
            if !self.defined_labels.contains(&label) {
                self.error(Some(stmt), format!("goto targets undefined label {label}"));
            }
        }
    }

    fn finish(self) -> Result<(), Vec<VerifyError>> {
        if self.errors.is_empty() {
            Ok(())
        } else {
            Err(self.errors)
        }
    }

    fn check_block(&mut self, block: &[StmtId]) {
        for &s in block {
            if self.check_stmt(s) {
                // recurse only into slots that are in bounds and newly
                // visited — a block that reaches an ancestor would
                // otherwise loop forever
                let proc = self.proc;
                for b in proc.stmts[s].blocks() {
                    self.check_block(b);
                }
            }
        }
    }

    /// Variable-table bounds check; returns the scalar kind when the
    /// variable is in bounds and scalar.
    fn check_var(&mut self, stmt: StmtId, v: VarId, what: &str) -> Option<ScalarType> {
        if v.index() >= self.proc.vars.len() {
            self.error(Some(stmt), format!("{what} {v} out of bounds"));
            return None;
        }
        self.proc.var(v).scalar()
    }

    /// Checks the expression subgraph at `e` and returns its result kind
    /// when it could be determined.
    fn check_expr(&mut self, stmt: StmtId, e: ExprId) -> Option<ScalarType> {
        let node = match self.proc.exprs.get_checked(e) {
            Some(n) => *n,
            None => {
                self.error(Some(stmt), format!("expression id {e} out of bounds"));
                return None;
            }
        };
        if !self.expr_path.insert(e) {
            self.error(Some(stmt), format!("expression cycle through {e}"));
            return None;
        }
        let kind = self.check_expr_node(stmt, &node);
        self.expr_path.remove(&e);
        kind
    }

    fn check_expr_node(&mut self, stmt: StmtId, e: &Expr) -> Option<ScalarType> {
        match *e {
            Expr::IntConst(_) => Some(ScalarType::Int),
            Expr::FloatConst(_, ty) => Some(ty),
            Expr::Var(v) => {
                let kind = self.check_var(stmt, v, "read of");
                if kind.is_none() && v.index() < self.proc.vars.len() {
                    self.error(
                        Some(stmt),
                        format!("value read of non-scalar {} ({v})", self.proc.var(v).name),
                    );
                }
                kind
            }
            Expr::AddrOf(v) => {
                if v.index() >= self.proc.vars.len() {
                    self.error(Some(stmt), format!("address of {v} out of bounds"));
                }
                Some(ScalarType::Ptr)
            }
            Expr::Load { addr, ty, .. } => {
                if let Some(k) = self.check_expr(stmt, addr) {
                    if k.is_float() {
                        self.error(Some(stmt), format!("load address has kind {k}"));
                    }
                }
                Some(ty)
            }
            Expr::Unary { op, ty, arg } => {
                self.check_expr(stmt, arg);
                if op == crate::expr::UnOp::Not {
                    Some(ScalarType::Int)
                } else {
                    Some(ty)
                }
            }
            Expr::Binary { op, ty, lhs, rhs } => {
                self.check_expr(stmt, lhs);
                self.check_expr(stmt, rhs);
                if op.is_comparison() {
                    Some(ScalarType::Int)
                } else {
                    Some(ty)
                }
            }
            Expr::Cast { to, arg, .. } => {
                self.check_expr(stmt, arg);
                Some(to)
            }
            Expr::Section {
                base,
                len,
                stride,
                ty,
            } => {
                self.check_expr(stmt, base);
                for (part, name) in [(len, "length"), (stride, "stride")] {
                    if let Some(k) = self.check_expr(stmt, part) {
                        if k.is_float() {
                            self.error(Some(stmt), format!("section {name} has kind {k}"));
                        }
                    }
                }
                Some(ty)
            }
        }
    }

    fn check_label_use(&mut self, stmt: StmtId, label: LabelId) {
        if label.0 >= self.proc.num_labels {
            self.error(Some(stmt), format!("label {label} out of bounds"));
        } else {
            self.referenced_labels.push((stmt, label));
        }
    }

    fn check_loop_header(&mut self, stmt: StmtId, var: VarId, step: ExprId) {
        match self.check_var(stmt, var, "induction variable") {
            Some(kind) if kind.is_float() => {
                self.error(
                    Some(stmt),
                    format!("induction variable {var} has kind {kind}"),
                );
            }
            Some(_) => {}
            None if var.index() < self.proc.vars.len() => {
                self.error(
                    Some(stmt),
                    format!("induction variable {var} is not scalar"),
                );
            }
            None => {}
        }
        match self.proc.exprs.get_checked(step) {
            Some(Expr::IntConst(0)) => {
                self.error(Some(stmt), "counted loop has zero step".into());
            }
            Some(Expr::FloatConst(..)) => {
                self.error(Some(stmt), "counted loop has floating step".into());
            }
            _ => {} // out-of-bounds reported by check_expr on the header
        }
    }

    /// Checks one statement slot; returns whether the caller should recurse
    /// into its blocks.
    fn check_stmt(&mut self, s: StmtId) -> bool {
        let proc = self.proc;
        if proc.stmts.get_checked(s).is_none() {
            self.error(Some(s), "stamp beyond the procedure's stamp counter".into());
            return false;
        }
        if !self.stamps.insert(s) {
            self.error(Some(s), "duplicate statement stamp".into());
            return false;
        }
        match &proc.stmts[s] {
            StmtKind::Assign { lhs, rhs } => {
                let rhs = *rhs;
                let errs_before = self.errors.len();
                let store = match *lhs {
                    LValue::Var(v) => {
                        let kind = self.check_var(s, v, "store to");
                        if kind.is_none() && v.index() < self.proc.vars.len() {
                            self.error(
                                Some(s),
                                format!("store to non-scalar {} ({v})", self.proc.var(v).name),
                            );
                        }
                        kind
                    }
                    LValue::Deref { addr, ty, .. } => {
                        self.check_expr(s, addr);
                        Some(ty)
                    }
                    LValue::Section {
                        base,
                        len,
                        stride,
                        ty,
                    } => {
                        self.check_expr(s, base);
                        self.check_expr(s, len);
                        self.check_expr(s, stride);
                        Some(ty)
                    }
                };
                let value = self.check_expr(s, rhs);
                if let (Some(store), Some(value)) = (store, value) {
                    let agree = store == value || (store.is_integral() && value.is_integral());
                    if !agree {
                        self.error(
                            Some(s),
                            format!("assign stores {store} but value has kind {value}"),
                        );
                    }
                }
                // recursive pool queries are only safe once the expression
                // subgraph checked out (no dangling ids, no cycles)
                if self.errors.len() == errs_before {
                    let is_vector =
                        matches!(lhs, LValue::Section { .. }) || proc.exprs.has_section(rhs);
                    if is_vector
                        && (lhs.is_volatile() || proc.stmts[s].has_volatile_access(&proc.exprs))
                    {
                        self.error(Some(s), "volatile access inside vector assign".into());
                    }
                }
            }
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::WhileSpread { cond, .. } => {
                self.check_expr(s, *cond);
            }
            StmtKind::DoLoop {
                var, lo, hi, step, ..
            }
            | StmtKind::DoParallel {
                var, lo, hi, step, ..
            } => {
                let (var, lo, hi, step) = (*var, *lo, *hi, *step);
                self.check_loop_header(s, var, step);
                self.check_expr(s, lo);
                self.check_expr(s, hi);
                self.check_expr(s, step);
            }
            StmtKind::Label(l) => {
                let l = *l;
                if l.0 >= self.proc.num_labels {
                    self.error(Some(s), format!("label {l} out of bounds"));
                } else if !self.defined_labels.insert(l) {
                    self.error(Some(s), format!("label {l} defined twice"));
                }
            }
            StmtKind::Goto(l) => {
                let l = *l;
                self.check_label_use(s, l);
            }
            StmtKind::IfGoto { cond, target } => {
                let (cond, target) = (*cond, *target);
                self.check_expr(s, cond);
                self.check_label_use(s, target);
            }
            StmtKind::Call { dst, args, .. } => {
                let dst = *dst;
                let args = args.clone();
                if let Some(d) = dst {
                    match d {
                        LValue::Var(v) => {
                            self.check_var(s, v, "call result to");
                        }
                        LValue::Deref { addr, .. } => {
                            self.check_expr(s, addr);
                        }
                        LValue::Section { .. } => {
                            self.error(Some(s), "call result stored to a section".into());
                        }
                    }
                }
                for a in args {
                    self.check_expr(s, a);
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = *e {
                    self.check_expr(s, e);
                }
            }
            StmtKind::Nop => {}
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::BinOp;

    fn counting_proc() -> Procedure {
        let mut b = ProcBuilder::new("f", Type::Int);
        let n = b.param("n", Type::Int);
        let s = b.local("s", Type::Int);
        let i = b.local("i", Type::Int);
        let zero = b.int(0);
        b.assign_var(s, zero);
        let body = {
            let mut lb = b.block();
            let sv = lb.var(s);
            let iv = lb.var(i);
            let add = lb.ibinary(BinOp::Add, sv, iv);
            lb.assign_var(s, add);
            lb.stmts()
        };
        let lo = b.int(1);
        let hi = b.var(n);
        let step = b.int(1);
        b.do_loop(i, lo, hi, step, body);
        let sv = b.var(s);
        b.ret(Some(sv));
        b.finish()
    }

    #[test]
    fn well_formed_proc_passes() {
        assert!(verify_proc(&counting_proc()).is_ok());
    }

    #[test]
    fn dangling_goto_is_rejected() {
        let mut p = counting_proc();
        let target = LabelId(p.num_labels); // never defined, out of bounds too
        p.num_labels += 1; // in bounds, but no Label statement
        p.push(StmtKind::Goto(target));
        let errs = verify_proc(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("undefined label")),
            "got: {errs:?}"
        );
    }

    #[test]
    fn zero_step_loop_is_rejected() {
        let mut p = Procedure::new("z", Type::Void);
        let i = p.fresh_temp(Type::Int);
        let lo = p.exprs.int(0);
        let hi = p.exprs.int(9);
        let step = p.exprs.int(0);
        p.push(StmtKind::DoLoop {
            var: i,
            lo,
            hi,
            step,
            body: vec![],
            safe: false,
        });
        let errs = verify_proc(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("zero step")));
    }

    #[test]
    fn out_of_bounds_var_is_rejected() {
        let mut p = Procedure::new("v", Type::Void);
        let t = p.fresh_temp(Type::Int);
        let rhs = p.exprs.var(VarId(99));
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs,
        });
        let errs = verify_proc(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of bounds")));
    }

    #[test]
    fn volatile_in_vector_assign_is_rejected() {
        let mut p = Procedure::new("vv", Type::Void);
        let a = p.fresh_temp(Type::ptr_to(Type::Float));
        let base = p.exprs.var(a);
        let len = p.exprs.int(8);
        let stride = p.exprs.int(4);
        let addr = p.exprs.var(a);
        let rhs = p.exprs.alloc(Expr::Load {
            addr,
            ty: ScalarType::Float,
            volatile: true,
        });
        p.push(StmtKind::Assign {
            lhs: LValue::Section {
                base,
                len,
                stride,
                ty: ScalarType::Float,
            },
            rhs,
        });
        let errs = verify_proc(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("volatile")));
    }

    #[test]
    fn float_to_int_assign_without_cast_is_rejected() {
        let mut p = Procedure::new("t", Type::Void);
        let t = p.fresh_temp(Type::Int);
        let rhs = p.exprs.float(1.5);
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs,
        });
        let errs = verify_proc(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("value has kind")));
    }

    #[test]
    fn duplicate_stamps_are_rejected() {
        let mut p = Procedure::new("d", Type::Void);
        p.push(StmtKind::Nop);
        let dup = p.body[0];
        p.body.push(dup);
        let errs = verify_proc(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate")));
    }

    #[test]
    fn dangling_expr_id_is_rejected() {
        // a corrupted (out-of-pool) ExprId written into a statement is
        // caught instead of panicking
        let mut p = Procedure::new("c", Type::Void);
        let t = p.fresh_temp(Type::Int);
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs: ExprId(999),
        });
        let errs = verify_proc(&p).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("expression id e999 out of bounds")),
            "got: {errs:?}"
        );
    }

    #[test]
    fn dangling_stmt_id_is_rejected() {
        let mut p = Procedure::new("c", Type::Void);
        let cond = p.exprs.int(1);
        let w = p.stamp(StmtKind::While {
            cond,
            body: vec![StmtId(42)], // never allocated
            safe: false,
        });
        p.body = vec![w];
        let errs = verify_proc(&p).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.stmt == Some(StmtId(42)) && e.message.contains("stamp beyond")),
            "got: {errs:?}"
        );
    }

    #[test]
    fn expression_cycle_is_rejected() {
        let mut p = Procedure::new("c", Type::Void);
        let t = p.fresh_temp(Type::Int);
        let a = p.exprs.int(1);
        let b = p.exprs.int(2);
        let root = p.exprs.ibinary(BinOp::Add, a, b);
        // corrupt the slot so it references itself
        p.exprs[root] = Expr::Binary {
            op: BinOp::Add,
            ty: ScalarType::Int,
            lhs: a,
            rhs: root,
        };
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs: root,
        });
        let errs = verify_proc(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("cycle")),
            "got: {errs:?}"
        );
    }

    #[test]
    fn shared_subtrees_are_not_cycles() {
        // fold identities duplicate nodes across slots; a DAG must verify
        let mut p = Procedure::new("dag", Type::Void);
        let t = p.fresh_temp(Type::Int);
        let shared = p.exprs.int(7);
        let root = p.exprs.ibinary(BinOp::Add, shared, shared);
        p.push(StmtKind::Assign {
            lhs: LValue::Var(t),
            rhs: root,
        });
        assert!(verify_proc(&p).is_ok());
    }

    #[test]
    fn unresolved_global_is_rejected_at_program_level() {
        let mut prog = Program::new();
        let mut p = Procedure::new("g", Type::Void);
        p.add_var(crate::program::VarInfo {
            name: "missing".into(),
            ty: Type::Int,
            storage: Storage::Global,
            volatile: false,
            addressed: true,
            init: None,
        });
        prog.add_proc(p);
        let errs = verify_program(&prog).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no program global")));
    }

    #[test]
    fn error_display_names_proc_and_stmt() {
        let e = VerifyError {
            proc: "daxpy".into(),
            stmt: Some(StmtId(3)),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "daxpy: s3: boom");
    }
}
