//! Index-based identifiers.
//!
//! The paper (§7) eliminates all hard pointers from the IL so procedures can
//! be saved in catalogs and paged. We reproduce that property with small
//! `u32` index newtypes: a [`VarId`] indexes a [`crate::Procedure`]'s
//! variable table (or the program's global table), a [`LabelId`] its label
//! table, a [`StmtId`] is a per-procedure unique statement stamp used by the
//! analyses, and a [`ProcId`] indexes the [`crate::Program`] procedure list.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a variable within a procedure (locals, params, temps) or,
    /// for ids flagged global, within the program's global table.
    /// See [`crate::Procedure::var`].
    VarId,
    "v"
);
id_type!(
    /// Identifies a procedure within a [`crate::Program`].
    ProcId,
    "p"
);
id_type!(
    /// Identifies a label within a procedure.
    LabelId,
    "L"
);
id_type!(
    /// A per-procedure unique statement stamp. A `StmtId` is simultaneously
    /// the statement's *arena slot* in [`crate::StmtPool`]: stamps survive
    /// tree rewrites so analyses (use-def chains, dependence edges) can
    /// refer to statements stably, and resolve in O(1).
    StmtId,
    "s"
);
id_type!(
    /// Identifies an expression node within a procedure's flat
    /// [`crate::ExprPool`] arena. Operands of [`crate::Expr`] nodes are
    /// `ExprId`s instead of boxed subtrees, so expression storage is
    /// contiguous and procedure clones are `memcpy`-cheap.
    ExprId,
    "e"
);
id_type!(
    /// Identifies a struct definition within a [`crate::Program`].
    StructId,
    "S"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let v = VarId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v}"), "v42");
        assert_eq!(format!("{v:?}"), "v42");
    }

    #[test]
    fn id_ordering_follows_index() {
        assert!(StmtId(1) < StmtId(2));
        assert!(LabelId(0) < LabelId(10));
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn id_overflow_panics() {
        let _ = VarId::from_index(usize::MAX);
    }

    #[test]
    fn json_roundtrip() {
        use crate::json::{FromJson, ToJson};
        let p = ProcId(7);
        let json = p.to_json().to_string_compact();
        let back = ProcId::from_json(&crate::json::parse(&json).unwrap()).unwrap();
        assert_eq!(p, back);
    }
}
