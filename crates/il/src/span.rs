//! Source positions carried on IL statements.
//!
//! The front end anchors diagnostics to line/column positions; the
//! observability layer needs the same anchors on the IL so per-loop
//! optimization decisions (while→DO conversion, vectorization,
//! spreading, inlining) can be reported *over the source* rather than
//! over pretty-printed IL. [`SrcSpan`] is the IL-side mirror of the
//! front end's span type — a plain (line, column) pair, 1-based, with
//! `(0, 0)` meaning "no position" (compiler-synthesized statements).
//!
//! Spans also carry an *origin file tag* so positions stay meaningful
//! once procedures cross translation units (catalog linking, multi-file
//! sessions). Tag `0` means "the current TU"; a tag `f > 0` names entry
//! `f - 1` of the owning [`crate::Program`]'s file table. Without the
//! tag, a loop inlined from `blas.c` would be reported against the
//! consumer TU's line numbers.

use std::fmt;

/// A 1-based line/column source position attached to an IL statement.
/// `(0, 0)` means "unknown" — the statement was synthesized by the
/// compiler rather than lowered from source text.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SrcSpan {
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// 1-based source column (0 = unknown).
    pub col: u32,
    /// Origin file tag: `0` is the current translation unit, `f > 0`
    /// indexes entry `f - 1` of the owning program's file table (set
    /// when the statement arrived via a catalog or another session TU).
    pub file: u32,
}

impl SrcSpan {
    /// The "no position" span of compiler-synthesized statements.
    pub const NONE: SrcSpan = SrcSpan {
        line: 0,
        col: 0,
        file: 0,
    };

    /// Builds a span from a 1-based line/column pair in the current TU.
    pub fn new(line: u32, col: u32) -> SrcSpan {
        SrcSpan { line, col, file: 0 }
    }

    /// The same position, tagged as originating in file `file`.
    pub fn in_file(self, file: u32) -> SrcSpan {
        SrcSpan { file, ..self }
    }

    /// True when the span carries a real source position.
    pub fn is_known(&self) -> bool {
        self.line != 0 || self.col != 0
    }
}

impl fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_known() {
            f.write_str("?:?")
        } else if self.file != 0 {
            // the bare tag — resolving it to a file name needs the
            // program's file table, which the correlator has
            write!(f, "{}:{}@f{}", self.line, self.col, self.file)
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unknown() {
        assert!(!SrcSpan::NONE.is_known());
        assert!(SrcSpan::new(1, 1).is_known());
        assert!(SrcSpan::new(3, 0).is_known());
    }

    #[test]
    fn displays_position() {
        assert_eq!(SrcSpan::new(4, 9).to_string(), "4:9");
        assert_eq!(SrcSpan::NONE.to_string(), "?:?");
        assert_eq!(SrcSpan::new(4, 9).in_file(2).to_string(), "4:9@f2");
    }

    #[test]
    fn orders_by_line_then_col() {
        assert!(SrcSpan::new(2, 9) < SrcSpan::new(3, 1));
        assert!(SrcSpan::new(3, 1) < SrcSpan::new(3, 2));
    }

    #[test]
    fn file_tag_distinguishes_origins() {
        let here = SrcSpan::new(7, 1);
        let there = here.in_file(1);
        assert_ne!(here, there);
        assert!(there.is_known());
    }
}
