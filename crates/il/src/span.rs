//! Source positions carried on IL statements.
//!
//! The front end anchors diagnostics to line/column positions; the
//! observability layer needs the same anchors on the IL so per-loop
//! optimization decisions (while→DO conversion, vectorization,
//! spreading, inlining) can be reported *over the source* rather than
//! over pretty-printed IL. [`SrcSpan`] is the IL-side mirror of the
//! front end's span type — a plain (line, column) pair, 1-based, with
//! `(0, 0)` meaning "no position" (compiler-synthesized statements).

use std::fmt;

/// A 1-based line/column source position attached to an IL statement.
/// `(0, 0)` means "unknown" — the statement was synthesized by the
/// compiler rather than lowered from source text.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SrcSpan {
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// 1-based source column (0 = unknown).
    pub col: u32,
}

impl SrcSpan {
    /// The "no position" span of compiler-synthesized statements.
    pub const NONE: SrcSpan = SrcSpan { line: 0, col: 0 };

    /// Builds a span from a 1-based line/column pair.
    pub fn new(line: u32, col: u32) -> SrcSpan {
        SrcSpan { line, col }
    }

    /// True when the span carries a real source position.
    pub fn is_known(&self) -> bool {
        self.line != 0 || self.col != 0
    }
}

impl fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            f.write_str("?:?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unknown() {
        assert!(!SrcSpan::NONE.is_known());
        assert!(SrcSpan::new(1, 1).is_known());
        assert!(SrcSpan::new(3, 0).is_known());
    }

    #[test]
    fn displays_position() {
        assert_eq!(SrcSpan::new(4, 9).to_string(), "4:9");
        assert_eq!(SrcSpan::NONE.to_string(), "?:?");
    }

    #[test]
    fn orders_by_line_then_col() {
        assert!(SrcSpan::new(2, 9) < SrcSpan::new(3, 1));
        assert!(SrcSpan::new(3, 1) < SrcSpan::new(3, 2));
    }
}
