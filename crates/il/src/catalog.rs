//! Procedure catalogs — the §7 inlining databases.
//!
//! Because the IL contains no hard pointers, parsed procedures can be
//! serialized into a *catalog* ("math libraries can be 'compiled' into
//! databases and used as a base for inlining, much as include directories
//! are used as a source for header files"). A catalog carries the
//! procedures plus the struct layouts and globals they reference, so a
//! compilation can link any subset in by name.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::program::{Procedure, Program, StructDef, VarInfo};
use std::io;
use std::path::Path;

/// A serializable library of parsed procedures (§7).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Catalog {
    /// Catalog name (e.g. `"blas"`).
    pub name: String,
    /// The stored procedures.
    pub procs: Vec<Procedure>,
    /// Struct layouts the procedures reference.
    pub structs: Vec<StructDef>,
    /// Globals the procedures reference — including statics that were
    /// externalized when the procedure was cataloged (§7).
    pub globals: Vec<VarInfo>,
    /// Origin file table for span file tags carried by the stored
    /// procedures (mirrors [`Program::files`]). Legacy catalogs without
    /// the field decode to an empty table.
    pub files: Vec<String>,
}

/// What [`Catalog::link_into`] did — the caller turns `shadowed` into
/// diagnostics naming both origins (the IL crate has no diagnostic sink).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LinkReport {
    /// Procedure names newly added from the catalog.
    pub added: Vec<String>,
    /// Catalog procedures dropped because the program already defines the
    /// name — earlier definitions win (TU first, then catalogs in CLI
    /// order), so a repeated or overlapping `--catalog` must warn rather
    /// than silently shadow.
    pub shadowed: Vec<String>,
}

impl Catalog {
    /// An empty catalog with the given name.
    pub fn new(name: impl Into<String>) -> Catalog {
        Catalog {
            name: name.into(),
            ..Catalog::default()
        }
    }

    /// Builds a catalog from an entire compiled program.
    pub fn from_program(name: impl Into<String>, prog: &Program) -> Catalog {
        Catalog {
            name: name.into(),
            procs: prog.procs.clone(),
            structs: prog.structs.clone(),
            globals: prog.globals.clone(),
            files: prog.files.clone(),
        }
    }

    /// Adds a procedure.
    pub fn add(&mut self, proc: Procedure) {
        self.procs.push(proc);
    }

    /// Looks up a procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<&Procedure> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Serializes the catalog to a JSON string.
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("name", self.name.to_json()),
            ("procs", self.procs.to_json()),
            ("structs", self.structs.to_json()),
            ("globals", self.globals.to_json()),
        ];
        if !self.files.is_empty() {
            // emitted only when present so catalogs without cross-file
            // spans keep the legacy shape
            pairs.push(("files", self.files.to_json()));
        }
        Json::obj(pairs).to_string_compact()
    }

    /// Parses a catalog from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error when the JSON is not a valid catalog.
    pub fn from_json(s: &str) -> Result<Catalog, JsonError> {
        let doc = crate::json::parse(s)?;
        Ok(Catalog {
            name: String::from_json(doc.field("name")?)?,
            procs: Vec::from_json(doc.field("procs")?)?,
            structs: Vec::from_json(doc.field("structs")?)?,
            globals: Vec::from_json(doc.field("globals")?)?,
            // legacy catalogs predate the file table
            files: match doc.get("files") {
                Some(f) => Vec::from_json(f)?,
                None => Vec::new(),
            },
        })
    }

    /// Saves the catalog to a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a catalog from a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error, or an `InvalidData` error when the file is
    /// not a valid catalog.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Catalog> {
        let text = std::fs::read_to_string(path)?;
        Catalog::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Links every procedure, struct and global of the catalog into `prog`
    /// (procedures already present by name are left untouched — earlier
    /// definitions win). The returned [`LinkReport`] names both the added
    /// and the shadowed procedures so the driver can diagnose overlapping
    /// `--catalog` flags instead of shadowing silently.
    ///
    /// Spans of linked procedures are retagged into `prog`'s file table:
    /// the catalog's own origin files carry over, and spans from the
    /// catalog's "current TU" are attributed to the catalog itself — so
    /// `--opt-report` never charges a catalog loop to the consumer TU's
    /// line numbers.
    ///
    /// Struct ids are *not* remapped: catalogs produced against the same
    /// front-end session share the program's struct table; catalogs with
    /// their own structs append them. This mirrors the paper's scheme of
    /// self-contained relocatable tables.
    pub fn link_into(&self, prog: &mut Program) -> LinkReport {
        for g in &self.globals {
            prog.ensure_global(g.clone());
        }
        for sd in &self.structs {
            if !prog.structs.iter().any(|s| s.name == sd.name) {
                prog.structs.push(sd.clone());
            }
        }
        let mut report = LinkReport::default();
        // tag map, built once a procedure is actually added: the
        // catalog's tag 0 becomes a tag naming the catalog, its own file
        // table entries carry over under fresh tags
        let mut map: Option<Vec<u32>> = None;
        for p in &self.procs {
            if prog.proc_by_name(&p.name).is_some() {
                report.shadowed.push(p.name.clone());
                continue;
            }
            let map = map.get_or_insert_with(|| {
                let mut m = vec![prog.intern_file(&self.name)];
                m.extend(self.files.iter().map(|f| prog.intern_file(f)));
                m
            });
            let mut p = p.clone();
            p.retag_spans(map);
            report.added.push(p.name.clone());
            prog.add_proc(p);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::types::Type;

    fn sample_proc(name: &str) -> Procedure {
        let mut b = ProcBuilder::new(name, Type::Int);
        let n = b.param("n", Type::Int);
        let nv = b.var(n);
        b.ret(Some(nv));
        b.finish()
    }

    #[test]
    fn json_roundtrip_preserves_procedures() {
        let mut c = Catalog::new("blas");
        c.add(sample_proc("daxpy"));
        c.add(sample_proc("ddot"));
        c.files.push("blas.c".into());
        let json = c.to_json();
        let back = Catalog::from_json(&json).unwrap();
        assert_eq!(c, back);
        assert!(back.proc_by_name("ddot").is_some());
    }

    #[test]
    fn file_roundtrip() {
        let mut c = Catalog::new("lib");
        c.add(sample_proc("f"));
        let dir = std::env::temp_dir().join("titanc-catalog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lib.json");
        c.save(&path).unwrap();
        let back = Catalog::load(&path).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn link_into_does_not_clobber_existing() {
        let mut prog = Program::new();
        let mut local = sample_proc("daxpy");
        local.ret = Type::Void; // distinguishable from the catalog's copy
        prog.add_proc(local);

        let mut c = Catalog::new("blas");
        c.add(sample_proc("daxpy"));
        c.add(sample_proc("ddot"));
        let report = c.link_into(&mut prog);

        assert_eq!(prog.procs.len(), 2);
        assert_eq!(prog.proc_by_name("daxpy").unwrap().ret, Type::Void);
        assert!(prog.proc_by_name("ddot").is_some());
        // the shadowing is reported, not silent
        assert_eq!(report.shadowed, vec!["daxpy".to_string()]);
        assert_eq!(report.added, vec!["ddot".to_string()]);
    }

    #[test]
    fn link_retags_spans_to_the_catalog_origin() {
        use crate::span::SrcSpan;
        use crate::stmt::StmtKind;

        let mut c = Catalog::new("blas");
        let mut p = sample_proc("daxpy");
        let s = p.stamp_at(StmtKind::Nop, SrcSpan::new(12, 3));
        p.body.insert(0, s);
        c.add(p);

        let mut prog = Program::new();
        prog.intern_file("other.c"); // occupy tag 1
        c.link_into(&mut prog);

        let linked = prog.proc_by_name("daxpy").unwrap();
        let tag = linked.stmts.span(linked.body[0]).file;
        assert_ne!(tag, 0, "catalog spans must not claim the current TU");
        assert_eq!(prog.file_name(tag), Some("blas"));
    }

    #[test]
    fn link_merges_globals_and_structs_once() {
        let mut c = Catalog::new("g");
        c.globals.push(VarInfo {
            name: "shared".into(),
            ty: Type::Int,
            storage: crate::program::Storage::Global,
            volatile: false,
            addressed: true,
            init: None,
        });
        c.structs.push(StructDef {
            name: "pt".into(),
            fields: vec![],
            size: 0,
        });
        let mut prog = Program::new();
        c.link_into(&mut prog);
        c.link_into(&mut prog);
        assert_eq!(prog.globals.len(), 1);
        assert_eq!(prog.structs.len(), 1);
    }
}
