//! Constant evaluation and folding.
//!
//! These are the *single source of truth* for IL arithmetic semantics: the
//! constant propagator (`titanc-opt`) and the Titan simulator
//! (`titanc-titan`) both evaluate operators through this module, so folding
//! can never disagree with execution.
//!
//! Integer kinds wrap to their C width on a 32-bit Titan: `char` is a
//! signed 8-bit byte, `int` a signed 32-bit word, pointers an unsigned
//! 32-bit word. `float` rounds through IEEE single precision.

use crate::expr::{BinOp, Expr, ExprPool, UnOp};
use crate::ids::ExprId;
use crate::types::ScalarType;

/// A runtime (or compile-time) scalar value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// An integral value (char/int/ptr), already normalized to its width.
    Int(i64),
    /// A floating value (float values are kept rounded to f32 precision).
    Float(f64),
}

impl Value {
    /// The value as an i64, converting floats by truncation.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(f) => f as i64,
        }
    }

    /// The value as an f64.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(f) => f,
        }
    }

    /// C truthiness: nonzero is true.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(f) => f != 0.0,
        }
    }
}

/// Normalizes a raw value to the representation of `ty` (wrapping integers,
/// rounding floats).
pub fn normalize(v: Value, ty: ScalarType) -> Value {
    match ty {
        ScalarType::Char => Value::Int((v.as_int() as i8) as i64),
        ScalarType::Int => Value::Int((v.as_int() as i32) as i64),
        ScalarType::Ptr => Value::Int((v.as_int() as u32) as i64),
        ScalarType::Float => Value::Float(v.as_float() as f32 as f64),
        ScalarType::Double => Value::Float(v.as_float()),
    }
}

/// Evaluates a cast.
pub fn eval_cast(to: ScalarType, _from: ScalarType, v: Value) -> Value {
    match to {
        ScalarType::Char | ScalarType::Int | ScalarType::Ptr => {
            normalize(Value::Int(v.as_int()), to)
        }
        ScalarType::Float | ScalarType::Double => normalize(Value::Float(v.as_float()), to),
    }
}

/// Evaluates a unary operator on an operand of kind `ty`.
pub fn eval_unop(op: UnOp, ty: ScalarType, v: Value) -> Value {
    match op {
        UnOp::Neg => {
            if ty.is_float() {
                normalize(Value::Float(-v.as_float()), ty)
            } else {
                normalize(Value::Int(v.as_int().wrapping_neg()), ty)
            }
        }
        UnOp::Not => Value::Int(i64::from(!v.is_truthy())),
        UnOp::BitNot => normalize(Value::Int(!v.as_int()), ty),
    }
}

/// Evaluates a binary operator on operands of kind `ty`.
///
/// Returns `None` for division/remainder by zero (the fold must leave the
/// expression alone and let the simulator trap at run time).
pub fn eval_binop(op: BinOp, ty: ScalarType, a: Value, b: Value) -> Option<Value> {
    if ty.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::Eq => return Some(Value::Int(i64::from(x == y))),
            BinOp::Ne => return Some(Value::Int(i64::from(x != y))),
            BinOp::Lt => return Some(Value::Int(i64::from(x < y))),
            BinOp::Le => return Some(Value::Int(i64::from(x <= y))),
            BinOp::Gt => return Some(Value::Int(i64::from(x > y))),
            BinOp::Ge => return Some(Value::Int(i64::from(x >= y))),
            BinOp::Rem | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                return None
            } // ill-typed on floats
        };
        Some(normalize(Value::Float(r), ty))
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            BinOp::Eq => i64::from(x == y),
            BinOp::Ne => i64::from(x != y),
            BinOp::Lt => i64::from(x < y),
            BinOp::Le => i64::from(x <= y),
            BinOp::Gt => i64::from(x > y),
            BinOp::Ge => i64::from(x >= y),
            BinOp::BitAnd => x & y,
            BinOp::BitOr => x | y,
            BinOp::BitXor => x ^ y,
            BinOp::Shl => x.wrapping_shl((y & 31) as u32),
            BinOp::Shr => x.wrapping_shr((y & 31) as u32),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        };
        let result_ty = if op.is_comparison() {
            ScalarType::Int
        } else {
            ty
        };
        Some(normalize(Value::Int(r), result_ty))
    }
}

/// Converts a constant expression node to a [`Value`], if it is one.
pub fn const_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::IntConst(v) => Some(Value::Int(*v)),
        Expr::FloatConst(f, ty) => Some(normalize(Value::Float(*f), *ty)),
        _ => None,
    }
}

/// Converts a [`Value`] of kind `ty` back to a literal expression node.
pub fn value_to_expr(v: Value, ty: ScalarType) -> Expr {
    match normalize(v, ty) {
        Value::Int(i) => Expr::IntConst(i),
        Value::Float(f) => Expr::FloatConst(f, ty),
    }
}

/// Folds constant subtrees under `root` bottom-up, in place, and applies
/// safe algebraic identities (`x+0`, `x*1`, `x-0`, `x/1`, `0*x` when `x` is
/// volatile-free). The root slot id stays valid.
///
/// Folding never changes observable behaviour: volatile loads are preserved
/// and division by a constant zero is left in place.
pub fn fold_expr(pool: &mut ExprPool, root: ExprId) {
    crate::visit::rewrite_expr(pool, root, &mut fold_node);
}

fn fold_node(pool: &mut ExprPool, id: ExprId) {
    match pool[id] {
        Expr::Unary { op, ty, arg } => {
            if let Some(v) = const_value(&pool[arg]) {
                let result_ty = if op == UnOp::Not { ScalarType::Int } else { ty };
                pool[id] = value_to_expr(eval_unop(op, ty, v), result_ty);
            }
        }
        Expr::Cast { to, from, arg } => {
            if let Some(v) = const_value(&pool[arg]) {
                pool[id] = value_to_expr(eval_cast(to, from, v), to);
            }
        }
        Expr::Binary { op, ty, lhs, rhs } => {
            let lhs_c = const_value(&pool[lhs]);
            let rhs_c = const_value(&pool[rhs]);
            if let (Some(a), Some(b)) = (lhs_c, rhs_c) {
                if let Some(v) = eval_binop(op, ty, a, b) {
                    let result_ty = if op.is_comparison() {
                        ScalarType::Int
                    } else {
                        ty
                    };
                    pool[id] = value_to_expr(v, result_ty);
                    return;
                }
            }
            // Algebraic identities, applied by hoisting the surviving
            // child's *node* into this slot (children keep their ids, so
            // no copying). Integer-exact only, except x+0.0/x*1.0 which
            // are exact in IEEE for non-trapping code except for
            // signed-zero subtleties we accept (the 1988 compiler did too).
            let is_zero = |v: Value| match v {
                Value::Int(0) => true,
                Value::Float(f) => f == 0.0,
                _ => false,
            };
            let is_one = |v: Value| match v {
                Value::Int(1) => true,
                Value::Float(f) => f == 1.0,
                _ => false,
            };
            match op {
                BinOp::Add => {
                    if rhs_c.is_some_and(is_zero) {
                        pool[id] = pool[lhs];
                    } else if lhs_c.is_some_and(is_zero) {
                        pool[id] = pool[rhs];
                    }
                }
                BinOp::Sub if rhs_c.is_some_and(is_zero) => {
                    pool[id] = pool[lhs];
                }
                BinOp::Mul => {
                    if rhs_c.is_some_and(is_one) {
                        pool[id] = pool[lhs];
                    } else if lhs_c.is_some_and(is_one) {
                        pool[id] = pool[rhs];
                    } else if !ty.is_float()
                        && ((rhs_c.is_some_and(is_zero) && !pool.has_volatile_load(lhs))
                            || (lhs_c.is_some_and(is_zero) && !pool.has_volatile_load(rhs)))
                    {
                        // 0*x -> 0 only when x has no volatile reads
                        pool[id] = Expr::IntConst(0);
                    }
                }
                BinOp::Div if rhs_c.is_some_and(is_one) => {
                    pool[id] = pool[lhs];
                }
                _ => {}
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    #[test]
    fn int_wraps_to_32_bits() {
        let v = eval_binop(
            BinOp::Add,
            ScalarType::Int,
            Value::Int(i32::MAX as i64),
            Value::Int(1),
        )
        .unwrap();
        assert_eq!(v, Value::Int(i32::MIN as i64));
    }

    #[test]
    fn pointer_arithmetic_is_unsigned_32() {
        let v = eval_binop(
            BinOp::Add,
            ScalarType::Ptr,
            Value::Int(u32::MAX as i64),
            Value::Int(1),
        )
        .unwrap();
        assert_eq!(v, Value::Int(0));
    }

    #[test]
    fn float_rounds_through_f32() {
        let v = normalize(Value::Float(0.1), ScalarType::Float);
        assert_eq!(v, Value::Float(0.1f32 as f64));
        let d = normalize(Value::Float(0.1), ScalarType::Double);
        assert_eq!(d, Value::Float(0.1));
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        assert_eq!(
            eval_binop(BinOp::Div, ScalarType::Int, Value::Int(1), Value::Int(0)),
            None
        );
        let mut p = ExprPool::new();
        let one = p.int(1);
        let zero = p.int(0);
        let e = p.ibinary(BinOp::Div, one, zero);
        fold_expr(&mut p, e);
        assert!(matches!(p[e], Expr::Binary { .. }));
    }

    #[test]
    fn folds_nested_arithmetic() {
        let mut p = ExprPool::new();
        let two = p.int(2);
        let three = p.int(3);
        let add = p.ibinary(BinOp::Add, two, three);
        let four = p.int(4);
        let e = p.ibinary(BinOp::Mul, add, four);
        fold_expr(&mut p, e);
        assert_eq!(p.as_int(e), Some(20));
    }

    #[test]
    fn comparisons_yield_int() {
        let mut p = ExprPool::new();
        let one = p.double(1.0);
        let two = p.double(2.0);
        let e = p.binary(BinOp::Lt, ScalarType::Double, one, two);
        fold_expr(&mut p, e);
        assert_eq!(p[e], Expr::IntConst(1));
    }

    #[test]
    fn identity_add_zero() {
        let mut p = ExprPool::new();
        let x = p.var(VarId(0));
        let zero = p.int(0);
        let e = p.ibinary(BinOp::Add, x, zero);
        fold_expr(&mut p, e);
        assert_eq!(p[e], Expr::Var(VarId(0)));
    }

    #[test]
    fn identity_mul_zero_respects_volatile() {
        let mut p = ExprPool::new();
        let addr = p.addr_of(VarId(0));
        let vl = p.alloc(Expr::Load {
            addr,
            ty: ScalarType::Int,
            volatile: true,
        });
        let zero = p.int(0);
        let e = p.ibinary(BinOp::Mul, vl, zero);
        fold_expr(&mut p, e);
        assert!(p.has_volatile_load(e), "volatile read must not be deleted");

        let y = p.var(VarId(1));
        let zero2 = p.int(0);
        let pure = p.ibinary(BinOp::Mul, y, zero2);
        fold_expr(&mut p, pure);
        assert_eq!(p.as_int(pure), Some(0));
    }

    #[test]
    fn float_mul_zero_is_not_folded() {
        // 0.0 * x is NOT 0.0 when x is NaN/inf; the fold must not apply.
        let mut p = ExprPool::new();
        let x = p.var(VarId(0));
        let zero = p.double(0.0);
        let e = p.binary(BinOp::Mul, ScalarType::Double, x, zero);
        fold_expr(&mut p, e);
        assert!(matches!(p[e], Expr::Binary { .. }));
    }

    #[test]
    fn unop_eval() {
        assert_eq!(
            eval_unop(UnOp::Not, ScalarType::Int, Value::Int(0)),
            Value::Int(1)
        );
        assert_eq!(
            eval_unop(UnOp::Neg, ScalarType::Float, Value::Float(2.0)),
            Value::Float(-2.0)
        );
        assert_eq!(
            eval_unop(UnOp::BitNot, ScalarType::Int, Value::Int(0)),
            Value::Int(-1)
        );
    }

    #[test]
    fn char_wraps_to_8_bits() {
        let v = eval_binop(BinOp::Add, ScalarType::Char, Value::Int(127), Value::Int(1)).unwrap();
        assert_eq!(v, Value::Int(-128));
    }

    #[test]
    fn min_max_intrinsics() {
        assert_eq!(
            eval_binop(BinOp::Min, ScalarType::Int, Value::Int(3), Value::Int(5)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_binop(BinOp::Max, ScalarType::Int, Value::Int(3), Value::Int(5)).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn cast_float_to_int_truncates() {
        assert_eq!(
            eval_cast(ScalarType::Int, ScalarType::Double, Value::Float(3.9)),
            Value::Int(3)
        );
        assert_eq!(
            eval_cast(ScalarType::Int, ScalarType::Double, Value::Float(-3.9)),
            Value::Int(-3)
        );
    }
}
