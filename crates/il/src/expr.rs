//! Side-effect-free IL expressions.
//!
//! Per §4 of the paper, the front end forces *every* operation that changes
//! memory to be an explicit statement, so expressions here are pure: there
//! is no assignment operator, no `++`/`--`, no `?:`/`&&`/`||`, and no
//! function calls (calls are [`crate::StmtKind::Call`] statements). The only
//! observable effect an expression can have is a *volatile read*, which is
//! marked explicitly so every phase can treat it as pinned (§1, §3).

use crate::ids::VarId;
use crate::types::ScalarType;
use std::fmt;

/// Binary operators. Comparisons yield an `Int` 0/1; `Min`/`Max` are IL
/// intrinsics used by strip mining (§9's `vr = min(99, vi+31)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder (integers only).
    Rem,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Minimum (strip-mining intrinsic).
    Min,
    /// Maximum (strip-mining intrinsic).
    Max,
}

impl BinOp {
    /// True for `==`, `!=`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True when `a op b == b op a` for all operands of the operand kind.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
                | BinOp::Min
                | BinOp::Max
        )
    }

    /// The C spelling used by the pretty-printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (yields 0/1).
    Not,
    /// Bitwise complement (integers only).
    BitNot,
}

impl UnOp {
    /// The C spelling used by the pretty-printer.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// A pure IL expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// An integer constant (also used for char and pointer constants).
    IntConst(i64),
    /// A floating constant of the given kind.
    FloatConst(f64, ScalarType),
    /// The value of a scalar variable.
    Var(VarId),
    /// The address of a variable (`&v`; also an array base address).
    AddrOf(VarId),
    /// A memory load `*(ty *)addr`. `volatile` reads are pinned: they may
    /// never be removed, duplicated, reordered across other volatile
    /// accesses, or vectorized (§1 item 6).
    Load {
        /// Byte address of the cell.
        addr: Box<Expr>,
        /// Scalar kind loaded.
        ty: ScalarType,
        /// True when the access is to a volatile object.
        volatile: bool,
    },
    /// A unary operation on operands of kind `ty`.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand kind.
        ty: ScalarType,
        /// Operand.
        arg: Box<Expr>,
    },
    /// A binary operation whose operands have kind `ty`. Comparisons produce
    /// an `Int` regardless of `ty`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Operand kind.
        ty: ScalarType,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A conversion to `to` from an operand of kind `from`.
    Cast {
        /// Result kind.
        to: ScalarType,
        /// Operand kind.
        from: ScalarType,
        /// Operand.
        arg: Box<Expr>,
    },
    /// A vector triplet section: `len` elements of kind `ty` starting at
    /// byte address `base`, consecutive elements `stride` *bytes* apart.
    /// This is the IL form of the paper's `a[lo:hi:stride]` notation (§9).
    Section {
        /// Byte address of element 0.
        base: Box<Expr>,
        /// Element count (evaluated at entry to the vector statement).
        len: Box<Expr>,
        /// Byte distance between consecutive elements.
        stride: Box<Expr>,
        /// Element kind.
        ty: ScalarType,
    },
}

impl Expr {
    /// An `Int` constant.
    pub fn int(v: i64) -> Expr {
        Expr::IntConst(v)
    }

    /// A `Float` constant.
    pub fn float(v: f64) -> Expr {
        Expr::FloatConst(v, ScalarType::Float)
    }

    /// A `Double` constant.
    pub fn double(v: f64) -> Expr {
        Expr::FloatConst(v, ScalarType::Double)
    }

    /// The value of variable `v`.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// The address of variable `v`.
    pub fn addr_of(v: VarId) -> Expr {
        Expr::AddrOf(v)
    }

    /// A non-volatile load of kind `ty` from `addr`.
    pub fn load(addr: Expr, ty: ScalarType) -> Expr {
        Expr::Load {
            addr: Box::new(addr),
            ty,
            volatile: false,
        }
    }

    /// A binary operation on `Int` operands.
    pub fn ibinary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(op, ScalarType::Int, lhs, rhs)
    }

    /// A binary operation on operands of kind `ty`.
    pub fn binary(op: BinOp, ty: ScalarType, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            ty,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// A unary operation on an operand of kind `ty`.
    pub fn unary(op: UnOp, ty: ScalarType, arg: Expr) -> Expr {
        Expr::Unary {
            op,
            ty,
            arg: Box::new(arg),
        }
    }

    /// A cast of `arg` from kind `from` to kind `to`.
    pub fn cast(to: ScalarType, from: ScalarType, arg: Expr) -> Expr {
        if to == from {
            arg
        } else {
            Expr::Cast {
                to,
                from,
                arg: Box::new(arg),
            }
        }
    }

    /// The scalar kind of this expression's value.
    pub fn result_type(&self, var_type: &dyn Fn(VarId) -> ScalarType) -> ScalarType {
        match self {
            Expr::IntConst(_) => ScalarType::Int,
            Expr::FloatConst(_, ty) => *ty,
            Expr::Var(v) => var_type(*v),
            Expr::AddrOf(_) => ScalarType::Ptr,
            Expr::Load { ty, .. } => *ty,
            Expr::Unary { op: UnOp::Not, .. } => ScalarType::Int,
            Expr::Unary { ty, .. } => *ty,
            Expr::Binary { op, ty, .. } => {
                if op.is_comparison() {
                    ScalarType::Int
                } else {
                    *ty
                }
            }
            Expr::Cast { to, .. } => *to,
            Expr::Section { ty, .. } => *ty,
        }
    }

    /// Returns the constant integer value if this is `IntConst`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntConst(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the expression is a literal constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::IntConst(_) | Expr::FloatConst(..))
    }

    /// Immutable child expressions, for generic traversal.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::IntConst(_) | Expr::FloatConst(..) | Expr::Var(_) | Expr::AddrOf(_) => vec![],
            Expr::Load { addr, .. } => vec![addr],
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => vec![arg],
            Expr::Binary { lhs, rhs, .. } => vec![lhs, rhs],
            Expr::Section {
                base, len, stride, ..
            } => vec![base, len, stride],
        }
    }

    /// Mutable child expressions, for generic rewriting.
    pub fn children_mut(&mut self) -> Vec<&mut Expr> {
        match self {
            Expr::IntConst(_) | Expr::FloatConst(..) | Expr::Var(_) | Expr::AddrOf(_) => vec![],
            Expr::Load { addr, .. } => vec![addr],
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => vec![arg],
            Expr::Binary { lhs, rhs, .. } => vec![lhs, rhs],
            Expr::Section {
                base, len, stride, ..
            } => vec![base, len, stride],
        }
    }

    /// Collects every variable whose *value* is read (not `AddrOf`).
    pub fn vars_read(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars_read(&mut out);
        out
    }

    fn collect_vars_read(&self, out: &mut Vec<VarId>) {
        if let Expr::Var(v) = self {
            out.push(*v);
        }
        for c in self.children() {
            c.collect_vars_read(out);
        }
    }

    /// True if the expression reads the value of `v`.
    pub fn reads_var(&self, v: VarId) -> bool {
        match self {
            Expr::Var(w) => *w == v,
            _ => self.children().iter().any(|c| c.reads_var(v)),
        }
    }

    /// True if the expression contains a memory load.
    pub fn has_load(&self) -> bool {
        match self {
            Expr::Load { .. } => true,
            _ => self.children().iter().any(|c| c.has_load()),
        }
    }

    /// True if the expression contains a volatile load.
    pub fn has_volatile_load(&self) -> bool {
        match self {
            Expr::Load { volatile: true, .. } => true,
            _ => self.children().iter().any(|c| c.has_volatile_load()),
        }
    }

    /// True if the expression contains a vector section.
    pub fn has_section(&self) -> bool {
        match self {
            Expr::Section { .. } => true,
            _ => self.children().iter().any(|c| c.has_section()),
        }
    }

    /// Node count, used as a substitution-size heuristic.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Replaces every read of `v` with a copy of `replacement`, returning
    /// the number of replacements made.
    pub fn substitute_var(&mut self, v: VarId, replacement: &Expr) -> usize {
        if let Expr::Var(w) = self {
            if *w == v {
                *self = replacement.clone();
                return 1;
            }
            return 0;
        }
        let mut n = 0;
        for c in self.children_mut() {
            n += c.substitute_var(v, replacement);
        }
        n
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_expr(self, f)
    }
}

/// The target of an assignment statement.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// A scalar variable.
    Var(VarId),
    /// A memory cell `*(ty *)addr`.
    Deref {
        /// Byte address of the cell.
        addr: Expr,
        /// Scalar kind stored.
        ty: ScalarType,
        /// True when the access is to a volatile object.
        volatile: bool,
    },
    /// A vector section store (see [`Expr::Section`]).
    Section {
        /// Byte address of element 0.
        base: Expr,
        /// Element count.
        len: Expr,
        /// Byte distance between consecutive elements.
        stride: Expr,
        /// Element kind.
        ty: ScalarType,
    },
}

impl LValue {
    /// A non-volatile store target `*(ty *)addr`.
    pub fn deref(addr: Expr, ty: ScalarType) -> LValue {
        LValue::Deref {
            addr,
            ty,
            volatile: false,
        }
    }

    /// The variable assigned, if the target is a scalar variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            LValue::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Expressions evaluated to compute the target address (empty for
    /// variables).
    pub fn address_exprs(&self) -> Vec<&Expr> {
        match self {
            LValue::Var(_) => vec![],
            LValue::Deref { addr, .. } => vec![addr],
            LValue::Section {
                base, len, stride, ..
            } => vec![base, len, stride],
        }
    }

    /// Mutable version of [`LValue::address_exprs`].
    pub fn address_exprs_mut(&mut self) -> Vec<&mut Expr> {
        match self {
            LValue::Var(_) => vec![],
            LValue::Deref { addr, .. } => vec![addr],
            LValue::Section {
                base, len, stride, ..
            } => vec![base, len, stride],
        }
    }

    /// True when assigning through this target touches memory (not a plain
    /// variable).
    pub fn is_memory(&self) -> bool {
        !matches!(self, LValue::Var(_))
    }

    /// True when the store is volatile-qualified.
    pub fn is_volatile(&self) -> bool {
        matches!(self, LValue::Deref { volatile: true, .. })
    }

    /// The scalar kind stored, given variable kinds.
    pub fn store_type(&self, var_type: &dyn Fn(VarId) -> ScalarType) -> ScalarType {
        match self {
            LValue::Var(v) => var_type(*v),
            LValue::Deref { ty, .. } | LValue::Section { ty, .. } => *ty,
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_lvalue(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn constructors_and_queries() {
        let e = Expr::ibinary(BinOp::Add, Expr::var(v(0)), Expr::int(1));
        assert_eq!(e.size(), 3);
        assert!(e.reads_var(v(0)));
        assert!(!e.reads_var(v(1)));
        assert!(!e.is_const());
        assert!(Expr::int(3).is_const());
        assert_eq!(Expr::int(3).as_int(), Some(3));
        assert_eq!(e.as_int(), None);
    }

    #[test]
    fn addr_of_is_not_a_value_read() {
        let e = Expr::addr_of(v(4));
        assert!(e.vars_read().is_empty());
        assert!(!e.reads_var(v(4)));
    }

    #[test]
    fn cast_identity_collapses() {
        let e = Expr::cast(ScalarType::Int, ScalarType::Int, Expr::int(5));
        assert_eq!(e, Expr::int(5));
        let e2 = Expr::cast(ScalarType::Float, ScalarType::Int, Expr::int(5));
        assert!(matches!(e2, Expr::Cast { .. }));
    }

    #[test]
    fn substitution_replaces_all_reads() {
        let mut e = Expr::ibinary(
            BinOp::Mul,
            Expr::var(v(1)),
            Expr::ibinary(BinOp::Add, Expr::var(v(1)), Expr::int(2)),
        );
        let n = e.substitute_var(v(1), &Expr::int(7));
        assert_eq!(n, 2);
        assert!(!e.reads_var(v(1)));
    }

    #[test]
    fn volatile_load_detection() {
        let e = Expr::ibinary(
            BinOp::Add,
            Expr::Load {
                addr: Box::new(Expr::addr_of(v(0))),
                ty: ScalarType::Int,
                volatile: true,
            },
            Expr::int(1),
        );
        assert!(e.has_volatile_load());
        assert!(e.has_load());
        let pure = Expr::load(Expr::addr_of(v(0)), ScalarType::Int);
        assert!(!pure.has_volatile_load());
        assert!(pure.has_load());
    }

    #[test]
    fn result_types() {
        let vt = |_: VarId| ScalarType::Float;
        let cmp = Expr::binary(
            BinOp::Lt,
            ScalarType::Float,
            Expr::var(v(0)),
            Expr::float(1.0),
        );
        assert_eq!(cmp.result_type(&vt), ScalarType::Int);
        let add = Expr::binary(
            BinOp::Add,
            ScalarType::Float,
            Expr::var(v(0)),
            Expr::float(1.0),
        );
        assert_eq!(add.result_type(&vt), ScalarType::Float);
        assert_eq!(Expr::addr_of(v(0)).result_type(&vt), ScalarType::Ptr);
    }

    #[test]
    fn comparison_and_commutativity_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_commutative());
    }

    #[test]
    fn lvalue_queries() {
        let lv = LValue::deref(Expr::var(v(2)), ScalarType::Float);
        assert!(lv.is_memory());
        assert!(!lv.is_volatile());
        assert_eq!(lv.as_var(), None);
        assert_eq!(LValue::Var(v(3)).as_var(), Some(v(3)));
        assert_eq!(lv.address_exprs().len(), 1);
    }

    #[test]
    fn section_children() {
        let s = Expr::Section {
            base: Box::new(Expr::addr_of(v(0))),
            len: Box::new(Expr::int(32)),
            stride: Box::new(Expr::int(4)),
            ty: ScalarType::Float,
        };
        assert_eq!(s.children().len(), 3);
        assert!(s.has_section());
    }

    #[test]
    fn json_roundtrip() {
        use crate::json::{FromJson, ToJson};
        let e = Expr::binary(
            BinOp::Mul,
            ScalarType::Double,
            Expr::double(2.5),
            Expr::load(Expr::addr_of(v(9)), ScalarType::Double),
        );
        let js = e.to_json().to_string_compact();
        let back = Expr::from_json(&crate::json::parse(&js).unwrap()).unwrap();
        assert_eq!(e, back);
    }
}
