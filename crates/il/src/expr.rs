//! Side-effect-free IL expressions, stored flat in per-procedure arenas.
//!
//! Per §4 of the paper, the front end forces *every* operation that changes
//! memory to be an explicit statement, so expressions here are pure: there
//! is no assignment operator, no `++`/`--`, no `?:`/`&&`/`||`, and no
//! function calls (calls are [`crate::StmtKind::Call`] statements). The only
//! observable effect an expression can have is a *volatile read*, which is
//! marked explicitly so every phase can treat it as pinned (§1, §3).
//!
//! Expressions are not boxed trees: every node is a small `Copy` value
//! whose operands are [`ExprId`] indices into the owning procedure's
//! [`ExprPool`]. The pool is a flat `Vec<Expr>`, so cloning a procedure
//! copies one contiguous allocation instead of chasing per-node boxes, and
//! content hashing can walk the arena without pointer indirection. Passes
//! rewrite by *rebinding ids* (writing a new node into an existing slot, or
//! pointing a statement's operand slot at a freshly allocated subtree);
//! slots orphaned by a rewrite are harmless garbage reclaimed by
//! [`crate::Procedure::restamp`].

use crate::ids::{ExprId, VarId};
use crate::types::ScalarType;
use std::ops::{Index, IndexMut};

/// Binary operators. Comparisons yield an `Int` 0/1; `Min`/`Max` are IL
/// intrinsics used by strip mining (§9's `vr = min(99, vi+31)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder (integers only).
    Rem,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Minimum (strip-mining intrinsic).
    Min,
    /// Maximum (strip-mining intrinsic).
    Max,
}

impl BinOp {
    /// True for `==`, `!=`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True when `a op b == b op a` for all operands of the operand kind.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
                | BinOp::Min
                | BinOp::Max
        )
    }

    /// The C spelling used by the pretty-printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (yields 0/1).
    Not,
    /// Bitwise complement (integers only).
    BitNot,
}

impl UnOp {
    /// The C spelling used by the pretty-printer.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// A pure IL expression node. Operands are [`ExprId`]s into the owning
/// [`ExprPool`], so the node itself is `Copy`.
///
/// The derived `PartialEq` is *shallow* — it compares operand ids, which is
/// only meaningful for nodes of the same pool that share subtrees. Use
/// [`ExprPool::expr_eq`] for structural comparison.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Expr {
    /// An integer constant (also used for char and pointer constants).
    IntConst(i64),
    /// A floating constant of the given kind.
    FloatConst(f64, ScalarType),
    /// The value of a scalar variable.
    Var(VarId),
    /// The address of a variable (`&v`; also an array base address).
    AddrOf(VarId),
    /// A memory load `*(ty *)addr`. `volatile` reads are pinned: they may
    /// never be removed, duplicated, reordered across other volatile
    /// accesses, or vectorized (§1 item 6).
    Load {
        /// Byte address of the cell.
        addr: ExprId,
        /// Scalar kind loaded.
        ty: ScalarType,
        /// True when the access is to a volatile object.
        volatile: bool,
    },
    /// A unary operation on operands of kind `ty`.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand kind.
        ty: ScalarType,
        /// Operand.
        arg: ExprId,
    },
    /// A binary operation whose operands have kind `ty`. Comparisons produce
    /// an `Int` regardless of `ty`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Operand kind.
        ty: ScalarType,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// A conversion to `to` from an operand of kind `from`.
    Cast {
        /// Result kind.
        to: ScalarType,
        /// Operand kind.
        from: ScalarType,
        /// Operand.
        arg: ExprId,
    },
    /// A vector triplet section: `len` elements of kind `ty` starting at
    /// byte address `base`, consecutive elements `stride` *bytes* apart.
    /// This is the IL form of the paper's `a[lo:hi:stride]` notation (§9).
    Section {
        /// Byte address of element 0.
        base: ExprId,
        /// Element count (evaluated at entry to the vector statement).
        len: ExprId,
        /// Byte distance between consecutive elements.
        stride: ExprId,
        /// Element kind.
        ty: ScalarType,
    },
}

/// The (up to three) operand ids of one [`Expr`] node, without heap
/// allocation. Dereferences to a `[ExprId]` slice.
#[derive(Clone, Copy, Debug)]
pub struct ExprChildren {
    buf: [ExprId; 3],
    len: u8,
}

impl Default for ExprChildren {
    fn default() -> ExprChildren {
        ExprChildren::NONE
    }
}

impl ExprChildren {
    const NONE: ExprChildren = ExprChildren {
        buf: [ExprId(0); 3],
        len: 0,
    };

    fn one(a: ExprId) -> ExprChildren {
        ExprChildren {
            buf: [a, ExprId(0), ExprId(0)],
            len: 1,
        }
    }

    fn two(a: ExprId, b: ExprId) -> ExprChildren {
        ExprChildren {
            buf: [a, b, ExprId(0)],
            len: 2,
        }
    }

    fn three(a: ExprId, b: ExprId, c: ExprId) -> ExprChildren {
        ExprChildren {
            buf: [a, b, c],
            len: 3,
        }
    }
}

impl std::ops::Deref for ExprChildren {
    type Target = [ExprId];

    fn deref(&self) -> &[ExprId] {
        &self.buf[..self.len as usize]
    }
}

impl IntoIterator for ExprChildren {
    type Item = ExprId;
    type IntoIter = std::iter::Take<std::array::IntoIter<ExprId, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

impl Expr {
    /// The operand ids of this node, in evaluation order.
    pub fn child_ids(&self) -> ExprChildren {
        match *self {
            Expr::IntConst(_) | Expr::FloatConst(..) | Expr::Var(_) | Expr::AddrOf(_) => {
                ExprChildren::NONE
            }
            Expr::Load { addr, .. } => ExprChildren::one(addr),
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => ExprChildren::one(arg),
            Expr::Binary { lhs, rhs, .. } => ExprChildren::two(lhs, rhs),
            Expr::Section {
                base, len, stride, ..
            } => ExprChildren::three(base, len, stride),
        }
    }

    /// Returns the constant integer value if this node is `IntConst`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntConst(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the node is a literal constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::IntConst(_) | Expr::FloatConst(..))
    }
}

/// The flat expression arena of one procedure: a `Vec<Expr>` indexed by
/// [`ExprId`].
///
/// All expression construction and traversal goes through the pool. Nodes
/// are never freed individually — rewrites orphan slots, and
/// [`crate::Procedure::restamp`] compacts the arena by rebuilding it from
/// the reachable statement tree.
#[derive(Clone, Debug, Default)]
pub struct ExprPool {
    nodes: Vec<Expr>,
    total_allocated: u64,
}

impl Index<ExprId> for ExprPool {
    type Output = Expr;

    fn index(&self, id: ExprId) -> &Expr {
        &self.nodes[id.index()]
    }
}

impl IndexMut<ExprId> for ExprPool {
    fn index_mut(&mut self, id: ExprId) -> &mut Expr {
        &mut self.nodes[id.index()]
    }
}

impl ExprPool {
    /// An empty pool.
    pub fn new() -> ExprPool {
        ExprPool::default()
    }

    /// Number of arena slots (live and orphaned).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The raw arena slice (contiguous node storage).
    pub fn nodes(&self) -> &[Expr] {
        &self.nodes
    }

    /// Arena size in bytes.
    pub fn bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Expr>()
    }

    /// Cumulative node allocations over the pool's lifetime (survives
    /// compaction; feeds the `il.exprs_allocated` counter).
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Checked slot lookup (the verifier uses this to reject dangling ids
    /// without panicking).
    pub fn get_checked(&self, id: ExprId) -> Option<&Expr> {
        self.nodes.get(id.index())
    }

    /// Carries the lifetime allocation count across a compaction rebuild.
    pub(crate) fn set_total_allocated(&mut self, n: u64) {
        self.total_allocated = n;
    }

    /// Pre-sizes the arena for a batch of allocations.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    /// Allocates a node, returning its id.
    pub fn alloc(&mut self, e: Expr) -> ExprId {
        let id = ExprId::from_index(self.nodes.len());
        self.nodes.push(e);
        self.total_allocated += 1;
        id
    }

    /// An `Int` constant.
    pub fn int(&mut self, v: i64) -> ExprId {
        self.alloc(Expr::IntConst(v))
    }

    /// A `Float` constant.
    pub fn float(&mut self, v: f64) -> ExprId {
        self.alloc(Expr::FloatConst(v, ScalarType::Float))
    }

    /// A `Double` constant.
    pub fn double(&mut self, v: f64) -> ExprId {
        self.alloc(Expr::FloatConst(v, ScalarType::Double))
    }

    /// The value of variable `v`.
    pub fn var(&mut self, v: VarId) -> ExprId {
        self.alloc(Expr::Var(v))
    }

    /// The address of variable `v`.
    pub fn addr_of(&mut self, v: VarId) -> ExprId {
        self.alloc(Expr::AddrOf(v))
    }

    /// A non-volatile load of kind `ty` from `addr`.
    pub fn load(&mut self, addr: ExprId, ty: ScalarType) -> ExprId {
        self.alloc(Expr::Load {
            addr,
            ty,
            volatile: false,
        })
    }

    /// A binary operation on `Int` operands.
    pub fn ibinary(&mut self, op: BinOp, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.binary(op, ScalarType::Int, lhs, rhs)
    }

    /// A binary operation on operands of kind `ty`.
    pub fn binary(&mut self, op: BinOp, ty: ScalarType, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.alloc(Expr::Binary { op, ty, lhs, rhs })
    }

    /// A unary operation on an operand of kind `ty`.
    pub fn unary(&mut self, op: UnOp, ty: ScalarType, arg: ExprId) -> ExprId {
        self.alloc(Expr::Unary { op, ty, arg })
    }

    /// A cast of `arg` from kind `from` to kind `to` (identity casts
    /// collapse to the operand).
    pub fn cast(&mut self, to: ScalarType, from: ScalarType, arg: ExprId) -> ExprId {
        if to == from {
            arg
        } else {
            self.alloc(Expr::Cast { to, from, arg })
        }
    }

    /// A vector triplet section.
    pub fn section(&mut self, base: ExprId, len: ExprId, stride: ExprId, ty: ScalarType) -> ExprId {
        self.alloc(Expr::Section {
            base,
            len,
            stride,
            ty,
        })
    }

    /// The scalar kind of expression `id`'s value.
    pub fn result_type(&self, id: ExprId, var_type: &dyn Fn(VarId) -> ScalarType) -> ScalarType {
        match self[id] {
            Expr::IntConst(_) => ScalarType::Int,
            Expr::FloatConst(_, ty) => ty,
            Expr::Var(v) => var_type(v),
            Expr::AddrOf(_) => ScalarType::Ptr,
            Expr::Load { ty, .. } => ty,
            Expr::Unary { op: UnOp::Not, .. } => ScalarType::Int,
            Expr::Unary { ty, .. } => ty,
            Expr::Binary { op, ty, .. } => {
                if op.is_comparison() {
                    ScalarType::Int
                } else {
                    ty
                }
            }
            Expr::Cast { to, .. } => to,
            Expr::Section { ty, .. } => ty,
        }
    }

    /// Returns the constant integer value if `id` is an `IntConst` node.
    pub fn as_int(&self, id: ExprId) -> Option<i64> {
        self[id].as_int()
    }

    /// True if `id` is a literal constant node.
    pub fn is_const(&self, id: ExprId) -> bool {
        self[id].is_const()
    }

    /// Collects every variable whose *value* is read (not `AddrOf`) in the
    /// subtree rooted at `id`.
    pub fn vars_read(&self, id: ExprId) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars_read(id, &mut out);
        out
    }

    /// Appends the subtree's value-read variables to `out` (preorder).
    pub fn collect_vars_read(&self, id: ExprId, out: &mut Vec<VarId>) {
        if let Expr::Var(v) = self[id] {
            out.push(v);
        }
        for c in self[id].child_ids() {
            self.collect_vars_read(c, out);
        }
    }

    /// True if the subtree at `id` reads the value of `v`.
    pub fn reads_var(&self, id: ExprId, v: VarId) -> bool {
        match self[id] {
            Expr::Var(w) => w == v,
            _ => self[id]
                .child_ids()
                .into_iter()
                .any(|c| self.reads_var(c, v)),
        }
    }

    /// True if the subtree at `id` contains a memory load.
    pub fn has_load(&self, id: ExprId) -> bool {
        match self[id] {
            Expr::Load { .. } => true,
            _ => self[id].child_ids().into_iter().any(|c| self.has_load(c)),
        }
    }

    /// True if the subtree at `id` contains a volatile load.
    pub fn has_volatile_load(&self, id: ExprId) -> bool {
        match self[id] {
            Expr::Load { volatile: true, .. } => true,
            _ => self[id]
                .child_ids()
                .into_iter()
                .any(|c| self.has_volatile_load(c)),
        }
    }

    /// True if the subtree at `id` contains a vector section.
    pub fn has_section(&self, id: ExprId) -> bool {
        match self[id] {
            Expr::Section { .. } => true,
            _ => self[id]
                .child_ids()
                .into_iter()
                .any(|c| self.has_section(c)),
        }
    }

    /// Node count of the subtree at `id`, used as a substitution-size
    /// heuristic.
    pub fn size(&self, id: ExprId) -> usize {
        1 + self[id]
            .child_ids()
            .into_iter()
            .map(|c| self.size(c))
            .sum::<usize>()
    }

    /// Deep-copies the subtree at `id` into fresh slots, returning the new
    /// root.
    pub fn copy(&mut self, id: ExprId) -> ExprId {
        let mut node = self[id];
        match &mut node {
            Expr::IntConst(_) | Expr::FloatConst(..) | Expr::Var(_) | Expr::AddrOf(_) => {}
            Expr::Load { addr, .. } => *addr = self.copy(*addr),
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => *arg = self.copy(*arg),
            Expr::Binary { lhs, rhs, .. } => {
                *lhs = self.copy(*lhs);
                *rhs = self.copy(*rhs);
            }
            Expr::Section {
                base, len, stride, ..
            } => {
                *base = self.copy(*base);
                *len = self.copy(*len);
                *stride = self.copy(*stride);
            }
        }
        self.alloc(node)
    }

    /// Deep-copies a subtree from another pool into this one (inlining
    /// imports callee expressions this way), returning the new root.
    pub fn import(&mut self, other: &ExprPool, id: ExprId) -> ExprId {
        let mut node = other[id];
        match &mut node {
            Expr::IntConst(_) | Expr::FloatConst(..) | Expr::Var(_) | Expr::AddrOf(_) => {}
            Expr::Load { addr, .. } => *addr = self.import(other, *addr),
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => *arg = self.import(other, *arg),
            Expr::Binary { lhs, rhs, .. } => {
                *lhs = self.import(other, *lhs);
                *rhs = self.import(other, *rhs);
            }
            Expr::Section {
                base, len, stride, ..
            } => {
                *base = self.import(other, *base);
                *len = self.import(other, *len);
                *stride = self.import(other, *stride);
            }
        }
        self.alloc(node)
    }

    /// Replaces every read of `v` in the subtree at `root` with a deep copy
    /// of the subtree at `replacement`, in place (slot ids of the subtree
    /// stay valid). Returns the number of replacements made.
    pub fn substitute_var(&mut self, root: ExprId, v: VarId, replacement: ExprId) -> usize {
        if let Expr::Var(w) = self[root] {
            if w == v {
                let copied = self.copy(replacement);
                self[root] = self[copied];
                return 1;
            }
            return 0;
        }
        let mut n = 0;
        for c in self[root].child_ids() {
            n += self.substitute_var(c, v, replacement);
        }
        n
    }

    /// Structural equality of the subtree at `a` (in this pool) and the
    /// subtree at `b` (in `other`), independent of arena layout.
    pub fn expr_eq(&self, a: ExprId, other: &ExprPool, b: ExprId) -> bool {
        match (self[a], other[b]) {
            (Expr::IntConst(x), Expr::IntConst(y)) => x == y,
            (Expr::FloatConst(x, tx), Expr::FloatConst(y, ty)) => x == y && tx == ty,
            (Expr::Var(x), Expr::Var(y)) => x == y,
            (Expr::AddrOf(x), Expr::AddrOf(y)) => x == y,
            (
                Expr::Load {
                    addr: aa,
                    ty: ta,
                    volatile: va,
                },
                Expr::Load {
                    addr: ab,
                    ty: tb,
                    volatile: vb,
                },
            ) => ta == tb && va == vb && self.expr_eq(aa, other, ab),
            (
                Expr::Unary {
                    op: oa,
                    ty: ta,
                    arg: aa,
                },
                Expr::Unary {
                    op: ob,
                    ty: tb,
                    arg: ab,
                },
            ) => oa == ob && ta == tb && self.expr_eq(aa, other, ab),
            (
                Expr::Binary {
                    op: oa,
                    ty: ta,
                    lhs: la,
                    rhs: ra,
                },
                Expr::Binary {
                    op: ob,
                    ty: tb,
                    lhs: lb,
                    rhs: rb,
                },
            ) => oa == ob && ta == tb && self.expr_eq(la, other, lb) && self.expr_eq(ra, other, rb),
            (
                Expr::Cast {
                    to: ta,
                    from: fa,
                    arg: aa,
                },
                Expr::Cast {
                    to: tb,
                    from: fb,
                    arg: ab,
                },
            ) => ta == tb && fa == fb && self.expr_eq(aa, other, ab),
            (
                Expr::Section {
                    base: ba,
                    len: la,
                    stride: sa,
                    ty: ta,
                },
                Expr::Section {
                    base: bb,
                    len: lb,
                    stride: sb,
                    ty: tb,
                },
            ) => {
                ta == tb
                    && self.expr_eq(ba, other, bb)
                    && self.expr_eq(la, other, lb)
                    && self.expr_eq(sa, other, sb)
            }
            _ => false,
        }
    }

    /// Structural equality of two lvalues, given their owning pools.
    pub fn lvalue_eq(&self, a: &LValue, other: &ExprPool, b: &LValue) -> bool {
        match (*a, *b) {
            (LValue::Var(x), LValue::Var(y)) => x == y,
            (
                LValue::Deref {
                    addr: aa,
                    ty: ta,
                    volatile: va,
                },
                LValue::Deref {
                    addr: ab,
                    ty: tb,
                    volatile: vb,
                },
            ) => ta == tb && va == vb && self.expr_eq(aa, other, ab),
            (
                LValue::Section {
                    base: ba,
                    len: la,
                    stride: sa,
                    ty: ta,
                },
                LValue::Section {
                    base: bb,
                    len: lb,
                    stride: sb,
                    ty: tb,
                },
            ) => {
                ta == tb
                    && self.expr_eq(ba, other, bb)
                    && self.expr_eq(la, other, lb)
                    && self.expr_eq(sa, other, sb)
            }
            _ => false,
        }
    }
}

/// The target of an assignment statement. Address operands are [`ExprId`]s
/// into the owning procedure's pool, so the value is `Copy`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LValue {
    /// A scalar variable.
    Var(VarId),
    /// A memory cell `*(ty *)addr`.
    Deref {
        /// Byte address of the cell.
        addr: ExprId,
        /// Scalar kind stored.
        ty: ScalarType,
        /// True when the access is to a volatile object.
        volatile: bool,
    },
    /// A vector section store (see [`Expr::Section`]).
    Section {
        /// Byte address of element 0.
        base: ExprId,
        /// Element count.
        len: ExprId,
        /// Byte distance between consecutive elements.
        stride: ExprId,
        /// Element kind.
        ty: ScalarType,
    },
}

impl LValue {
    /// A non-volatile store target `*(ty *)addr`.
    pub fn deref(addr: ExprId, ty: ScalarType) -> LValue {
        LValue::Deref {
            addr,
            ty,
            volatile: false,
        }
    }

    /// The variable assigned, if the target is a scalar variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            LValue::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Ids of the expressions evaluated to compute the target address
    /// (empty for variables).
    pub fn address_exprs(&self) -> ExprChildren {
        match *self {
            LValue::Var(_) => ExprChildren::NONE,
            LValue::Deref { addr, .. } => ExprChildren::one(addr),
            LValue::Section {
                base, len, stride, ..
            } => ExprChildren::three(base, len, stride),
        }
    }

    /// Mutable slots of the address operand ids, for id rebinding.
    pub fn address_exprs_mut(&mut self) -> Vec<&mut ExprId> {
        match self {
            LValue::Var(_) => vec![],
            LValue::Deref { addr, .. } => vec![addr],
            LValue::Section {
                base, len, stride, ..
            } => vec![base, len, stride],
        }
    }

    /// True when assigning through this target touches memory (not a plain
    /// variable).
    pub fn is_memory(&self) -> bool {
        !matches!(self, LValue::Var(_))
    }

    /// True when the store is volatile-qualified.
    pub fn is_volatile(&self) -> bool {
        matches!(self, LValue::Deref { volatile: true, .. })
    }

    /// The scalar kind stored, given variable kinds.
    pub fn store_type(&self, var_type: &dyn Fn(VarId) -> ScalarType) -> ScalarType {
        match self {
            LValue::Var(v) => var_type(*v),
            LValue::Deref { ty, .. } | LValue::Section { ty, .. } => *ty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn constructors_and_queries() {
        let mut p = ExprPool::new();
        let a = p.var(v(0));
        let b = p.int(1);
        let e = p.ibinary(BinOp::Add, a, b);
        assert_eq!(p.size(e), 3);
        assert!(p.reads_var(e, v(0)));
        assert!(!p.reads_var(e, v(1)));
        assert!(!p.is_const(e));
        let three = p.int(3);
        assert!(p.is_const(three));
        assert_eq!(p.as_int(three), Some(3));
        assert_eq!(p.as_int(e), None);
    }

    #[test]
    fn addr_of_is_not_a_value_read() {
        let mut p = ExprPool::new();
        let e = p.addr_of(v(4));
        assert!(p.vars_read(e).is_empty());
        assert!(!p.reads_var(e, v(4)));
    }

    #[test]
    fn cast_identity_collapses() {
        let mut p = ExprPool::new();
        let five = p.int(5);
        let e = p.cast(ScalarType::Int, ScalarType::Int, five);
        assert_eq!(e, five);
        let e2 = p.cast(ScalarType::Float, ScalarType::Int, five);
        assert!(matches!(p[e2], Expr::Cast { .. }));
    }

    #[test]
    fn substitution_replaces_all_reads() {
        let mut p = ExprPool::new();
        let x1 = p.var(v(1));
        let x2 = p.var(v(1));
        let two = p.int(2);
        let add = p.ibinary(BinOp::Add, x2, two);
        let e = p.ibinary(BinOp::Mul, x1, add);
        let seven = p.int(7);
        let n = p.substitute_var(e, v(1), seven);
        assert_eq!(n, 2);
        assert!(!p.reads_var(e, v(1)));
    }

    #[test]
    fn substitution_is_in_place_and_structural() {
        let mut p = ExprPool::new();
        let x = p.var(v(0));
        let one = p.int(1);
        let root = p.ibinary(BinOp::Add, x, one);
        let y = p.var(v(9));
        let two = p.int(2);
        let repl = p.ibinary(BinOp::Mul, y, two);
        p.substitute_var(root, v(0), repl);
        // the root id is unchanged and now reads v9 through the copy
        assert!(p.reads_var(root, v(9)));
        // the replacement subtree itself is untouched and independent
        assert!(p.reads_var(repl, v(9)));
        let mut q = ExprPool::new();
        let qy = q.var(v(9));
        let q2 = q.int(2);
        let qmul = q.ibinary(BinOp::Mul, qy, q2);
        let q1 = q.int(1);
        let qroot = q.ibinary(BinOp::Add, qmul, q1);
        assert!(p.expr_eq(root, &q, qroot));
    }

    #[test]
    fn volatile_load_detection() {
        let mut p = ExprPool::new();
        let a = p.addr_of(v(0));
        let vl = p.alloc(Expr::Load {
            addr: a,
            ty: ScalarType::Int,
            volatile: true,
        });
        let one = p.int(1);
        let e = p.ibinary(BinOp::Add, vl, one);
        assert!(p.has_volatile_load(e));
        assert!(p.has_load(e));
        let a2 = p.addr_of(v(0));
        let pure = p.load(a2, ScalarType::Int);
        assert!(!p.has_volatile_load(pure));
        assert!(p.has_load(pure));
    }

    #[test]
    fn result_types() {
        let vt = |_: VarId| ScalarType::Float;
        let mut p = ExprPool::new();
        let x = p.var(v(0));
        let one = p.float(1.0);
        let cmp = p.binary(BinOp::Lt, ScalarType::Float, x, one);
        assert_eq!(p.result_type(cmp, &vt), ScalarType::Int);
        let add = p.binary(BinOp::Add, ScalarType::Float, x, one);
        assert_eq!(p.result_type(add, &vt), ScalarType::Float);
        let addr = p.addr_of(v(0));
        assert_eq!(p.result_type(addr, &vt), ScalarType::Ptr);
    }

    #[test]
    fn comparison_and_commutativity_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_commutative());
    }

    #[test]
    fn lvalue_queries() {
        let mut p = ExprPool::new();
        let a = p.var(v(2));
        let lv = LValue::deref(a, ScalarType::Float);
        assert!(lv.is_memory());
        assert!(!lv.is_volatile());
        assert_eq!(lv.as_var(), None);
        assert_eq!(LValue::Var(v(3)).as_var(), Some(v(3)));
        assert_eq!(lv.address_exprs().len(), 1);
    }

    #[test]
    fn section_children() {
        let mut p = ExprPool::new();
        let base = p.addr_of(v(0));
        let len = p.int(32);
        let stride = p.int(4);
        let s = p.section(base, len, stride, ScalarType::Float);
        assert_eq!(p[s].child_ids().len(), 3);
        assert!(p.has_section(s));
    }

    #[test]
    fn import_copies_across_pools() {
        let mut p = ExprPool::new();
        let x = p.var(v(1));
        let k = p.int(3);
        let e = p.ibinary(BinOp::Mul, x, k);
        let mut q = ExprPool::new();
        let imported = q.import(&p, e);
        assert!(q.expr_eq(imported, &p, e));
        assert_eq!(q.size(imported), 3);
    }

    #[test]
    fn pool_counts_allocations_across_clone() {
        let mut p = ExprPool::new();
        let a = p.int(1);
        let _ = p.copy(a);
        assert_eq!(p.total_allocated(), 2);
        assert_eq!(p.len(), 2);
        assert!(p.bytes() > 0);
        let q = p.clone();
        assert_eq!(q.total_allocated(), 2);
    }
}
