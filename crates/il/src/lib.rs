//! # titanc-il — the high-level intermediate language
//!
//! This crate defines the intermediate language (IL) of the `titanc`
//! compiler, a reproduction of the Ardent Titan C compiler described in
//! Allen & Johnson, *Compiling C for Vectorization, Parallelization, and
//! Inline Expansion* (PLDI 1988).
//!
//! The IL's design follows §3–§4 of the paper:
//!
//! * **All side effects are statements.** The IL has an assignment
//!   *statement* ([`StmtKind::Assign`]) but no assignment *operator*; the C
//!   operators `?:`, `&&`, `||`, `,`, `++`, `--` and embedded assignments are
//!   not representable inside an [`Expr`]. The front end recasts every C
//!   expression as a *(statement list, expression)* pair (see
//!   `titanc-lower`).
//! * **Loops and subscripts stay explicit.** There are structured
//!   [`StmtKind::While`], Fortran-style [`StmtKind::DoLoop`] and parallel
//!   [`StmtKind::DoParallel`] forms, plus vector triplet sections
//!   ([`Expr::Section`]) so the vectorizer can express `a[lo:len:stride]`
//!   assignments directly in the IL.
//! * **No hard pointers.** Every cross-reference is an index
//!   ([`VarId`], [`ProcId`], [`LabelId`], [`StmtId`], [`ExprId`]), so
//!   procedures can be serialized into inlining *catalogs* (§7) and paged
//!   or shipped between compilations; see the [`catalog`] module.
//!
//! ## Memory layout
//!
//! Each [`Procedure`] owns two flat arenas: an [`ExprPool`] of `Copy`
//! expression nodes and a [`StmtPool`] of statement kinds with a parallel
//! span column. Statements reference expressions by [`ExprId`] and child
//! statements by [`StmtId`]; a [`stmt::Block`] is a `Vec<StmtId>`. Cloning
//! a procedure is a handful of contiguous `memcpy`s, and content hashing
//! ([`hash::hash_proc`]) sweeps the columns linearly. See
//! `docs/architecture.md` for the pass-author's tour of the rewrite idiom.
//!
//! ## Example
//!
//! ```
//! use titanc_il::{Procedure, ProcBuilder, Type, BinOp};
//!
//! // Build:  int f(int n) { s = 0; DO i = 1, n, 1 { s = s + i; } return s; }
//! let mut b = ProcBuilder::new("f", Type::Int);
//! let n = b.param("n", Type::Int);
//! let s = b.local("s", Type::Int);
//! let i = b.local("i", Type::Int);
//! let zero = b.int(0);
//! b.assign_var(s, zero);
//! let body = {
//!     let mut lb = b.block();
//!     let sum = lb.var(s);
//!     let iv = lb.var(i);
//!     let add = lb.ibinary(BinOp::Add, sum, iv);
//!     lb.assign_var(s, add);
//!     lb.stmts()
//! };
//! let lo = b.int(1);
//! let hi = b.var(n);
//! let step = b.int(1);
//! b.do_loop(i, lo, hi, step, body);
//! let sv = b.var(s);
//! b.ret(Some(sv));
//! let proc: Procedure = b.finish();
//! assert_eq!(proc.name, "f");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod encode;
pub mod expr;
pub mod fold;
pub mod hash;
pub mod ids;
pub mod json;
pub mod pretty;
pub mod program;
pub mod span;
pub mod stmt;
pub mod trace;
pub mod types;
pub mod verify;
pub mod visit;

pub use builder::{BlockBuilder, ProcBuilder};
pub use catalog::{Catalog, LinkReport};
pub use expr::{BinOp, Expr, ExprPool, LValue, UnOp};
pub use fold::{fold_expr, Value};
pub use hash::{hash_proc, write_proc, StableHash, StableHasher};
pub use ids::{ExprId, LabelId, ProcId, StmtId, StructId, VarId};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use pretty::{pretty_block, pretty_expr, pretty_expr_in, pretty_lvalue, pretty_proc};
pub use program::{ConstInit, Field, Procedure, Program, Storage, StructDef, VarInfo};
pub use span::SrcSpan;
pub use stmt::{block_len, Block, StmtKind, StmtPool};
pub use trace::{InlineEvent, InlineOutcome, LoopDecision, LoopEvent};
pub use types::{ScalarType, Type};
pub use verify::{verify_proc, verify_program, VerifyError};
