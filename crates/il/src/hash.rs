//! Stable content hashing for cache keys.
//!
//! The persistent compilation cache keys a procedure's optimized IL by a
//! content hash of its parsed encoding plus the option/pipeline
//! fingerprints. The hash must be stable across runs, platforms and
//! compiler versions of `titanc` itself — so it is defined over the
//! canonical JSON encoding bytes (which `encode.rs` keeps deterministic)
//! with a fixed algorithm, rather than over `std::hash` (whose output is
//! explicitly unspecified and seeded per-process for `HashMap`).
//!
//! The algorithm is 128-bit FNV-1a: dependency-free, endian-independent
//! (it consumes bytes), and wide enough that accidental collisions
//! between cache keys are not a practical concern.

use std::fmt;

/// 128-bit FNV-1a offset basis.
const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental 128-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: OFFSET }
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Feeds a string, length-prefixed so concatenations can't collide
    /// (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> StableHash {
        StableHash(self.state)
    }
}

/// A finished 128-bit stable digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StableHash(pub u128);

impl StableHash {
    /// Hashes a single string in one call.
    pub fn of_str(s: &str) -> StableHash {
        let mut h = StableHasher::new();
        h.write_str(s);
        h.finish()
    }

    /// The digest as 32 lowercase hex digits (cache file names).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for StableHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // 128-bit FNV-1a of the empty input is the offset basis
        assert_eq!(StableHasher::new().finish().0, OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        // independently computed: offset ^ 'a' then * prime
        let expected = (OFFSET ^ u128::from(b'a')).wrapping_mul(PRIME);
        assert_eq!(h.finish().0, expected);
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(StableHash::of_str("daxpy"), StableHash::of_str("daxpy"));
        assert_ne!(StableHash::of_str("daxpy"), StableHash::of_str("ddot"));
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_32_digits() {
        let h = StableHash::of_str("x").hex();
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
