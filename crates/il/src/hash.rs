//! Stable content hashing for cache keys.
//!
//! The persistent compilation cache keys a procedure's optimized IL by a
//! content hash of its parsed encoding plus the option/pipeline
//! fingerprints. The hash must be stable across runs, platforms and
//! compiler versions of `titanc` itself — so it is defined over the
//! canonical JSON encoding bytes (which `encode.rs` keeps deterministic)
//! with a fixed algorithm, rather than over `std::hash` (whose output is
//! explicitly unspecified and seeded per-process for `HashMap`).
//!
//! The algorithm is 128-bit FNV-1a: dependency-free, endian-independent
//! (it consumes bytes), and wide enough that accidental collisions
//! between cache keys are not a practical concern.
//!
//! [`hash_proc`] hashes a procedure by sweeping its arena columns linearly
//! — one pass over the statement kinds (with spans), one over the
//! expression nodes — instead of re-serializing the structural tree to
//! JSON and hashing the text. Arena layout is a deterministic function of
//! how the IL was built (lowering and passes allocate in a fixed order),
//! so the digest is identical across clones, job counts, and cold/warm
//! cache runs, while costing a fraction of a JSON encode.

use crate::expr::{Expr, LValue};
use crate::program::{ConstInit, Procedure, Storage, VarInfo};
use crate::stmt::StmtKind;
use crate::types::Type;
use std::fmt;

/// Version seed folded into every [`hash_proc`] digest; bump when the
/// byte layout below changes so stale cache keys can never alias.
pub const IL_HASH_VERSION: u32 = 1;

/// 128-bit FNV-1a offset basis.
const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental 128-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: OFFSET }
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Feeds a string, length-prefixed so concatenations can't collide
    /// (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> StableHash {
        StableHash(self.state)
    }
}

/// A finished 128-bit stable digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StableHash(pub u128);

impl StableHash {
    /// Hashes a single string in one call.
    pub fn of_str(s: &str) -> StableHash {
        let mut h = StableHasher::new();
        h.write_str(s);
        h.finish()
    }

    /// The digest as 32 lowercase hex digits (cache file names).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-digit form back into a digest — the checksum
    /// side of the cache's envelope headers. `None` for anything that
    /// is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Option<StableHash> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(StableHash)
    }
}

impl fmt::Display for StableHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Content-hashes a procedure over its flat arenas.
///
/// The digest covers everything [`crate::Procedure`]'s structural equality
/// covers — signature, variable table, body ids, both arena columns with
/// spans — plus the stamp/temp counters, and nothing else (no capacities,
/// no lifetime counters). Equal layouts hash equal; the digest is stable
/// across clones and across runs.
pub fn hash_proc(proc: &Procedure) -> StableHash {
    let mut h = StableHasher::new();
    write_proc(&mut h, proc);
    h.finish()
}

/// Feeds a procedure's canonical bytes into an existing hasher (for
/// program-wide keys that fold several procedures).
pub fn write_proc(h: &mut StableHasher, proc: &Procedure) {
    h.write(&IL_HASH_VERSION.to_le_bytes());
    h.write_str(&proc.name);
    write_type(h, &proc.ret);
    h.write(&(proc.params.len() as u32).to_le_bytes());
    for p in &proc.params {
        h.write(&p.0.to_le_bytes());
    }
    h.write(&(proc.vars.len() as u32).to_le_bytes());
    for v in &proc.vars {
        write_var_info(h, v);
    }
    h.write(&proc.num_labels.to_le_bytes());
    h.write(&proc.next_temp.to_le_bytes());
    h.write(&(proc.body.len() as u32).to_le_bytes());
    for s in &proc.body {
        h.write(&s.0.to_le_bytes());
    }
    // statement column: kinds and spans, one linear sweep
    h.write(&(proc.stmts.len() as u32).to_le_bytes());
    for kind in proc.stmts.kinds() {
        write_stmt_kind(h, kind);
    }
    for span in proc.stmts.spans() {
        h.write(&span.line.to_le_bytes());
        h.write(&span.col.to_le_bytes());
        h.write(&span.file.to_le_bytes());
    }
    // expression column: one linear sweep, no recursion
    h.write(&(proc.exprs.len() as u32).to_le_bytes());
    for node in proc.exprs.nodes() {
        write_expr_node(h, node);
    }
}

fn write_type(h: &mut StableHasher, ty: &Type) {
    match ty {
        Type::Void => h.write(&[0]),
        Type::Char => h.write(&[1]),
        Type::Int => h.write(&[2]),
        Type::Float => h.write(&[3]),
        Type::Double => h.write(&[4]),
        Type::Ptr(inner) => {
            h.write(&[5]);
            write_type(h, inner);
        }
        Type::Array(elem, n) => {
            h.write(&[6]);
            h.write(&(*n as u64).to_le_bytes());
            write_type(h, elem);
        }
        Type::Struct(sid) => {
            h.write(&[7]);
            h.write(&sid.0.to_le_bytes());
        }
    }
}

fn write_var_info(h: &mut StableHasher, v: &VarInfo) {
    h.write_str(&v.name);
    write_type(h, &v.ty);
    h.write(&[
        match v.storage {
            Storage::Auto => 0,
            Storage::Param => 1,
            Storage::Temp => 2,
            Storage::Static => 3,
            Storage::Global => 4,
        },
        u8::from(v.volatile),
        u8::from(v.addressed),
    ]);
    match &v.init {
        None => h.write(&[0]),
        Some(ConstInit::Int(i)) => {
            h.write(&[1]);
            h.write(&i.to_le_bytes());
        }
        Some(ConstInit::Float(f)) => {
            h.write(&[2]);
            h.write(&f.to_bits().to_le_bytes());
        }
    }
}

fn write_expr_node(h: &mut StableHasher, e: &Expr) {
    match *e {
        Expr::IntConst(v) => {
            h.write(&[0]);
            h.write(&v.to_le_bytes());
        }
        Expr::FloatConst(v, ty) => {
            h.write(&[1, ty as u8]);
            h.write(&v.to_bits().to_le_bytes());
        }
        Expr::Var(v) => {
            h.write(&[2]);
            h.write(&v.0.to_le_bytes());
        }
        Expr::AddrOf(v) => {
            h.write(&[3]);
            h.write(&v.0.to_le_bytes());
        }
        Expr::Load { addr, ty, volatile } => {
            h.write(&[4, ty as u8, u8::from(volatile)]);
            h.write(&addr.0.to_le_bytes());
        }
        Expr::Unary { op, ty, arg } => {
            h.write(&[5, op as u8, ty as u8]);
            h.write(&arg.0.to_le_bytes());
        }
        Expr::Binary { op, ty, lhs, rhs } => {
            h.write(&[6, op as u8, ty as u8]);
            h.write(&lhs.0.to_le_bytes());
            h.write(&rhs.0.to_le_bytes());
        }
        Expr::Cast { to, from, arg } => {
            h.write(&[7, to as u8, from as u8]);
            h.write(&arg.0.to_le_bytes());
        }
        Expr::Section {
            base,
            len,
            stride,
            ty,
        } => {
            h.write(&[8, ty as u8]);
            h.write(&base.0.to_le_bytes());
            h.write(&len.0.to_le_bytes());
            h.write(&stride.0.to_le_bytes());
        }
    }
}

fn write_lvalue(h: &mut StableHasher, lv: &LValue) {
    match *lv {
        LValue::Var(v) => {
            h.write(&[0]);
            h.write(&v.0.to_le_bytes());
        }
        LValue::Deref { addr, ty, volatile } => {
            h.write(&[1, ty as u8, u8::from(volatile)]);
            h.write(&addr.0.to_le_bytes());
        }
        LValue::Section {
            base,
            len,
            stride,
            ty,
        } => {
            h.write(&[2, ty as u8]);
            h.write(&base.0.to_le_bytes());
            h.write(&len.0.to_le_bytes());
            h.write(&stride.0.to_le_bytes());
        }
    }
}

fn write_block(h: &mut StableHasher, block: &[crate::ids::StmtId]) {
    h.write(&(block.len() as u32).to_le_bytes());
    for s in block {
        h.write(&s.0.to_le_bytes());
    }
}

fn write_stmt_kind(h: &mut StableHasher, kind: &StmtKind) {
    match kind {
        StmtKind::Assign { lhs, rhs } => {
            h.write(&[0]);
            write_lvalue(h, lhs);
            h.write(&rhs.0.to_le_bytes());
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            h.write(&[1]);
            h.write(&cond.0.to_le_bytes());
            write_block(h, then_blk);
            write_block(h, else_blk);
        }
        StmtKind::While { cond, body, safe } => {
            h.write(&[2, u8::from(*safe)]);
            h.write(&cond.0.to_le_bytes());
            write_block(h, body);
        }
        StmtKind::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
            safe,
        } => {
            h.write(&[3, u8::from(*safe)]);
            h.write(&var.0.to_le_bytes());
            h.write(&lo.0.to_le_bytes());
            h.write(&hi.0.to_le_bytes());
            h.write(&step.0.to_le_bytes());
            write_block(h, body);
        }
        StmtKind::DoParallel {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            h.write(&[4]);
            h.write(&var.0.to_le_bytes());
            h.write(&lo.0.to_le_bytes());
            h.write(&hi.0.to_le_bytes());
            h.write(&step.0.to_le_bytes());
            write_block(h, body);
        }
        StmtKind::WhileSpread {
            cond,
            parallel,
            serial,
        } => {
            h.write(&[5]);
            h.write(&cond.0.to_le_bytes());
            write_block(h, parallel);
            write_block(h, serial);
        }
        StmtKind::Label(l) => {
            h.write(&[6]);
            h.write(&l.0.to_le_bytes());
        }
        StmtKind::Goto(l) => {
            h.write(&[7]);
            h.write(&l.0.to_le_bytes());
        }
        StmtKind::IfGoto { cond, target } => {
            h.write(&[8]);
            h.write(&cond.0.to_le_bytes());
            h.write(&target.0.to_le_bytes());
        }
        StmtKind::Call { dst, callee, args } => {
            h.write(&[9]);
            match dst {
                None => h.write(&[0]),
                Some(d) => {
                    h.write(&[1]);
                    write_lvalue(h, d);
                }
            }
            h.write_str(callee);
            h.write(&(args.len() as u32).to_le_bytes());
            for a in args {
                h.write(&a.0.to_le_bytes());
            }
        }
        StmtKind::Return(e) => {
            h.write(&[10]);
            match e {
                None => h.write(&[0]),
                Some(e) => {
                    h.write(&[1]);
                    h.write(&e.0.to_le_bytes());
                }
            }
        }
        StmtKind::Nop => h.write(&[11]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // 128-bit FNV-1a of the empty input is the offset basis
        assert_eq!(StableHasher::new().finish().0, OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        // independently computed: offset ^ 'a' then * prime
        let expected = (OFFSET ^ u128::from(b'a')).wrapping_mul(PRIME);
        assert_eq!(h.finish().0, expected);
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(StableHash::of_str("daxpy"), StableHash::of_str("daxpy"));
        assert_ne!(StableHash::of_str("daxpy"), StableHash::of_str("ddot"));
    }

    #[test]
    fn hex_round_trips_through_from_hex() {
        let digest = StableHash::of_str("daxpy");
        assert_eq!(StableHash::from_hex(&digest.hex()), Some(digest));
        assert_eq!(
            StableHash::from_hex(&StableHash(0).hex()),
            Some(StableHash(0))
        );
        assert_eq!(
            StableHash::from_hex(&StableHash(u128::MAX).hex()),
            Some(StableHash(u128::MAX))
        );
        // anything that is not exactly 32 hex digits is rejected
        assert_eq!(StableHash::from_hex(""), None);
        assert_eq!(StableHash::from_hex("abc"), None);
        assert_eq!(StableHash::from_hex(&"0".repeat(33)), None);
        assert_eq!(StableHash::from_hex(&format!("+{}", "0".repeat(31))), None);
        assert_eq!(StableHash::from_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_32_digits() {
        let h = StableHash::of_str("x").hex();
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }

    fn sample_proc() -> Procedure {
        use crate::builder::ProcBuilder;
        use crate::expr::BinOp;
        let mut b = ProcBuilder::new("daxpy", Type::Int);
        let n = b.param("n", Type::Int);
        let s = b.local("s", Type::Int);
        let i = b.local("i", Type::Int);
        let zero = b.int(0);
        b.assign_var(s, zero);
        let body = {
            let mut lb = b.block();
            let sv = lb.var(s);
            let iv = lb.var(i);
            let add = lb.ibinary(BinOp::Add, sv, iv);
            lb.assign_var(s, add);
            lb.stmts()
        };
        let lo = b.int(1);
        let hi = b.var(n);
        let step = b.int(1);
        b.do_loop(i, lo, hi, step, body);
        let sv = b.var(s);
        b.ret(Some(sv));
        b.finish()
    }

    #[test]
    fn proc_hash_stable_across_clone() {
        let p = sample_proc();
        let q = p.clone();
        assert_eq!(hash_proc(&p), hash_proc(&q));
    }

    #[test]
    fn proc_hash_stable_across_rebuilds() {
        // two independent constructions of the same IL allocate the same
        // arena layout, so their digests agree (the property the cache
        // relies on across runs and across `-j` values)
        assert_eq!(hash_proc(&sample_proc()), hash_proc(&sample_proc()));
    }

    #[test]
    fn proc_hash_sees_node_edits() {
        let p = sample_proc();
        let mut q = p.clone();
        // flip one constant in the expression column
        let slot = q
            .exprs
            .nodes()
            .iter()
            .position(|n| matches!(n, Expr::IntConst(1)))
            .unwrap();
        q.exprs[crate::ids::ExprId(slot as u32)] = Expr::IntConst(2);
        assert_ne!(hash_proc(&p), hash_proc(&q));
        // and one span in the statement column
        let mut r = p.clone();
        r.stmts.spans_mut()[0] = crate::span::SrcSpan::new(99, 1);
        assert_ne!(hash_proc(&p), hash_proc(&r));
    }

    #[test]
    fn proc_hash_ignores_capacity() {
        let p = sample_proc();
        let mut q = p.clone();
        q.exprs.reserve(1024);
        assert_eq!(hash_proc(&p), hash_proc(&q));
    }
}
