//! The IL type system.
//!
//! The Titan is a 32-bit machine: `int` and pointers are 4 bytes, `float`
//! is 4 bytes, `double` is 8. The paper's examples rely on this — the front
//! end turns `*a++` on a `float *` into an explicit `a = a + 4`.

use crate::ids::StructId;
use std::fmt;

/// A machine scalar kind, the unit of loads, stores and arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScalarType {
    /// 1-byte signed character.
    Char,
    /// 4-byte signed integer.
    Int,
    /// 4-byte IEEE single float.
    Float,
    /// 8-byte IEEE double float.
    Double,
    /// 4-byte data pointer.
    Ptr,
}

impl ScalarType {
    /// Size in bytes on the Titan.
    pub fn size(self) -> i64 {
        match self {
            ScalarType::Char => 1,
            ScalarType::Int | ScalarType::Float | ScalarType::Ptr => 4,
            ScalarType::Double => 8,
        }
    }

    /// True for `Float`/`Double` — operations on these count as FLOPs in the
    /// Titan simulator.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float | ScalarType::Double)
    }

    /// True for integer-register kinds (`Char`, `Int`, `Ptr`).
    pub fn is_integral(self) -> bool {
        !self.is_float()
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::Char => "char",
            ScalarType::Int => "int",
            ScalarType::Float => "float",
            ScalarType::Double => "double",
            ScalarType::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// A C-level type: scalars, pointers, arrays, structs, or `void`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// The absence of a value (function returns only).
    Void,
    /// 1-byte signed character.
    Char,
    /// 4-byte signed integer.
    Int,
    /// 4-byte IEEE single float.
    Float,
    /// 8-byte IEEE double float.
    Double,
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// `T[n]` with a compile-time length.
    Array(Box<Type>, usize),
    /// A named structure; the definition lives in
    /// [`crate::Program::structs`].
    Struct(StructId),
}

impl Type {
    /// Convenience constructor for `Ptr`.
    pub fn ptr_to(inner: Type) -> Type {
        Type::Ptr(Box::new(inner))
    }

    /// Convenience constructor for `Array`.
    pub fn array_of(elem: Type, len: usize) -> Type {
        Type::Array(Box::new(elem), len)
    }

    /// The scalar kind this type occupies in a register, if it is scalar.
    pub fn scalar(&self) -> Option<ScalarType> {
        match self {
            Type::Char => Some(ScalarType::Char),
            Type::Int => Some(ScalarType::Int),
            Type::Float => Some(ScalarType::Float),
            Type::Double => Some(ScalarType::Double),
            Type::Ptr(_) => Some(ScalarType::Ptr),
            Type::Void | Type::Array(..) | Type::Struct(_) => None,
        }
    }

    /// Size in bytes; arrays and structs need the program's struct table, so
    /// struct sizes are resolved via `struct_size`.
    ///
    /// # Panics
    ///
    /// Panics on `Void`.
    pub fn size_with(&self, struct_size: &dyn Fn(StructId) -> i64) -> i64 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::Char => 1,
            Type::Int | Type::Float | Type::Ptr(_) => 4,
            Type::Double => 8,
            Type::Array(elem, n) => elem.size_with(struct_size) * *n as i64,
            Type::Struct(sid) => struct_size(*sid),
        }
    }

    /// The element type after one level of pointer or array indirection.
    pub fn deref(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// True if the type is a pointer or array (i.e. indexable).
    pub fn is_indexable(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(..))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Char => f.write_str("char"),
            Type::Int => f.write_str("int"),
            Type::Float => f.write_str("float"),
            Type::Double => f.write_str("double"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(sid) => write!(f, "struct#{}", sid.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_titan() {
        assert_eq!(ScalarType::Char.size(), 1);
        assert_eq!(ScalarType::Int.size(), 4);
        assert_eq!(ScalarType::Float.size(), 4);
        assert_eq!(ScalarType::Double.size(), 8);
        assert_eq!(ScalarType::Ptr.size(), 4);
    }

    #[test]
    fn float_classification() {
        assert!(ScalarType::Float.is_float());
        assert!(ScalarType::Double.is_float());
        assert!(ScalarType::Int.is_integral());
        assert!(ScalarType::Ptr.is_integral());
    }

    #[test]
    fn type_scalar_mapping() {
        assert_eq!(Type::Int.scalar(), Some(ScalarType::Int));
        assert_eq!(Type::ptr_to(Type::Float).scalar(), Some(ScalarType::Ptr));
        assert_eq!(Type::array_of(Type::Float, 8).scalar(), None);
        assert_eq!(Type::Void.scalar(), None);
    }

    #[test]
    fn array_size() {
        let t = Type::array_of(Type::Float, 100);
        assert_eq!(t.size_with(&|_| unreachable!()), 400);
        let t2 = Type::array_of(Type::array_of(Type::Double, 4), 4);
        assert_eq!(t2.size_with(&|_| unreachable!()), 128);
    }

    #[test]
    fn deref_walks_one_level() {
        let t = Type::ptr_to(Type::array_of(Type::Int, 3));
        assert_eq!(t.deref(), Some(&Type::array_of(Type::Int, 3)));
        assert_eq!(t.deref().unwrap().deref(), Some(&Type::Int));
        assert_eq!(Type::Int.deref(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::ptr_to(Type::Float).to_string(), "float*");
        assert_eq!(Type::array_of(Type::Int, 5).to_string(), "int[5]");
    }
}
