//! Catalog robustness fuzzing: random corruptions of a valid catalog
//! document must surface as `JsonError` (via [`Catalog::from_json`]) or
//! an `InvalidData` I/O error (via [`Catalog::load`]) — never a panic.

use std::panic::catch_unwind;
use titanc_il::{Catalog, ProcBuilder, Procedure, Type};

fn sample_proc(name: &str) -> Procedure {
    let mut b = ProcBuilder::new(name, Type::Int);
    let n = b.param("n", Type::Int);
    let nv = b.var(n);
    b.ret(Some(nv));
    b.finish()
}

fn sample_catalog() -> Catalog {
    let mut c = Catalog::new("fuzzlib");
    c.add(sample_proc("daxpy"));
    c.add(sample_proc("ddot"));
    c
}

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Bytes that stress a JSON decoder: structural characters, quotes,
/// escapes, digits, NUL, and a non-ASCII byte.
const POISON: &[u8] = b"{}[]\",:\\0919ee-+.xnulltrue\0\xff";

#[test]
fn byte_mutations_never_panic() {
    let base = sample_catalog().to_json();
    let mut rng = Rng(0xDEAD_BEEF_0BAD_CAFE);
    let mut rejected = 0usize;
    for _ in 0..500 {
        let mut bytes = base.clone().into_bytes();
        for _ in 0..1 + rng.below(4) {
            let pos = rng.below(bytes.len());
            match rng.below(3) {
                0 => bytes[pos] = POISON[rng.below(POISON.len())],
                1 => {
                    bytes.truncate(pos.max(1));
                }
                _ => bytes.insert(pos, POISON[rng.below(POISON.len())]),
            }
        }
        let doc = String::from_utf8_lossy(&bytes).into_owned();
        let shown: String = doc.chars().take(120).collect();
        let result = catch_unwind(|| Catalog::from_json(&doc).map(|_| ()));
        match result {
            Ok(Ok(())) => {} // mutation happened to stay well-formed
            Ok(Err(_)) => rejected += 1,
            Err(_) => panic!("Catalog::from_json panicked on: {shown}"),
        }
    }
    // the corpus must actually exercise the error paths
    assert!(rejected > 100, "only {rejected} of 500 mutations rejected");
}

#[test]
fn structural_malformations_are_errors_not_panics() {
    let base = sample_catalog().to_json();
    let cases: Vec<String> = vec![
        String::new(),
        "null".into(),
        "[]".into(),
        "{}".into(),
        "{\"name\": 3}".into(),
        "{\"name\": \"x\"}".into(),
        "{\"name\": \"x\", \"procs\": 7, \"structs\": [], \"globals\": []}".into(),
        "{\"name\": \"x\", \"procs\": [[]], \"structs\": [], \"globals\": []}".into(),
        base.replace("\"procs\"", "\"prosc\""),
        base.replace('[', "{").replace(']', "}"),
        base.chars().take(base.len() / 2).collect(),
        "[".repeat(512),
        format!("{base}{base}"),
        "{\"name\": \"\\ud800\"}".into(),
    ];
    for (i, doc) in cases.iter().enumerate() {
        let result = catch_unwind(|| Catalog::from_json(doc).map(|_| ()));
        match result {
            Ok(Ok(())) => panic!("case {i} unexpectedly parsed"),
            Ok(Err(_)) => {}
            Err(_) => panic!(
                "case {i} panicked: {}",
                doc.chars().take(120).collect::<String>()
            ),
        }
    }
}

#[test]
fn load_reports_malformed_files_as_invalid_data() {
    let dir = std::env::temp_dir().join(format!("titanc-catalog-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let base = sample_catalog().to_json();
    let mutants = [
        base.replace("\"name\"", "\"nope\""),
        base.chars().take(base.len() / 3).collect(),
        "not json at all".to_string(),
    ];
    for (i, doc) in mutants.iter().enumerate() {
        let path = dir.join(format!("mutant-{i}.json"));
        std::fs::write(&path, doc).unwrap();
        let err = Catalog::load(&path).expect_err("malformed catalog must not load");
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "case {i}: {err}"
        );
    }

    // and a round-trip still works from the same directory
    let good = dir.join("good.json");
    sample_catalog().save(&good).unwrap();
    let back = Catalog::load(&good).unwrap();
    assert_eq!(back, sample_catalog());
}
