//! Property tests for the IL's arithmetic semantics: folding a constant
//! expression must agree with direct evaluation, and expressions round-trip
//! through the JSON encoding. Random trees come from a small deterministic
//! generator (fixed-seed xorshift) so the suite needs no external crates
//! and every run checks the same cases.

use titanc_il::fold::{const_value, eval_binop, eval_cast, eval_unop, fold_expr, normalize, Value};
use titanc_il::{BinOp, Expr, FromJson, ScalarType, ToJson, UnOp};

const CASES: u64 = 512;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

const BINOPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Min,
    BinOp::Max,
];

const INT_KINDS: [ScalarType; 3] = [ScalarType::Char, ScalarType::Int, ScalarType::Ptr];

/// A random constant integer expression tree of the given maximum depth.
fn const_int_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.below(3) == 0 {
        return Expr::int(rng.range(-100, 100));
    }
    let op = BINOPS[rng.below(BINOPS.len() as u64) as usize];
    let ty = INT_KINDS[rng.below(INT_KINDS.len() as u64) as usize];
    let lhs = const_int_expr(rng, depth - 1);
    let rhs = const_int_expr(rng, depth - 1);
    Expr::binary(op, ty, lhs, rhs)
}

/// Reference evaluator: evaluate the tree directly with the shared
/// operator semantics. Returns None when any subexpression traps.
fn reference_eval(e: &Expr) -> Option<Value> {
    match e {
        Expr::IntConst(v) => Some(Value::Int(*v)),
        Expr::FloatConst(f, ty) => Some(normalize(Value::Float(*f), *ty)),
        Expr::Binary { op, ty, lhs, rhs } => {
            let a = reference_eval(lhs)?;
            let b = reference_eval(rhs)?;
            eval_binop(*op, *ty, a, b)
        }
        Expr::Unary { op, ty, arg } => Some(eval_unop(*op, *ty, reference_eval(arg)?)),
        Expr::Cast { to, from, arg } => Some(eval_cast(*to, *from, reference_eval(arg)?)),
        _ => None,
    }
}

/// Folding a fully-constant tree yields exactly the reference value
/// (or leaves a trapping subtree alone).
#[test]
fn fold_agrees_with_reference() {
    let mut rng = Rng::new(0xF01D);
    for _ in 0..CASES {
        let e = const_int_expr(&mut rng, 4);
        let reference = reference_eval(&e);
        let mut folded = e.clone();
        fold_expr(&mut folded);
        match reference {
            Some(v) => {
                let got = const_value(&folded);
                assert_eq!(got, Some(v), "tree: {e}");
            }
            None => {
                // a division by zero somewhere: fold must not produce a
                // constant for the whole tree out of thin air
                assert!(
                    const_value(&folded).is_none() || reference_eval(&folded).is_some(),
                    "tree: {e}"
                );
            }
        }
    }
}

/// Folding is idempotent.
#[test]
fn fold_is_idempotent() {
    let mut rng = Rng::new(0x1DE0);
    for _ in 0..CASES {
        let e = const_int_expr(&mut rng, 4);
        let mut once = e.clone();
        fold_expr(&mut once);
        let mut twice = once.clone();
        fold_expr(&mut twice);
        assert_eq!(once, twice, "tree: {e}");
    }
}

/// Expressions survive a JSON round-trip.
#[test]
fn expr_json_roundtrip() {
    let mut rng = Rng::new(0x105E);
    for _ in 0..CASES {
        let e = const_int_expr(&mut rng, 3);
        let json = e.to_json().to_string_compact();
        let back = Expr::from_json(&titanc_il::json::parse(&json).unwrap()).unwrap();
        assert_eq!(e, back);
    }
}

/// Folding never changes the size class upward (no expression growth).
#[test]
fn fold_never_grows() {
    let mut rng = Rng::new(0x6064);
    for _ in 0..CASES {
        let e = const_int_expr(&mut rng, 4);
        let before = e.size();
        let mut folded = e.clone();
        fold_expr(&mut folded);
        assert!(folded.size() <= before, "tree: {e}");
    }
}

/// Int kinds stay in range after normalization.
#[test]
fn normalization_ranges() {
    let mut rng = Rng::new(0x4046);
    for _ in 0..CASES {
        let v = rng.next() as i64;
        match normalize(Value::Int(v), ScalarType::Char) {
            Value::Int(c) => assert!((-128..=127).contains(&c)),
            _ => unreachable!("char normalization produced a float"),
        }
        match normalize(Value::Int(v), ScalarType::Int) {
            Value::Int(c) => assert!((i32::MIN as i64..=i32::MAX as i64).contains(&c)),
            _ => unreachable!("int normalization produced a float"),
        }
        match normalize(Value::Int(v), ScalarType::Ptr) {
            Value::Int(c) => assert!((0..=u32::MAX as i64).contains(&c)),
            _ => unreachable!("ptr normalization produced a float"),
        }
    }
}

/// `UnOp::Not` is an involution on truthiness.
#[test]
fn not_not_is_truthiness() {
    let mut rng = Rng::new(0x0707);
    for _ in 0..CASES {
        let v = rng.next() as i64;
        let once = eval_unop(UnOp::Not, ScalarType::Int, Value::Int(v));
        let twice = eval_unop(UnOp::Not, ScalarType::Int, once);
        assert_eq!(twice, Value::Int(i64::from(v != 0)));
    }
}
