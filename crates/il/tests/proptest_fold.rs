//! Property tests for the IL's arithmetic semantics: folding a constant
//! expression must agree with direct evaluation, and expressions round-trip
//! through the JSON encoding. Random trees come from a small deterministic
//! generator (fixed-seed xorshift) so the suite needs no external crates
//! and every run checks the same cases.

use titanc_il::encode::{expr_from_json, expr_to_json};
use titanc_il::fold::{const_value, eval_binop, eval_cast, eval_unop, fold_expr, normalize, Value};
use titanc_il::pretty::pretty_expr_in;
use titanc_il::{BinOp, Expr, ExprId, ExprPool, ScalarType, UnOp};

const CASES: u64 = 512;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

const BINOPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Min,
    BinOp::Max,
];

const INT_KINDS: [ScalarType; 3] = [ScalarType::Char, ScalarType::Int, ScalarType::Ptr];

/// A random constant integer expression tree of the given maximum depth,
/// allocated into `pool`.
fn const_int_expr(rng: &mut Rng, depth: u32, pool: &mut ExprPool) -> ExprId {
    if depth == 0 || rng.below(3) == 0 {
        return pool.int(rng.range(-100, 100));
    }
    let op = BINOPS[rng.below(BINOPS.len() as u64) as usize];
    let ty = INT_KINDS[rng.below(INT_KINDS.len() as u64) as usize];
    let lhs = const_int_expr(rng, depth - 1, pool);
    let rhs = const_int_expr(rng, depth - 1, pool);
    pool.binary(op, ty, lhs, rhs)
}

/// Reference evaluator: evaluate the tree directly with the shared
/// operator semantics. Returns None when any subexpression traps.
fn reference_eval(pool: &ExprPool, id: ExprId) -> Option<Value> {
    match pool[id] {
        Expr::IntConst(v) => Some(Value::Int(v)),
        Expr::FloatConst(f, ty) => Some(normalize(Value::Float(f), ty)),
        Expr::Binary { op, ty, lhs, rhs } => {
            let a = reference_eval(pool, lhs)?;
            let b = reference_eval(pool, rhs)?;
            eval_binop(op, ty, a, b)
        }
        Expr::Unary { op, ty, arg } => Some(eval_unop(op, ty, reference_eval(pool, arg)?)),
        Expr::Cast { to, from, arg } => Some(eval_cast(to, from, reference_eval(pool, arg)?)),
        _ => None,
    }
}

/// Folding a fully-constant tree yields exactly the reference value
/// (or leaves a trapping subtree alone).
#[test]
fn fold_agrees_with_reference() {
    let mut rng = Rng::new(0xF01D);
    for _ in 0..CASES {
        let mut pool = ExprPool::new();
        let e = const_int_expr(&mut rng, 4, &mut pool);
        let shown = pretty_expr_in(&pool, e);
        let reference = reference_eval(&pool, e);
        let mut folded = pool.clone();
        fold_expr(&mut folded, e);
        match reference {
            Some(v) => {
                let got = const_value(&folded[e]);
                assert_eq!(got, Some(v), "tree: {shown}");
            }
            None => {
                // a division by zero somewhere: fold must not produce a
                // constant for the whole tree out of thin air
                assert!(
                    const_value(&folded[e]).is_none() || reference_eval(&folded, e).is_some(),
                    "tree: {shown}"
                );
            }
        }
    }
}

/// Folding is idempotent.
#[test]
fn fold_is_idempotent() {
    let mut rng = Rng::new(0x1DE0);
    for _ in 0..CASES {
        let mut pool = ExprPool::new();
        let e = const_int_expr(&mut rng, 4, &mut pool);
        let shown = pretty_expr_in(&pool, e);
        let mut once = pool.clone();
        fold_expr(&mut once, e);
        let mut twice = once.clone();
        fold_expr(&mut twice, e);
        assert!(once.expr_eq(e, &twice, e), "tree: {shown}");
    }
}

/// Expressions survive a JSON round-trip.
#[test]
fn expr_json_roundtrip() {
    let mut rng = Rng::new(0x105E);
    for _ in 0..CASES {
        let mut pool = ExprPool::new();
        let e = const_int_expr(&mut rng, 3, &mut pool);
        let json = expr_to_json(&pool, e).to_string_compact();
        let mut decoded = ExprPool::new();
        let back = expr_from_json(&mut decoded, &titanc_il::json::parse(&json).unwrap()).unwrap();
        assert!(pool.expr_eq(e, &decoded, back));
    }
}

/// Folding never changes the size class upward (no expression growth).
#[test]
fn fold_never_grows() {
    let mut rng = Rng::new(0x6064);
    for _ in 0..CASES {
        let mut pool = ExprPool::new();
        let e = const_int_expr(&mut rng, 4, &mut pool);
        let shown = pretty_expr_in(&pool, e);
        let before = pool.size(e);
        let mut folded = pool.clone();
        fold_expr(&mut folded, e);
        assert!(folded.size(e) <= before, "tree: {shown}");
        // in-place folding never allocates new slots either
        assert_eq!(folded.len(), pool.len(), "tree: {shown}");
    }
}

/// Int kinds stay in range after normalization.
#[test]
fn normalization_ranges() {
    let mut rng = Rng::new(0x4046);
    for _ in 0..CASES {
        let v = rng.next() as i64;
        match normalize(Value::Int(v), ScalarType::Char) {
            Value::Int(c) => assert!((-128..=127).contains(&c)),
            _ => unreachable!("char normalization produced a float"),
        }
        match normalize(Value::Int(v), ScalarType::Int) {
            Value::Int(c) => assert!((i32::MIN as i64..=i32::MAX as i64).contains(&c)),
            _ => unreachable!("int normalization produced a float"),
        }
        match normalize(Value::Int(v), ScalarType::Ptr) {
            Value::Int(c) => assert!((0..=u32::MAX as i64).contains(&c)),
            _ => unreachable!("ptr normalization produced a float"),
        }
    }
}

/// `UnOp::Not` is an involution on truthiness.
#[test]
fn not_not_is_truthiness() {
    let mut rng = Rng::new(0x0707);
    for _ in 0..CASES {
        let v = rng.next() as i64;
        let once = eval_unop(UnOp::Not, ScalarType::Int, Value::Int(v));
        let twice = eval_unop(UnOp::Not, ScalarType::Int, once);
        assert_eq!(twice, Value::Int(i64::from(v != 0)));
    }
}
