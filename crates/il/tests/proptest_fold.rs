//! Property tests for the IL's arithmetic semantics: folding a constant
//! expression must agree with direct evaluation, and expressions round-trip
//! through serde.

use proptest::prelude::*;
use titanc_il::fold::{const_value, eval_binop, eval_cast, eval_unop, fold_expr, Value};
use titanc_il::{BinOp, Expr, ScalarType, UnOp};

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::BitAnd),
        Just(BinOp::BitOr),
        Just(BinOp::BitXor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Min),
        Just(BinOp::Max),
    ]
}

fn int_kind_strategy() -> impl Strategy<Value = ScalarType> {
    prop_oneof![
        Just(ScalarType::Char),
        Just(ScalarType::Int),
        Just(ScalarType::Ptr),
    ]
}

/// A constant integer expression tree plus its reference value.
fn const_int_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (-100i64..100).prop_map(Expr::int);
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (
            binop_strategy(),
            int_kind_strategy(),
            inner.clone(),
            inner.clone(),
        )
            .prop_map(|(op, ty, l, r)| Expr::binary(op, ty, l, r))
    })
    .boxed()
}

/// Reference evaluator: evaluate the tree directly with the shared
/// operator semantics. Returns None when any subexpression traps.
fn reference_eval(e: &Expr) -> Option<Value> {
    match e {
        Expr::IntConst(v) => Some(Value::Int(*v)),
        Expr::FloatConst(f, ty) => Some(titanc_il::fold::normalize(Value::Float(*f), *ty)),
        Expr::Binary { op, ty, lhs, rhs } => {
            let a = reference_eval(lhs)?;
            let b = reference_eval(rhs)?;
            eval_binop(*op, *ty, a, b)
        }
        Expr::Unary { op, ty, arg } => Some(eval_unop(*op, *ty, reference_eval(arg)?)),
        Expr::Cast { to, from, arg } => Some(eval_cast(*to, *from, reference_eval(arg)?)),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Folding a fully-constant tree yields exactly the reference value
    /// (or leaves a trapping subtree alone).
    #[test]
    fn fold_agrees_with_reference(e in const_int_expr(4)) {
        let reference = reference_eval(&e);
        let mut folded = e.clone();
        fold_expr(&mut folded);
        match reference {
            Some(v) => {
                let got = const_value(&folded);
                prop_assert_eq!(got, Some(v), "tree: {}", e);
            }
            None => {
                // a division by zero somewhere: fold must not produce a
                // constant for the whole tree out of thin air
                prop_assert!(const_value(&folded).is_none() || reference_eval(&folded).is_some());
            }
        }
    }

    /// Folding is idempotent.
    #[test]
    fn fold_is_idempotent(e in const_int_expr(4)) {
        let mut once = e.clone();
        fold_expr(&mut once);
        let mut twice = once.clone();
        fold_expr(&mut twice);
        prop_assert_eq!(once, twice);
    }

    /// Expressions survive a serde round-trip.
    #[test]
    fn expr_serde_roundtrip(e in const_int_expr(3)) {
        let json = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(e, back);
    }

    /// Folding never changes the size class upward (no expression growth).
    #[test]
    fn fold_never_grows(e in const_int_expr(4)) {
        let before = e.size();
        let mut folded = e;
        fold_expr(&mut folded);
        prop_assert!(folded.size() <= before);
    }

    /// Int kinds stay in range after normalization.
    #[test]
    fn normalization_ranges(v in any::<i64>()) {
        use titanc_il::fold::normalize;
        match normalize(Value::Int(v), ScalarType::Char) {
            Value::Int(c) => prop_assert!((-128..=127).contains(&c)),
            _ => prop_assert!(false),
        }
        match normalize(Value::Int(v), ScalarType::Int) {
            Value::Int(c) => prop_assert!((i32::MIN as i64..=i32::MAX as i64).contains(&c)),
            _ => prop_assert!(false),
        }
        match normalize(Value::Int(v), ScalarType::Ptr) {
            Value::Int(c) => prop_assert!((0..=u32::MAX as i64).contains(&c)),
            _ => prop_assert!(false),
        }
    }

    /// `UnOp::Not` is an involution on truthiness.
    #[test]
    fn not_not_is_truthiness(v in any::<i64>()) {
        let once = eval_unop(UnOp::Not, ScalarType::Int, Value::Int(v));
        let twice = eval_unop(UnOp::Not, ScalarType::Int, once);
        prop_assert_eq!(twice, Value::Int(i64::from(v != 0)));
    }
}
